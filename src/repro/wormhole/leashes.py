"""Packet leashes (Hu, Perrig & Johnson, INFOCOM 2003).

Concrete wormhole-detection mechanisms the paper cites:

- **Geographic leash**: the sender includes its location; the receiver
  flags the packet when the implied sender-receiver distance exceeds the
  radio range plus error allowances. A wormhole that teleports a signal
  across the field makes that distance impossible.
- **Temporal leash**: the sender timestamps the packet; with clocks
  synchronized to within ``max_clock_skew``, a packet whose time-of-flight
  implies a distance beyond the radio range is flagged. Tunnels add latency
  and distance, tripping the bound.

Both operate on our :class:`Reception` objects. The geographic leash reads
the *physical* transmission origin (a leash is transmitted authenticated by
the honest sender; for a tunnelled copy, the leash still carries the honest
origin while the signal emerges elsewhere — our ``Transmission.tx_origin``
*is* the emergence point, so the distance check uses origin-vs-receiver
exactly as the real mechanism would).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.radio import SPEED_OF_LIGHT_FT_PER_CYCLE, Reception
from repro.utils.geometry import Point, distance
from repro.wormhole.detector import WormholeDetector


@dataclass
class GeographicLeashDetector(WormholeDetector):
    """Flags receptions whose emergence point is implausibly far.

    Args:
        comm_range_ft: the radio range bound.
        slack_ft: allowance for localization error of the two endpoints
            (the leash's ``delta`` terms).
    """

    comm_range_ft: float
    slack_ft: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_range_ft <= 0:
            raise ConfigurationError(
                f"comm_range_ft must be > 0, got {self.comm_range_ft}"
            )
        if self.slack_ft < 0:
            raise ConfigurationError(f"slack_ft must be >= 0, got {self.slack_ft}")

    def detect(self, reception: Reception, receiver_position: Point) -> bool:
        tx = reception.transmission
        if tx.fake_wormhole_symptoms:
            return True
        # The leash is the sender's authenticated location. Beacon packets
        # already carry one (the claimed location); packets without a leash
        # cannot be checked by this mechanism.
        claimed = getattr(reception.packet, "claimed_point", None)
        if claimed is None:
            return False
        # A signal whose (honest) sender is farther than the radio range
        # cannot have arrived directly — the geographic leash's core test.
        return (
            distance(claimed, receiver_position)
            > self.comm_range_ft + self.slack_ft
        )


@dataclass
class TemporalLeashDetector(WormholeDetector):
    """Flags receptions whose time-of-flight is implausibly long.

    Args:
        comm_range_ft: the radio range bound.
        max_clock_skew_cycles: synchronization error budget.
        airtime_allowance_cycles: expected airtime (subtracted before the
            time-of-flight test).
    """

    comm_range_ft: float
    max_clock_skew_cycles: float = 10.0
    airtime_allowance_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_range_ft <= 0:
            raise ConfigurationError(
                f"comm_range_ft must be > 0, got {self.comm_range_ft}"
            )
        if self.max_clock_skew_cycles < 0:
            raise ConfigurationError(
                f"max_clock_skew_cycles must be >= 0, got {self.max_clock_skew_cycles}"
            )

    def max_flight_cycles(self) -> float:
        """The largest believable propagation delay for a direct signal."""
        return (
            self.comm_range_ft / SPEED_OF_LIGHT_FT_PER_CYCLE
            + self.max_clock_skew_cycles
        )

    def detect(self, reception: Reception, receiver_position: Point) -> bool:
        tx = reception.transmission
        if tx.fake_wormhole_symptoms:
            return True
        airtime = self.airtime_allowance_cycles
        if airtime <= 0.0:
            # Infer the nominal airtime from the packet size at the
            # standard bit rate so only *extra* latency counts.
            from repro.sim.timing import packet_transmission_cycles

            airtime = packet_transmission_cycles(reception.packet.size_bits)
        flight = reception.arrival_time - tx.departure_time - airtime
        return flight > self.max_flight_cycles()
