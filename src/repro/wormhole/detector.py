"""Abstract + probabilistic wormhole detectors.

A wormhole detector answers one question about a received signal: *did it
reach me through a tunnel rather than directly?* The paper's analysis only
needs the detector's detection rate ``p_d``; concrete mechanisms live in
:mod:`repro.wormhole.leashes`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Tuple

from repro.sim.radio import Reception
from repro.utils.geometry import Point
from repro.utils.validation import check_probability


class WormholeDetector(ABC):
    """Interface for per-reception wormhole checks."""

    @abstractmethod
    def detect(self, reception: Reception, receiver_position: Point) -> bool:
        """True when this reception is judged wormhole-replayed."""


class ProbabilisticWormholeDetector(WormholeDetector):
    """The analysis-level detector: true wormholes flagged w.p. ``p_d``.

    Ground truth comes from the transmission metadata: a signal is
    "really" wormholed when it traversed a tunnel (``via_wormhole``) or
    when a malicious beacon faked the symptoms (``fake_wormhole_symptoms``
    — the paper notes the attacker "can always manipulate its beacon
    signals to convince the detecting node that there is a wormhole",
    so faked symptoms are flagged with probability 1).

    The verdict for a genuine tunnel is **sticky per (requester, target)
    pair**: whether a given detector spots the wormhole on a given link is
    a property of the mechanism and geometry, not per-packet luck. This is
    exactly the paper's analysis model, where a benign beacon reports a
    false alert across a wormhole with probability ``1 - p_d`` *per pair*
    (not per probe). Detecting IDs are canonicalized to their owner via
    ``identity_resolver`` so m probes share one verdict.

    Args:
        p_d: detection rate on genuine tunnels (paper evaluation: 0.9).
        false_alarm_rate: probability of flagging a clean direct signal
            (0 in the paper's model; exposed for the robustness ablation).
        rng: source for the detection coin flips.
        identity_resolver: maps a requester identity to its canonical node
            (detecting ID -> owning beacon); defaults to the identity map.
    """

    def __init__(
        self,
        p_d: float,
        rng: random.Random,
        *,
        false_alarm_rate: float = 0.0,
        identity_resolver: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.p_d = check_probability(p_d, "p_d")
        self.false_alarm_rate = check_probability(
            false_alarm_rate, "false_alarm_rate"
        )
        self._rng = rng
        self._resolve = identity_resolver if identity_resolver else lambda i: i
        self._verdicts: Dict[Tuple[int, int], bool] = {}
        self.checks = 0
        self.flags = 0

    def detect(self, reception: Reception, receiver_position: Point) -> bool:
        self.checks += 1
        tx = reception.transmission
        if tx.fake_wormhole_symptoms:
            flagged = True
        elif tx.via_wormhole:
            flagged = self._pair_verdict(reception)
        else:
            flagged = (
                self.false_alarm_rate > 0.0
                and self._rng.random() < self.false_alarm_rate
            )
        if flagged:
            self.flags += 1
        return flagged

    def _pair_verdict(self, reception: Reception) -> bool:
        requester = self._resolve(reception.packet.dst_id)
        key = (requester, reception.packet.src_id)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = self._rng.random() < self.p_d
            self._verdicts[key] = verdict
        return verdict
