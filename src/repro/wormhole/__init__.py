"""Wormhole detectors.

The paper assumes "there is a wormhole detector installed on every beacon
and non-beacon node ... [that] can tell whether two communicating nodes are
neighbor nodes or not with certain accuracy" and parameterizes the analysis
by its detection rate ``p_d`` (0.9 in the evaluation).

- :class:`ProbabilisticWormholeDetector` — the abstract detector the
  analysis uses: flags true wormholes with probability ``p_d``;
- :class:`GeographicLeashDetector`, :class:`TemporalLeashDetector` — the
  concrete packet-leash mechanisms (Hu, Perrig & Johnson, INFOCOM 2003)
  the paper cites, usable as drop-in implementations.
"""

from repro.wormhole.detector import (
    ProbabilisticWormholeDetector,
    WormholeDetector,
)
from repro.wormhole.leashes import GeographicLeashDetector, TemporalLeashDetector

__all__ = [
    "WormholeDetector",
    "ProbabilisticWormholeDetector",
    "GeographicLeashDetector",
    "TemporalLeashDetector",
]
