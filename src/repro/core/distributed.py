"""Distributed revocation without a base station (paper §6 future work).

The paper's conclusion calls out "distributed algorithms to revoke
malicious beacon nodes without using the base station" as future work.
This module implements one such algorithm, built from primitives the paper
already cites:

- Every beacon node owns a **µTESLA key chain** (SPINS); its commitment is
  predistributed at deployment, so *any* node can authenticate its alerts
  without pairwise contact — the property a base station key provided in
  the centralized scheme.
- A detecting beacon **floods** its authenticated alert over the beacon
  connectivity graph (TTL-bounded epidemic forwarding).
- Each beacon runs a **local revocation ledger** with exactly the
  centralized scheme's two counters: a per-reporter quota ``tau_report``
  (colluders still get only ``tau_report + 1`` alerts through *at every
  honest node*) and a per-target threshold ``tau_alert``.
- Keys are disclosed per µTESLA interval and flooded the same way; alerts
  only count once released by the verifier.

The interesting new metric is **agreement**: with no central arbiter,
different beacons may reach different revocation sets (alerts dropped by
the TTL horizon or the security condition). The bench compares detection,
false positives, and agreement against the centralized base station.

Paper section: §6 (distributed revocation, future work)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.crypto.mutesla import (
    KeyChain,
    MuTeslaBroadcaster,
    MuTeslaTag,
    MuTeslaVerifier,
)
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.utils.validation import check_int_in_range


@dataclass(frozen=True)
class DistributedConfig:
    """Protocol parameters.

    Attributes:
        tau_report: per-reporter accepted-alert quota (as centralized).
        tau_alert: local alert count that triggers revocation.
        gossip_ttl: maximum hops an alert/key flood travels.
        hop_delay_cycles: per-hop forwarding latency.
        interval_cycles: µTESLA interval length.
        disclosure_lag: µTESLA disclosure delay in intervals.
        chain_length: µTESLA chain length (protocol lifetime bound).
    """

    tau_report: int = 2
    tau_alert: int = 2
    gossip_ttl: int = 10
    hop_delay_cycles: float = 50_000.0
    interval_cycles: float = 2_000_000.0
    disclosure_lag: int = 2
    chain_length: int = 64

    def __post_init__(self) -> None:
        check_int_in_range(self.tau_report, "tau_report", 0)
        check_int_in_range(self.tau_alert, "tau_alert", 0)
        check_int_in_range(self.gossip_ttl, "gossip_ttl", 1)
        check_int_in_range(self.disclosure_lag, "disclosure_lag", 1)
        check_int_in_range(self.chain_length, "chain_length", 1)
        if self.hop_delay_cycles < 0:
            raise ConfigurationError(
                f"hop_delay_cycles must be >= 0, got {self.hop_delay_cycles}"
            )
        if self.interval_cycles <= 0:
            raise ConfigurationError(
                f"interval_cycles must be > 0, got {self.interval_cycles}"
            )


class RevocationLedger:
    """One beacon's local copy of the alert/report counters."""

    def __init__(self, owner_id: int, tau_report: int, tau_alert: int) -> None:
        self.owner_id = owner_id
        self.tau_report = tau_report
        self.tau_alert = tau_alert
        self.alert_counters: Dict[int, int] = {}
        self.report_counters: Dict[int, int] = {}
        self.revoked: Set[int] = set()
        self._seen: Set[Tuple[int, int]] = set()

    def process(self, reporter_id: int, target_id: int) -> bool:
        """Apply one verified alert; returns True if it was counted."""
        key = (reporter_id, target_id)
        if key in self._seen:
            return False  # floods deliver duplicates; count once
        self._seen.add(key)
        if self.report_counters.get(reporter_id, 0) > self.tau_report:
            return False
        if target_id in self.revoked:
            return False
        self.alert_counters[target_id] = self.alert_counters.get(target_id, 0) + 1
        self.report_counters[reporter_id] = (
            self.report_counters.get(reporter_id, 0) + 1
        )
        if self.alert_counters[target_id] > self.tau_alert:
            self.revoked.add(target_id)
        return True


@dataclass(frozen=True)
class _AlertMessage:
    reporter_id: int
    target_id: int
    tag: MuTeslaTag

    def payload(self) -> bytes:
        return b"dalert:%d:%d" % (self.reporter_id, self.target_id)


class DistributedRevocationProtocol:
    """Runs gossip-based revocation over a deployed network's beacons.

    Args:
        network: the deployed field (beacon positions define the gossip
            graph; an edge exists within radio range).
        config: protocol parameters.
        beacon_ids: participating beacons (default: all network beacons).
    """

    def __init__(
        self,
        network: Network,
        config: Optional[DistributedConfig] = None,
        *,
        beacon_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.network = network
        self.engine: Engine = network.engine
        self.config = config if config is not None else DistributedConfig()
        ids = (
            list(beacon_ids)
            if beacon_ids is not None
            else [b.node_id for b in network.beacon_nodes()]
        )
        if not ids:
            raise ConfigurationError("distributed revocation needs beacons")
        self.beacon_ids = sorted(ids)

        cfg = self.config
        # Back-date the chains by one interval so the protocol can
        # authenticate immediately (interval 0's key is the public anchor).
        start = self.engine.now() - cfg.interval_cycles
        self._chains: Dict[int, KeyChain] = {}
        self._broadcasters: Dict[int, MuTeslaBroadcaster] = {}
        for bid in self.beacon_ids:
            chain = KeyChain(
                b"beacon-chain-%d" % bid,
                cfg.chain_length,
                interval_cycles=cfg.interval_cycles,
                start_time=start,
                disclosure_lag=cfg.disclosure_lag,
            )
            self._chains[bid] = chain
            self._broadcasters[bid] = MuTeslaBroadcaster(bid, chain)

        # verifiers[(receiver, reporter)] — commitments are predistributed.
        self._verifiers: Dict[Tuple[int, int], MuTeslaVerifier] = {}
        self.ledgers: Dict[int, RevocationLedger] = {
            bid: RevocationLedger(bid, cfg.tau_report, cfg.tau_alert)
            for bid in self.beacon_ids
        }
        self._graph = self._beacon_graph()
        self._hops = dict(nx.all_pairs_shortest_path_length(self._graph))
        self.alerts_published = 0
        self.alerts_delivered = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _beacon_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.beacon_ids)
        nodes = [self.network.node(bid) for bid in self.beacon_ids]
        r = self.network.radio.comm_range_ft
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if a.position.distance_to(b.position) <= r:
                    graph.add_edge(a.node_id, b.node_id)
        return graph

    def _verifier_for(self, receiver: int, reporter: int) -> MuTeslaVerifier:
        key = (receiver, reporter)
        verifier = self._verifiers.get(key)
        if verifier is None:
            chain = self._chains[reporter]
            verifier = MuTeslaVerifier(
                chain.commitment,
                interval_cycles=chain.interval_cycles,
                start_time=chain.start_time,
                disclosure_lag=chain.disclosure_lag,
            )
            self._verifiers[key] = verifier
        return verifier

    def _flood_targets(self, origin: int) -> List[Tuple[int, int]]:
        """(beacon, hops) pairs reachable within the TTL (excluding origin)."""
        reach = []
        for bid, hops in self._hops.get(origin, {}).items():
            if bid != origin and hops <= self.config.gossip_ttl:
                reach.append((bid, hops))
        return reach

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------
    def publish_alert(self, reporter_id: int, target_id: int) -> int:
        """Reporter floods an authenticated alert; returns receivers reached."""
        if reporter_id not in self.ledgers:
            raise ConfigurationError(f"{reporter_id} is not a participating beacon")
        now = self.engine.now()
        message = _AlertMessage(
            reporter_id=reporter_id,
            target_id=target_id,
            tag=self._broadcasters[reporter_id].authenticate(
                b"dalert:%d:%d" % (reporter_id, target_id), now
            ),
        )
        self.alerts_published += 1
        targets = self._flood_targets(reporter_id)
        for receiver, hops in targets:
            delay = hops * self.config.hop_delay_cycles
            self.engine.schedule_in(
                delay,
                lambda r=receiver, m=message: self._deliver_alert(r, m),
                label="dalert",
            )
        # The reporter trusts its own first-hand observation immediately.
        self.ledgers[reporter_id].process(reporter_id, target_id)
        return len(targets)

    def _deliver_alert(self, receiver: int, message: _AlertMessage) -> None:
        self.alerts_delivered += 1
        verifier = self._verifier_for(receiver, message.reporter_id)
        verifier.buffer(message.payload(), message.tag, self.engine.now())

    def disclose_keys(self) -> None:
        """Every beacon floods its newest disclosable chain key."""
        now = self.engine.now()
        for reporter in self.beacon_ids:
            disclosed = self._broadcasters[reporter].disclose(now)
            if disclosed is None:
                continue
            interval, key = disclosed
            for receiver, hops in self._flood_targets(reporter):
                delay = hops * self.config.hop_delay_cycles
                self.engine.schedule_in(
                    delay,
                    lambda r=receiver, p=reporter, i=interval, k=key: (
                        self._deliver_key(r, p, i, k)
                    ),
                    label="dkey",
                )

    def _deliver_key(
        self, receiver: int, reporter: int, interval: int, key: bytes
    ) -> None:
        verifier = self._verifier_for(receiver, reporter)
        if not verifier.accept_key(interval, key):
            return
        ledger = self.ledgers[receiver]
        for payload, tag in verifier.release_verified():
            parts = payload.decode("ascii").split(":")
            ledger.process(int(parts[1]), int(parts[2]))

    def run_intervals(self, n_intervals: int) -> None:
        """Advance time interval by interval, disclosing keys each round."""
        check_int_in_range(n_intervals, "n_intervals", 1)
        for _ in range(n_intervals):
            deadline = self.engine.now() + self.config.interval_cycles
            self.engine.run_until(deadline)
            self.disclose_keys()
        # Drain the tail of in-flight floods.
        self.engine.run()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def revoked_by(self, beacon_id: int) -> Set[int]:
        """The local revocation set of one beacon."""
        return set(self.ledgers[beacon_id].revoked)

    def revoked_by_quorum(self, quorum: int) -> Set[int]:
        """Targets revoked by at least ``quorum`` beacons (sensor view)."""
        check_int_in_range(quorum, "quorum", 1)
        counts: Dict[int, int] = {}
        for ledger in self.ledgers.values():
            for target in ledger.revoked:
                counts[target] = counts.get(target, 0) + 1
        return {t for t, c in counts.items() if c >= quorum}

    def agreement(self) -> float:
        """Mean pairwise Jaccard similarity of local revocation sets.

        1.0 means every beacon reached the identical verdict; the
        centralized base station is 1.0 by construction.
        """
        sets = [self.ledgers[b].revoked for b in self.beacon_ids]
        if len(sets) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                a, b = sets[i], sets[j]
                union = a | b
                total += 1.0 if not union else len(a & b) / len(union)
                pairs += 1
        return total / pairs

    def detection_rate(
        self, malicious_ids: Set[int], *, quorum: int = 1
    ) -> Optional[float]:
        """Fraction of malicious beacons revoked by >= ``quorum`` nodes.

        ``None`` when ``malicious_ids`` is empty (undefined rate), matching
        :meth:`repro.core.revocation.BaseStation.detection_rate`.
        """
        if not malicious_ids:
            return None
        revoked = self.revoked_by_quorum(quorum)
        return len(revoked & malicious_ids) / len(malicious_ids)

    def false_positive_rate(
        self, benign_ids: Set[int], *, quorum: int = 1
    ) -> Optional[float]:
        """Fraction of benign beacons revoked by >= ``quorum`` nodes.

        ``None`` when ``benign_ids`` is empty (undefined rate).
        """
        if not benign_ids:
            return None
        revoked = self.revoked_by_quorum(quorum)
        return len(revoked & benign_ids) / len(benign_ids)
