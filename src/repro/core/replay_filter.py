"""The replay-filtering cascade (paper Section 2.2).

Before a detecting node raises an alert — and before a non-beacon node
accepts a beacon signal — the signal runs through two filters:

1. **Wormhole filter** (Section 2.2.1): if the distance between the
   receiver and the location declared in the beacon packet exceeds the
   target's radio range, the signal "cannot have arrived directly" — it
   is a wormhole replay regardless of what the (imperfect, rate ``p_d``)
   wormhole detector says. Otherwise the detector's verdict decides. The
   signal is discarded either way (it is not the target beacon's fault).
2. **Local-replay filter** (Section 2.2.2): if the observed round-trip time
   exceeds the calibrated ``x_max``, the signal was locally replayed —
   discard it.

Only a malicious signal that survives both filters indicts the target
beacon.

Paper section: §2.2 (replay-filtering cascade)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.rtt import LocalReplayDetector
from repro.sim.radio import Reception
from repro.utils.geometry import Point, distance
from repro.wormhole.detector import WormholeDetector


class FilterDecision(enum.Enum):
    """What the cascade concluded about a beacon signal."""

    ACCEPT = "accept"
    REPLAYED_WORMHOLE = "replayed_wormhole"
    REPLAYED_LOCAL = "replayed_local"


@dataclass
class ReplayFilterCascade:
    """Wormhole filter + RTT local-replay filter, in the paper's order.

    Args:
        wormhole_detector: the per-node wormhole detector instance.
        local_replay_detector: the calibrated RTT detector.
        comm_range_ft: the target's radio range (the wormhole filter's
            distance condition).
    """

    wormhole_detector: WormholeDetector
    local_replay_detector: LocalReplayDetector
    comm_range_ft: float

    def evaluate(
        self,
        reception: Reception,
        receiver_position: Point,
        observed_rtt_cycles: float,
        *,
        receiver_knows_location: bool = True,
    ) -> FilterDecision:
        """Run the cascade on one beacon-signal reception.

        Args:
            reception: the beacon packet and its ground-truth metadata.
            receiver_position: where the receiving node is. Beacon nodes
                know this exactly; for non-beacon nodes the simulator
                supplies ground truth but the distance condition is skipped
                (``receiver_knows_location=False``) because they have no
                location yet — they rely on the wormhole detector alone,
                as the paper prescribes.
            observed_rtt_cycles: the measured request/reply RTT.
            receiver_knows_location: see above.

        Returns:
            The first filter that fires, or ``ACCEPT``.
        """
        if self._is_wormhole_replay(
            reception, receiver_position, receiver_knows_location
        ):
            return FilterDecision.REPLAYED_WORMHOLE
        if self.local_replay_detector.is_replayed(observed_rtt_cycles):
            return FilterDecision.REPLAYED_LOCAL
        return FilterDecision.ACCEPT

    def _is_wormhole_replay(
        self,
        reception: Reception,
        receiver_position: Point,
        receiver_knows_location: bool,
    ) -> bool:
        # §2.2.1: the range check is decisive on its own — a declared
        # location farther than the radio range cannot have arrived
        # directly, so the signal is a wormhole replay even when the
        # imperfect detector stays silent. The detector (rate p_d) only
        # decides for in-range declarations, and is the sole filter for
        # receivers that do not yet know their own location.
        if receiver_knows_location:
            declared = reception.packet.claimed_point
            if distance(receiver_position, declared) > self.comm_range_ft:
                return True
        return self.wormhole_detector.detect(reception, receiver_position)
