"""Revocation-notice dissemination (base station -> the whole field).

The paper assumes (§3.2) "the revocation message from the base station can
reach most of sensor nodes" via standard fault-tolerance. This module
implements the mechanism: the base station authenticates each
:class:`RevocationNotice` with its **µTESLA chain** (every sensor holds
the commitment — the SPINS broadcast-authentication model) and the notice
is **flooded**: every node rebroadcasts each new notice once.

Receivers buffer notices until the corresponding chain key is disclosed,
then verify and apply. Forged notices — an attacker would love to "revoke"
benign beacons network-wide — fail the MAC and die.

Paper section: §3.2 (revocation-notice dissemination)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.mutesla import (
    KeyChain,
    MuTeslaBroadcaster,
    MuTeslaTag,
    MuTeslaVerifier,
)
from repro.localization.beacon import NonBeaconAgent
from repro.sim.messages import Packet
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.radio import Reception


@dataclass
class AuthenticatedNotice(Packet):
    """A flooded revocation notice carrying its µTESLA tag.

    Receivers never range on notice signals, so deliveries draw no
    ranging noise — flood-mode runs stay bit-identical to oracle-mode
    runs on every ranging measurement.
    """

    carries_ranging_signal = False

    revoked_id: int = 0
    interval: int = 0
    mac: bytes = b""

    def notice_payload(self) -> bytes:
        """The bytes covered by the µTESLA MAC."""
        return b"revoke:%d" % self.revoked_id


@dataclass
class KeyDisclosure(Packet):
    """A flooded µTESLA key disclosure from the base station.

    Pure control traffic (see :class:`AuthenticatedNotice`): no ranging
    noise is drawn for its deliveries.
    """

    carries_ranging_signal = False

    interval: int = 0
    key: bytes = b""


class NoticeDistributor:
    """Base-station side: authenticate, flood, and disclose.

    Args:
        network: the field to flood over.
        origin: the node the base station injects packets through (its
            gateway; typically a beacon near the station).
        interval_cycles / disclosure_lag / chain_length: µTESLA params.
    """

    def __init__(
        self,
        network: Network,
        origin: Node,
        *,
        interval_cycles: float = 2_000_000.0,
        disclosure_lag: int = 2,
        chain_length: int = 64,
        seed: bytes = b"base-station-notice-chain",
    ) -> None:
        self.network = network
        self.origin = origin
        self.chain = KeyChain(
            seed,
            chain_length,
            interval_cycles=interval_cycles,
            start_time=network.engine.now() - interval_cycles,
            disclosure_lag=disclosure_lag,
        )
        self.broadcaster = MuTeslaBroadcaster(origin.node_id, self.chain)
        self.notices_sent = 0

    @property
    def commitment(self) -> bytes:
        """The anchor receivers must be bootstrapped with."""
        return self.chain.commitment

    def announce_revocation(self, revoked_id: int) -> None:
        """Flood an authenticated revocation notice for ``revoked_id``."""
        payload = b"revoke:%d" % revoked_id
        tag = self.broadcaster.authenticate(payload, self.network.engine.now())
        notice = AuthenticatedNotice(
            src_id=self.origin.node_id,
            dst_id=0,
            revoked_id=revoked_id,
            interval=tag.interval,
            mac=tag.mac,
        )
        self.notices_sent += 1
        self.network.broadcast(self.origin, notice)

    def disclose_key(self) -> bool:
        """Flood the newest disclosable chain key; True if one was sent."""
        disclosed = self.broadcaster.disclose(self.network.engine.now())
        if disclosed is None:
            return False
        interval, key = disclosed
        packet = KeyDisclosure(
            src_id=self.origin.node_id, dst_id=0, interval=interval, key=key
        )
        self.network.broadcast(self.origin, packet)
        return True


def install_notice_handling(
    node: Node,
    commitment: bytes,
    *,
    interval_cycles: float = 2_000_000.0,
    disclosure_lag: int = 2,
    start_time: Optional[float] = None,
) -> None:
    """Equip any node with flood-relay + µTESLA-verify notice handling.

    Works on plain :class:`Node` instances — no subclassing needed; the
    pipeline installs this on every agent and beacon when running in
    flooded-dissemination mode. State lives on the node instance
    (``_notice_verifier``, ``applied_revocations``, dedup sets).
    """
    if start_time is None:
        start_time = (
            node.network.engine.now() - interval_cycles
            if node.network is not None
            else -interval_cycles
        )
    node._notice_verifier = MuTeslaVerifier(
        commitment,
        interval_cycles=interval_cycles,
        start_time=start_time,
        disclosure_lag=disclosure_lag,
    )
    node._seen_notices = set()
    node._seen_keys = set()
    node.applied_revocations = set()
    node.on(AuthenticatedNotice, _handle_notice)
    node.on(KeyDisclosure, _handle_key)


# ----------------------------------------------------------------------
# Handlers (free functions matching the Node Handler signature)
# ----------------------------------------------------------------------
def _handle_notice(node: Node, reception: Reception) -> None:
    packet = reception.packet
    fingerprint = packet.notice_payload() + packet.mac
    if fingerprint in node._seen_notices:
        return
    node._seen_notices.add(fingerprint)
    tag = MuTeslaTag(
        sender_id=packet.src_id, interval=packet.interval, mac=packet.mac
    )
    node._notice_verifier.buffer(
        packet.notice_payload(), tag, reception.arrival_time
    )
    _rebroadcast(node, packet)


def _handle_key(node: Node, reception: Reception) -> None:
    packet = reception.packet
    if packet.interval not in node._seen_keys:
        node._seen_keys.add(packet.interval)
        _rebroadcast(node, packet)
    if not node._notice_verifier.accept_key(packet.interval, packet.key):
        return
    for payload, _tag in node._notice_verifier.release_verified():
        revoked_id = int(payload.decode("ascii").split(":")[1])
        _apply_verified_revocation(node, revoked_id)


def _rebroadcast(node: Node, packet: Packet) -> None:
    if node.network is not None:
        node.network.broadcast(node, packet)


def _apply_verified_revocation(node: Node, revoked_id: int) -> None:
    node.applied_revocations.add(revoked_id)
    if isinstance(node, NonBeaconAgent):
        node.revoked_beacons.add(revoked_id)
        node.references = [
            r for r in node.references if r.beacon_id != revoked_id
        ]


class NoticeReceiverMixin:
    """Convenience mixin exposing :func:`install_notice_handling`."""

    def install_notice_handling(self, commitment: bytes, **kwargs) -> None:
        """See :func:`install_notice_handling`."""
        install_notice_handling(self, commitment, **kwargs)


class NoticeAwareAgent(NoticeReceiverMixin, NonBeaconAgent):
    """A non-beacon agent that learns revocations only from the flood."""


class NoticeRelay(NoticeReceiverMixin, Node):
    """A plain relay node (e.g. beacon) participating in the flood."""

    def __init__(self, node_id: int, position) -> None:
        super().__init__(node_id, position)
