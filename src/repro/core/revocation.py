"""Base-station revocation of malicious beacon nodes (paper Section 3.1).

The base station keeps, per beacon node:

- an **alert counter** — how many accepted alerts name it as target
  (its suspiciousness);
- a **report counter** — how many of its own alerts were accepted.

On each alert ``(detector, target)``:

1. If the detector's report counter already *exceeds* ``tau_report``, or
   the target is already revoked, the alert is ignored.
2. Otherwise both counters increment.
3. If the target's alert counter now *exceeds* ``tau_alert``, the target is
   revoked.

Note the two asymmetries the paper spells out: a **revoked detector's**
alerts still count (so colluders cannot silence a benign detector by
getting it revoked first), and the per-detector quota caps how much damage
colluding reporters can do (``N_a * (tau_report + 1)`` accepted alerts).

The decision logic itself is factored out as a pure counter machine —
:class:`CounterState` plus :func:`evaluate_alert` / :func:`evaluate_target`
/ :func:`apply_alert` — so the in-process :class:`BaseStation` and the
sharded, persistent :mod:`repro.revocation` service run the *same*
transition function and stay bit-identical by construction.

Paper section: §3.1 (base-station revocation)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Set

from repro.crypto.manager import KeyManager
from repro.errors import RevocationError
from repro.sim.trace import TraceRecorder
from repro.utils.validation import check_int_in_range


@dataclass(frozen=True)
class RevocationConfig:
    """The two thresholds (paper defaults reconstructed as 2/2).

    Attributes:
        tau_report: per-detector accepted-alert quota (the paper's first
            threshold); a detector gets ``tau_report + 1`` alerts through.
        tau_alert: suspiciousness level that triggers revocation; a target
            is revoked at its ``tau_alert + 1``-th accepted alert.
    """

    tau_report: int = 2
    tau_alert: int = 2

    def __post_init__(self) -> None:
        check_int_in_range(self.tau_report, "tau_report", 0)
        check_int_in_range(self.tau_alert, "tau_alert", 0)


class AlertDecision(NamedTuple):
    """The outcome of evaluating one alert against a counter state.

    Attributes:
        accepted: whether the alert passed both §3.1 gates.
        reason: ``"accepted"``, ``"quota-exceeded"``, or
            ``"target-already-revoked"`` (``"bad-auth"`` is decided
            upstream, before the counter machine sees the alert).
        revokes_target: True when committing this (accepted) alert pushes
            the target's alert counter past ``tau_alert`` — i.e. this is
            the alert that revokes the target.
    """

    accepted: bool
    reason: str
    revokes_target: bool


@dataclass
class CounterState:
    """The §3.1 counter-machine state, separated from transport concerns.

    This is the *pure* core the paper's revocation scheme reduces to: two
    counter maps plus the revoked set. :class:`BaseStation` wraps one of
    these with authentication, logging, and dissemination;
    :class:`repro.revocation.service.RevocationService` shards one across
    per-target shard workers. Both apply alerts through the same
    :func:`apply_alert` transition, so their decisions cannot drift.
    """

    alert_counters: Dict[int, int] = field(default_factory=dict)
    report_counters: Dict[int, int] = field(default_factory=dict)
    revoked: Set[int] = field(default_factory=set)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot (int keys become strings; sets, sorted lists)."""
        return {
            "alert_counters": {
                str(k): v for k, v in sorted(self.alert_counters.items())
            },
            "report_counters": {
                str(k): v for k, v in sorted(self.report_counters.items())
            },
            "revoked": sorted(self.revoked),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CounterState":
        """Rebuild a state from :meth:`to_dict` output."""
        return cls(
            alert_counters={
                int(k): int(v)
                for k, v in (data.get("alert_counters") or {}).items()
            },
            report_counters={
                int(k): int(v)
                for k, v in (data.get("report_counters") or {}).items()
            },
            revoked={int(v) for v in (data.get("revoked") or ())},
        )


def evaluate_target(
    state: CounterState, config: RevocationConfig, target_id: int
) -> AlertDecision:
    """The target-side half of the §3.1 decision (detector quota already
    checked).

    This is the exact decision a per-target shard makes once the
    ingestion front-end has cleared the detector's report quota: reject
    when the target is already revoked, otherwise accept and revoke when
    the target's alert counter would pass ``tau_alert``. Pure — no
    mutation; commit via :func:`apply_alert`.
    """
    if target_id in state.revoked:
        return AlertDecision(False, "target-already-revoked", False)
    return AlertDecision(
        True,
        "accepted",
        state.alert_counters.get(target_id, 0) + 1 > config.tau_alert,
    )


def evaluate_alert(
    state: CounterState,
    config: RevocationConfig,
    detector_id: int,
    target_id: int,
) -> AlertDecision:
    """The full §3.1 decision for one (already authenticated) alert.

    Check order matches the paper (and the reason strings the audit log
    records): the detector's report quota first, then the target's
    revocation status. Pure — no mutation; commit via
    :func:`apply_alert`.
    """
    if state.report_counters.get(detector_id, 0) > config.tau_report:
        return AlertDecision(False, "quota-exceeded", False)
    return evaluate_target(state, config, target_id)


def apply_target(
    state: CounterState, config: RevocationConfig, target_id: int
) -> AlertDecision:
    """Commit the target-side half of one alert to ``state``.

    This is the transition a per-target shard runs on its own state
    (whose ``report_counters`` stay empty — detector quotas live at the
    ingestion front-end): bump the target's alert counter and revoke at
    the threshold crossing. Rejections mutate nothing.
    """
    decision = evaluate_target(state, config, target_id)
    if decision.accepted:
        state.alert_counters[target_id] = (
            state.alert_counters.get(target_id, 0) + 1
        )
        if decision.revokes_target:
            state.revoked.add(target_id)
    return decision


def apply_alert(
    state: CounterState,
    config: RevocationConfig,
    detector_id: int,
    target_id: int,
) -> AlertDecision:
    """Evaluate one alert and commit its effects to ``state``.

    Composes the two halves exactly as the sharded service runs them —
    detector quota at the front-end, then :func:`apply_target` at the
    target's shard — so single-state and sharded execution share the
    same committed transitions. Rejected alerts leave the state
    untouched (the two §3.1 asymmetries — revoked detectors still count,
    quota-exhausted detectors never do — fall out of the check order).
    """
    if state.report_counters.get(detector_id, 0) > config.tau_report:
        return AlertDecision(False, "quota-exceeded", False)
    decision = apply_target(state, config, target_id)
    if decision.accepted:
        state.report_counters[detector_id] = (
            state.report_counters.get(detector_id, 0) + 1
        )
    return decision


@dataclass
class AlertRecord:
    """One submitted alert and its fate (for audit/tests)."""

    detector_id: int
    target_id: int
    accepted: bool
    reason: str
    time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The record as a plain dict (ledger/JSON form)."""
        return {
            "detector": self.detector_id,
            "target": self.target_id,
            "accepted": self.accepted,
            "reason": self.reason,
            "time": self.time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlertRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            detector_id=int(data["detector"]),
            target_id=int(data["target"]),
            accepted=bool(data["accepted"]),
            reason=str(data["reason"]),
            time=float(data.get("time", 0.0)),
        )


class BaseStation:
    """Collects alerts, scores suspiciousness, revokes beacons.

    Args:
        key_manager: verifies the per-beacon base-station MAC on alerts.
        config: the two thresholds.
        on_revoke: callback invoked with the revoked beacon id (the
            pipeline uses it to propagate revocation notices).
        trace: optional structured trace.
    """

    def __init__(
        self,
        key_manager: KeyManager,
        config: Optional[RevocationConfig] = None,
        *,
        on_revoke: Optional[Callable[[int], None]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.key_manager = key_manager
        self.config = config if config is not None else RevocationConfig()
        self.state = CounterState()
        self.log: List[AlertRecord] = []
        self._metrics_cursor = 0
        self._revocations_flushed = 0
        self._on_revoke = on_revoke
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

    # The paper's two counter maps and the revoked set live in the
    # extracted CounterState (shared with the sharded revocation
    # service); these views keep the historical attribute surface.
    @property
    def alert_counters(self) -> Dict[int, int]:
        """Per-target accepted-alert counts (suspiciousness levels)."""
        return self.state.alert_counters

    @property
    def report_counters(self) -> Dict[int, int]:
        """Per-detector accepted-alert counts (quota usage)."""
        return self.state.report_counters

    @property
    def revoked(self) -> Set[int]:
        """Identities of revoked beacons."""
        return self.state.revoked

    # ------------------------------------------------------------------
    # Alert intake
    # ------------------------------------------------------------------
    def submit_alert(
        self,
        detector_id: int,
        target_id: int,
        *,
        tag: Optional[bytes] = None,
        verify: bool = True,
        time: float = 0.0,
    ) -> bool:
        """Process one alert; returns True when it was accepted.

        Args:
            detector_id: the reporting beacon's primary identity.
            target_id: the accused beacon.
            tag: MAC over the alert payload under the detector's
                base-station key.
            verify: set False only in closed-world experiments where the
                transport is already authenticated.
            time: simulation time for the audit log.
        """
        if verify:
            payload = self.alert_payload(detector_id, target_id)
            if tag is None or not self.key_manager.verify_alert_payload(
                detector_id, payload, tag
            ):
                self._log(detector_id, target_id, False, "bad-auth", time)
                return False

        decision = apply_alert(self.state, self.config, detector_id, target_id)
        self._log(detector_id, target_id, decision.accepted, decision.reason, time)
        if decision.revokes_target:
            self._revoke(target_id, time)
        return decision.accepted

    @staticmethod
    def alert_payload(detector_id: int, target_id: int) -> bytes:
        """Canonical bytes a detecting node MACs when reporting."""
        return b"alert:%d:%d" % (detector_id, target_id)

    # ------------------------------------------------------------------
    # Revocation
    # ------------------------------------------------------------------
    def _revoke(self, target_id: int, time: float) -> None:
        # apply_alert has already moved the target into state.revoked
        # (and can only do so once: later alerts against it are rejected
        # as target-already-revoked); this hook adds the side effects.
        if target_id not in self.revoked:
            raise RevocationError(
                f"beacon {target_id} not committed as revoked"
            )
        self.trace.record(time, "revoke", target=target_id)
        if self._on_revoke is not None:
            self._on_revoke(target_id)

    def is_revoked(self, beacon_id: int) -> bool:
        """True when ``beacon_id`` has been revoked."""
        return beacon_id in self.revoked

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def suspiciousness(self, beacon_id: int) -> int:
        """The beacon's alert-counter value."""
        return self.alert_counters.get(beacon_id, 0)

    def accepted_alert_count(self) -> int:
        """Total alerts accepted so far."""
        return sum(1 for r in self.log if r.accepted)

    def detection_rate(self, malicious_ids: Set[int]) -> Optional[float]:
        """Fraction of known-malicious beacons revoked (evaluation metric).

        Returns ``None`` when ``malicious_ids`` is empty: the rate is
        undefined, and reporting ``0.0`` would silently drag Monte-Carlo
        means toward zero in sweeps where some trials deploy no malicious
        beacons. Aggregation layers skip ``None`` trials instead.
        """
        if not malicious_ids:
            return None
        return len(self.revoked & malicious_ids) / len(malicious_ids)

    def false_positive_rate(self, benign_ids: Set[int]) -> Optional[float]:
        """Fraction of benign beacons incorrectly revoked.

        Returns ``None`` when ``benign_ids`` is empty (undefined rate);
        see :meth:`detection_rate`.
        """
        if not benign_ids:
            return None
        return len(self.revoked & benign_ids) / len(benign_ids)

    def record_metrics(self, registry) -> None:
        """Flush §3.1 revocation state into a metrics registry (end of trial).

        Emits ``alerts_total{accepted=...,reason=...}`` (every submitted
        alert and its fate), ``revocations_total``, and the paper's two
        per-beacon counters as ``bs_alert_counter{target=...}`` /
        ``bs_report_counter{reporter=...}`` gauges.

        Idempotent per base station: the alert log and revocation set are
        flushed incrementally from a cursor, and the per-beacon counters
        use gauge *set* semantics, so calling this twice (e.g. a retried
        finalization) never double-counts.
        """
        for record in self.log[self._metrics_cursor :]:
            registry.counter(
                "alerts_total",
                accepted="true" if record.accepted else "false",
                reason=record.reason,
            ).inc()
        self._metrics_cursor = len(self.log)
        new_revocations = len(self.revoked) - self._revocations_flushed
        registry.counter("revocations_total").inc(new_revocations)
        self._revocations_flushed = len(self.revoked)
        for target_id, count in self.alert_counters.items():
            registry.gauge("bs_alert_counter", target=target_id).set(count)
        for reporter_id, count in self.report_counters.items():
            registry.gauge("bs_report_counter", reporter=reporter_id).set(count)

    def _log(
        self, detector_id: int, target_id: int, accepted: bool, reason: str, time: float
    ) -> None:
        self.log.append(
            AlertRecord(
                detector_id=detector_id,
                target_id=target_id,
                accepted=accepted,
                reason=reason,
                time=time,
            )
        )
        self.trace.record(
            time,
            "alert",
            detector=detector_id,
            target=target_id,
            accepted=accepted,
            reason=reason,
        )
