"""Base-station revocation of malicious beacon nodes (paper Section 3.1).

The base station keeps, per beacon node:

- an **alert counter** — how many accepted alerts name it as target
  (its suspiciousness);
- a **report counter** — how many of its own alerts were accepted.

On each alert ``(detector, target)``:

1. If the detector's report counter already *exceeds* ``tau_report``, or
   the target is already revoked, the alert is ignored.
2. Otherwise both counters increment.
3. If the target's alert counter now *exceeds* ``tau_alert``, the target is
   revoked.

Note the two asymmetries the paper spells out: a **revoked detector's**
alerts still count (so colluders cannot silence a benign detector by
getting it revoked first), and the per-detector quota caps how much damage
colluding reporters can do (``N_a * (tau_report + 1)`` accepted alerts).

Paper section: §3.1 (base-station revocation)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.crypto.manager import KeyManager
from repro.errors import RevocationError
from repro.sim.trace import TraceRecorder
from repro.utils.validation import check_int_in_range


@dataclass(frozen=True)
class RevocationConfig:
    """The two thresholds (paper defaults reconstructed as 2/2).

    Attributes:
        tau_report: per-detector accepted-alert quota (the paper's first
            threshold); a detector gets ``tau_report + 1`` alerts through.
        tau_alert: suspiciousness level that triggers revocation; a target
            is revoked at its ``tau_alert + 1``-th accepted alert.
    """

    tau_report: int = 2
    tau_alert: int = 2

    def __post_init__(self) -> None:
        check_int_in_range(self.tau_report, "tau_report", 0)
        check_int_in_range(self.tau_alert, "tau_alert", 0)


@dataclass
class AlertRecord:
    """One submitted alert and its fate (for audit/tests)."""

    detector_id: int
    target_id: int
    accepted: bool
    reason: str
    time: float = 0.0


class BaseStation:
    """Collects alerts, scores suspiciousness, revokes beacons.

    Args:
        key_manager: verifies the per-beacon base-station MAC on alerts.
        config: the two thresholds.
        on_revoke: callback invoked with the revoked beacon id (the
            pipeline uses it to propagate revocation notices).
        trace: optional structured trace.
    """

    def __init__(
        self,
        key_manager: KeyManager,
        config: Optional[RevocationConfig] = None,
        *,
        on_revoke: Optional[Callable[[int], None]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.key_manager = key_manager
        self.config = config if config is not None else RevocationConfig()
        self.alert_counters: Dict[int, int] = {}
        self.report_counters: Dict[int, int] = {}
        self.revoked: Set[int] = set()
        self.log: List[AlertRecord] = []
        self._metrics_cursor = 0
        self._revocations_flushed = 0
        self._on_revoke = on_revoke
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

    # ------------------------------------------------------------------
    # Alert intake
    # ------------------------------------------------------------------
    def submit_alert(
        self,
        detector_id: int,
        target_id: int,
        *,
        tag: Optional[bytes] = None,
        verify: bool = True,
        time: float = 0.0,
    ) -> bool:
        """Process one alert; returns True when it was accepted.

        Args:
            detector_id: the reporting beacon's primary identity.
            target_id: the accused beacon.
            tag: MAC over the alert payload under the detector's
                base-station key.
            verify: set False only in closed-world experiments where the
                transport is already authenticated.
            time: simulation time for the audit log.
        """
        if verify:
            payload = self.alert_payload(detector_id, target_id)
            if tag is None or not self.key_manager.verify_alert_payload(
                detector_id, payload, tag
            ):
                self._log(detector_id, target_id, False, "bad-auth", time)
                return False

        if self.report_counters.get(detector_id, 0) > self.config.tau_report:
            self._log(detector_id, target_id, False, "quota-exceeded", time)
            return False
        if target_id in self.revoked:
            self._log(detector_id, target_id, False, "target-already-revoked", time)
            return False

        self.alert_counters[target_id] = self.alert_counters.get(target_id, 0) + 1
        self.report_counters[detector_id] = (
            self.report_counters.get(detector_id, 0) + 1
        )
        self._log(detector_id, target_id, True, "accepted", time)

        if self.alert_counters[target_id] > self.config.tau_alert:
            self._revoke(target_id, time)
        return True

    @staticmethod
    def alert_payload(detector_id: int, target_id: int) -> bytes:
        """Canonical bytes a detecting node MACs when reporting."""
        return b"alert:%d:%d" % (detector_id, target_id)

    # ------------------------------------------------------------------
    # Revocation
    # ------------------------------------------------------------------
    def _revoke(self, target_id: int, time: float) -> None:
        if target_id in self.revoked:
            raise RevocationError(f"beacon {target_id} already revoked")
        self.revoked.add(target_id)
        self.trace.record(time, "revoke", target=target_id)
        if self._on_revoke is not None:
            self._on_revoke(target_id)

    def is_revoked(self, beacon_id: int) -> bool:
        """True when ``beacon_id`` has been revoked."""
        return beacon_id in self.revoked

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def suspiciousness(self, beacon_id: int) -> int:
        """The beacon's alert-counter value."""
        return self.alert_counters.get(beacon_id, 0)

    def accepted_alert_count(self) -> int:
        """Total alerts accepted so far."""
        return sum(1 for r in self.log if r.accepted)

    def detection_rate(self, malicious_ids: Set[int]) -> Optional[float]:
        """Fraction of known-malicious beacons revoked (evaluation metric).

        Returns ``None`` when ``malicious_ids`` is empty: the rate is
        undefined, and reporting ``0.0`` would silently drag Monte-Carlo
        means toward zero in sweeps where some trials deploy no malicious
        beacons. Aggregation layers skip ``None`` trials instead.
        """
        if not malicious_ids:
            return None
        return len(self.revoked & malicious_ids) / len(malicious_ids)

    def false_positive_rate(self, benign_ids: Set[int]) -> Optional[float]:
        """Fraction of benign beacons incorrectly revoked.

        Returns ``None`` when ``benign_ids`` is empty (undefined rate);
        see :meth:`detection_rate`.
        """
        if not benign_ids:
            return None
        return len(self.revoked & benign_ids) / len(benign_ids)

    def record_metrics(self, registry) -> None:
        """Flush §3.1 revocation state into a metrics registry (end of trial).

        Emits ``alerts_total{accepted=...,reason=...}`` (every submitted
        alert and its fate), ``revocations_total``, and the paper's two
        per-beacon counters as ``bs_alert_counter{target=...}`` /
        ``bs_report_counter{reporter=...}`` gauges.

        Idempotent per base station: the alert log and revocation set are
        flushed incrementally from a cursor, and the per-beacon counters
        use gauge *set* semantics, so calling this twice (e.g. a retried
        finalization) never double-counts.
        """
        for record in self.log[self._metrics_cursor :]:
            registry.counter(
                "alerts_total",
                accepted="true" if record.accepted else "false",
                reason=record.reason,
            ).inc()
        self._metrics_cursor = len(self.log)
        new_revocations = len(self.revoked) - self._revocations_flushed
        registry.counter("revocations_total").inc(new_revocations)
        self._revocations_flushed = len(self.revoked)
        for target_id, count in self.alert_counters.items():
            registry.gauge("bs_alert_counter", target=target_id).set(count)
        for reporter_id, count in self.report_counters.items():
            registry.gauge("bs_report_counter", reporter=reporter_id).set(count)

    def _log(
        self, detector_id: int, target_id: int, accepted: bool, reason: str, time: float
    ) -> None:
        self.log.append(
            AlertRecord(
                detector_id=detector_id,
                target_id=target_id,
                accepted=accepted,
                reason=reason,
                time=time,
            )
        )
        self.trace.record(
            time,
            "alert",
            detector=detector_id,
            target=target_id,
            accepted=accepted,
            reason=reason,
        )
