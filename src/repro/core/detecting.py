"""The detecting-beacon role (paper Sections 2.1-2.2).

A :class:`DetectingBeacon` is a benign beacon node that, besides serving
beacon requests, probes neighbouring beacons under its **detecting IDs** —
extra non-beacon identities whose requests a malicious beacon cannot tell
apart from genuine localization traffic. For each probe reply it:

1. verifies the packet's authentication;
2. runs the Section 2.1 distance-consistency check (it knows its own
   location exactly);
3. on inconsistency, runs the Section 2.2 replay-filter cascade;
4. if the malicious signal survives the filters, reports an alert
   ``(own primary id, target id)`` to the base station, authenticated with
   its base-station key.

Paper section: §2.1-§2.2 (detecting beacon nodes)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation
from repro.detectors.base import Detector, Exchange
from repro.detectors.paper import PaperDetector
from repro.errors import DeliveryError
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.localization.beacon import BeaconService
from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.radio import Reception
from repro.sim.reliable import ReliableChannel
from repro.utils.geometry import Point


@dataclass(frozen=True)
class ProbeOutcome:
    """Result of one detecting probe (kept for metrics/tests)."""

    detecting_id: int
    target_id: int
    decision: str  # "consistent" | "replayed_wormhole" | "replayed_local" | "alert"


class DetectingBeacon(BeaconService):
    """A benign beacon node with the full detection suite installed.

    Args:
        node_id: primary beacon identity.
        position: physical (= declared) location.
        key_manager: for packet auth and the base-station alert MAC.
        signal_detector: the distance-consistency check.
        filter_cascade: the replay filters (wormhole + RTT).
        base_station: where surviving alerts are reported.
        detecting_ids: this beacon's extra identities (allocate them via
            :meth:`KeyManager.allocate_detecting_ids` and register network
            aliases before probing).
        alert_channel: optional ARQ channel alerts ride to the base
            station (the §3.2 fault-tolerance assumption made concrete).
        request_channel: optional ARQ channel wrapping the *probe
            request* hop, retrying a request the lossy link swallowed; a
            request whose retry budget is exhausted degrades to a lost
            probe (counted in :attr:`probes_lost`), never an exception.
        detector: optional :class:`repro.detectors.base.Detector` that
            judges probe replies instead of the paper suite. ``None``
            (the default) wraps this beacon's own ``signal_detector`` +
            ``filter_cascade`` in a
            :class:`~repro.detectors.paper.PaperDetector`, which is
            bit-identical to the pre-arena reply handler.
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        *,
        signal_detector: MaliciousSignalDetector,
        filter_cascade: ReplayFilterCascade,
        base_station: Optional[BaseStation] = None,
        detecting_ids: Optional[List[int]] = None,
        alert_channel: Optional[ReliableChannel] = None,
        request_channel: Optional[ReliableChannel] = None,
        probe_power_randomization_ft: float = 0.0,
        detector: Optional[Detector] = None,
    ) -> None:
        super().__init__(node_id, position, key_manager)
        self.signal_detector = signal_detector
        self.filter_cascade = filter_cascade
        self.detector: Detector = (
            detector
            if detector is not None
            else PaperDetector(signal_detector, filter_cascade)
        )
        self.base_station = base_station
        self.alert_channel = alert_channel
        self.request_channel = request_channel
        self.detecting_ids = list(detecting_ids or [])
        #: Probe requests whose ARQ retry budget was exhausted.
        self.probes_lost = 0
        #: §2.1 countermeasure: "adjust the transmission power in RSSI
        #: technique" — each probe's ranging signature is biased by a
        #: uniform draw in ±this many feet, so an inferring attacker
        #: cannot match the probe's measured distance to a beacon ring.
        self.probe_power_randomization_ft = probe_power_randomization_ft
        self.probe_outcomes: List[ProbeOutcome] = []
        self.alerted_targets: set[int] = set()
        #: Alerts whose ARQ retry budget was exhausted (§3.2 violated).
        self.alerts_lost = 0
        self._next_nonce = 1
        self.on(BeaconPacket, type(self)._handle_probe_reply)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, target_id: int, detecting_id: int) -> None:
        """Request a beacon signal from ``target_id`` under a detecting ID."""
        if detecting_id not in self.detecting_ids:
            raise ValueError(
                f"{detecting_id} is not one of beacon {self.node_id}'s detecting IDs"
            )
        request = BeaconRequest(
            src_id=detecting_id, dst_id=target_id, nonce=self._next_nonce
        )
        self._next_nonce += 1
        bias = 0.0
        if self.probe_power_randomization_ft > 0.0 and self.network is not None:
            bias = self.network.rngs.stream("probe-power").uniform(
                -self.probe_power_randomization_ft,
                self.probe_power_randomization_ft,
            )
        signed = self.key_manager.sign(request)
        if self.request_channel is None:
            self.send(signed, ranging_bias_ft=bias)
            return
        report = self.request_channel.send(
            lambda: self.send(signed, ranging_bias_ft=bias),
            raise_on_exhaustion=False,
        )
        if not report.delivered:
            self.probes_lost += 1

    def probe_all_ids(self, target_id: int) -> None:
        """Probe ``target_id`` once per detecting ID (the paper's m probes)."""
        for detecting_id in self.detecting_ids:
            self.probe(target_id, detecting_id)

    # ------------------------------------------------------------------
    # Reply handling
    # ------------------------------------------------------------------
    def _handle_probe_reply(self, reception: Reception) -> None:
        packet = reception.packet
        if packet.dst_id not in self.detecting_ids:
            return  # a beacon packet for someone else (or our primary id)
        if not self.key_manager.verify(packet):
            return

        exchange = Exchange(
            detector_id=self.node_id,
            detecting_id=packet.dst_id,
            target_id=packet.src_id,
            detector_position=self.position,
            declared_position=packet.claimed_point,
            measured_distance_ft=reception.measured_distance_ft,
            reception=reception,
            rtt_provider=lambda: self._observe_rtt(reception),
        )
        verdict = self.detector.evaluate(exchange)
        self._record(
            packet.dst_id,
            packet.src_id,
            verdict.decision,
            signal_consistent=verdict.signal_consistent,
        )
        if verdict.indict:
            self.report_alert(packet.src_id, time=reception.arrival_time)

    def _observe_rtt(self, reception: Reception) -> float:
        """Measure the register-level RTT of this exchange."""
        if self.network is None:
            return 0.0
        tx = reception.transmission
        return self.network.measure_rtt(self, tx.tx_origin, tx.extra_delay_cycles)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report_alert(self, target_id: int, *, time: float = 0.0) -> bool:
        """Send an authenticated alert about ``target_id`` to the base station.

        A detecting node only reports a given target once (additional
        alerts from the same detector carry no extra information and would
        just burn its report quota). When an ``alert_channel`` is
        configured, the alert rides the lossy link with retransmission —
        the paper's §3.2 fault-tolerance assumption made concrete. An
        exhausted retry budget (:class:`repro.errors.DeliveryError`) is
        absorbed here: the beacon has no recourse beyond the ARQ layer,
        so the alert is counted lost and the protocol degrades instead
        of crashing.
        """
        if self.base_station is None:
            return False
        if target_id in self.alerted_targets:
            return False
        self.alerted_targets.add(target_id)
        payload = BaseStation.alert_payload(self.node_id, target_id)
        tag = self.key_manager.sign_alert_payload(self.node_id, payload)
        if self.alert_channel is None:
            return self.base_station.submit_alert(
                self.node_id, target_id, tag=tag, time=time
            )
        try:
            report = self.alert_channel.send(
                lambda: self.base_station.submit_alert(
                    self.node_id, target_id, tag=tag, time=time
                )
            )
        except DeliveryError:
            self.alerts_lost += 1
            return False
        return report.delivered

    def _record(
        self,
        detecting_id: int,
        target_id: int,
        decision: str,
        *,
        signal_consistent: bool,
    ) -> None:
        self.probe_outcomes.append(
            ProbeOutcome(
                detecting_id=detecting_id, target_id=target_id, decision=decision
            )
        )
        if self.network is not None:
            # The §2.1 verdict is recorded alongside the final decision so
            # post-hoc invariant checkers (repro.verify.invariants) can
            # assert "a consistent signal never indicts" from the trace
            # alone, without re-deriving the check.
            self.network.trace.record(
                self.network.engine.now(),
                "probe",
                detector=self.node_id,
                detecting_id=detecting_id,
                target=target_id,
                decision=decision,
                signal_consistent=signal_consistent,
            )
