"""Detection with promoted beacons (paper §2.3 open problem).

Section 2.3: "a non-beacon node may become a beacon node to supply
location references once it discovers its own location. Localization error
may accumulate ... However, there are still constraints between estimated
measurements and calculated measurements ... we can still apply the
proposed detector to catch possible malicious beacon nodes, though the
specific solutions need further investigation."

This module is one such solution. A *promoted* anchor's declared location
carries estimation error, so the plain §2.1 test (threshold = ranging
error bound) would flag honest promoted anchors. The fix is a
**generation-aware threshold**: each promotion round adds at most one
ranging-error bound of location uncertainty (triangle inequality on the
multilateration residual), so the consistency bound between a detector of
generation ``g_d`` and a target of generation ``g_t`` is

    threshold = e * (1 + g_d + g_t)

where ``e`` is the per-measurement error bound and GPS beacons have
generation 0. A lie must now exceed the *combined* uncertainty to be
detectable — the quantitative version of the paper's "error accumulates"
warning.

Paper section: §2.3 (promoted beacons, open problem)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signal_detector import SignalCheck, SignalVerdict
from repro.utils.geometry import Point, distance
from repro.utils.validation import check_int_in_range, check_non_negative


def uncertainty_for_generation(generation: int, base_error_ft: float) -> float:
    """Worst-case location uncertainty after ``generation`` promotions.

    Generation 0 anchors (GPS / configured beacons) are exact; each
    promotion round multilaterates from the previous round's anchors, so
    the declared-location error grows by at most one ranging-error bound
    per round (good-geometry assumption; the residual gate in
    :func:`repro.localization.atomic.iterative_multilateration` enforces
    it in practice).
    """
    check_int_in_range(generation, "generation", 0)
    check_non_negative(base_error_ft, "base_error_ft")
    return generation * base_error_ft


@dataclass(frozen=True)
class PromotedAnchor:
    """An anchor identity with its promotion pedigree.

    Attributes:
        anchor_id: node identity.
        declared_location: the location it advertises.
        generation: 0 for real beacons; g for nodes promoted in round g.
    """

    anchor_id: int
    declared_location: Point
    generation: int = 0

    def uncertainty_ft(self, base_error_ft: float) -> float:
        """This anchor's worst-case declared-location error."""
        return uncertainty_for_generation(self.generation, base_error_ft)


@dataclass(frozen=True)
class GenerationAwareDetector:
    """The §2.1 consistency check with promotion-aware thresholds.

    Args:
        max_error_ft: the per-measurement ranging error bound ``e``.
    """

    max_error_ft: float = 10.0

    def __post_init__(self) -> None:
        check_non_negative(self.max_error_ft, "max_error_ft")

    def threshold_ft(self, detector: PromotedAnchor, target: PromotedAnchor) -> float:
        """The widened consistency bound for this detector/target pair."""
        return (
            self.max_error_ft
            + detector.uncertainty_ft(self.max_error_ft)
            + target.uncertainty_ft(self.max_error_ft)
        )

    def check(
        self,
        detector: PromotedAnchor,
        target: PromotedAnchor,
        measured_distance_ft: float,
    ) -> SignalCheck:
        """Consistency check between two (possibly promoted) anchors."""
        calculated = distance(detector.declared_location, target.declared_location)
        threshold = self.threshold_ft(detector, target)
        discrepancy = abs(calculated - measured_distance_ft)
        verdict = (
            SignalVerdict.MALICIOUS
            if discrepancy > threshold
            else SignalVerdict.CONSISTENT
        )
        return SignalCheck(
            verdict=verdict,
            calculated_distance_ft=calculated,
            measured_distance_ft=measured_distance_ft,
            discrepancy_ft=discrepancy,
            threshold_ft=threshold,
        )

    def minimum_detectable_lie_ft(
        self, detector: PromotedAnchor, target: PromotedAnchor
    ) -> float:
        """Smallest location lie guaranteed to be flagged by this pair.

        A lie of L feet shifts the calculated distance by at most L; noise
        can mask up to one ``max_error_ft``; honest promotion uncertainty
        widens the threshold. Lies beyond
        ``threshold + max_error`` always trip the check — the security
        floor that *degrades with generation*, quantifying the paper's
        error-accumulation warning.
        """
        return self.threshold_ft(detector, target) + self.max_error_ft
