"""Closed-form analysis from the paper (Sections 2.3 and 3.2).

Every formula behind Figures 5-10, with the paper's symbols:

- ``P'`` — probability a requesting node receives a malicious beacon signal
  *and* the replay filters do not remove it:
  ``P' = (1 - p_n)(1 - p_w)(1 - p_l)``.
- ``P_r`` — probability a benign detecting node (with ``m`` detecting IDs)
  detects a given malicious beacon: ``P_r = 1 - (1 - P')^m``.
- ``P_a`` — per requesting node, the probability the base station receives
  an alert about a given malicious beacon:
  ``P_a = (N_b - N_a) P_r / N``.
- ``P_d`` — probability a malicious beacon is revoked, given ``N_c``
  requesting nodes: ``P_d = P[Binomial(N_c, P_a) > tau_alert]``.
- ``P''`` — residual acceptance probability after revocation:
  ``P'' = P' (1 - P_d)``.
- ``N'`` — expected number of affected non-beacon nodes:
  ``N' = P'' N_c (N - N_b) / N``.
- ``N_f`` — worst-case benign beacons revoked (false positives):
  ``N_f = (2 (1 - p_d) N_w + N_a (tau_report + 1)) / (tau_alert + 1)``.
- ``P_o`` — probability a benign beacon's report counter exceeds
  ``tau_report`` (threshold-selection analysis, Figure 10).

The default population matches the reconstructed paper settings: 10% of
sensor nodes are benign beacon nodes (``(N_b - N_a) / N = 0.1``).

Paper section: §2.3 and §3.2 (closed-form analysis, Figures 5-10)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.utils.stats import binomial_pmf, binomial_sf
from repro.utils.validation import (
    check_int_in_range,
    check_probability,
)


@dataclass(frozen=True)
class Population:
    """Network-size parameters shared by the Section 3 analysis.

    Attributes:
        n_total: total sensor nodes ``N``.
        n_beacons: beacon nodes ``N_b`` (benign + malicious).
        n_malicious: compromised beacon nodes ``N_a``.
    """

    n_total: int = 10_000
    n_beacons: int = 1_010
    n_malicious: int = 10

    def __post_init__(self) -> None:
        check_int_in_range(self.n_total, "n_total", 1)
        check_int_in_range(self.n_beacons, "n_beacons", 0, self.n_total)
        check_int_in_range(self.n_malicious, "n_malicious", 0, self.n_beacons)

    @property
    def n_benign_beacons(self) -> int:
        """``N_b - N_a``."""
        return self.n_beacons - self.n_malicious

    @property
    def n_non_beacons(self) -> int:
        """``N - N_b``."""
        return self.n_total - self.n_beacons

    @property
    def benign_beacon_fraction(self) -> float:
        """``(N_b - N_a) / N`` — 0.1 in the paper's figures."""
        return self.n_benign_beacons / self.n_total


#: The paper's default population (10% benign beacons).
PAPER_POPULATION = Population()


# ----------------------------------------------------------------------
# Section 2.3 — the detector
# ----------------------------------------------------------------------
def p_effective(p_n: float, p_w: float, p_l: float) -> float:
    """``P' = (1 - p_n)(1 - p_w)(1 - p_l)``."""
    check_probability(p_n, "p_n")
    check_probability(p_w, "p_w")
    check_probability(p_l, "p_l")
    return (1.0 - p_n) * (1.0 - p_w) * (1.0 - p_l)


def detection_rate_pr(p_prime: float, m: int) -> float:
    """``P_r = 1 - (1 - P')^m`` — Figure 5.

    Args:
        p_prime: the attacker's effective maliciousness ``P'``.
        m: detecting IDs per beacon node.
    """
    check_probability(p_prime, "p_prime")
    check_int_in_range(m, "m", 1)
    return 1.0 - (1.0 - p_prime) ** m


def benign_false_alert_probability(p_d: float, has_wormhole: bool) -> float:
    """P[a benign detector alerts on a benign target] (Section 2.3).

    At most ``1 - p_d`` when a wormhole connects them, 0 otherwise.
    """
    check_probability(p_d, "p_d")
    return (1.0 - p_d) if has_wormhole else 0.0


# ----------------------------------------------------------------------
# Section 3.2 — revocation
# ----------------------------------------------------------------------
def alert_probability(
    p_prime: float, m: int, population: Population = PAPER_POPULATION
) -> float:
    """``P_a = (N_b - N_a) P_r / N`` — per-requesting-node alert probability."""
    p_r = detection_rate_pr(p_prime, m)
    return population.n_benign_beacons * p_r / population.n_total


def revocation_detection_rate(
    p_prime: float,
    m: int,
    tau_alert: int,
    n_c: int,
    population: Population = PAPER_POPULATION,
) -> float:
    """``P_d = P[Binomial(N_c, P_a) > tau_alert]`` — Figures 6 and 7.

    Args:
        p_prime: the attacker's ``P'``.
        m: detecting IDs per beacon.
        tau_alert: revocation threshold (alerts needed exceeds this).
        n_c: requesting nodes contacting the malicious beacon.
    """
    check_int_in_range(tau_alert, "tau_alert", 0)
    check_int_in_range(n_c, "n_c", 0)
    p_a = alert_probability(p_prime, m, population)
    return binomial_sf(tau_alert, n_c, p_a)


def residual_acceptance(
    p_prime: float,
    m: int,
    tau_alert: int,
    n_c: int,
    population: Population = PAPER_POPULATION,
) -> float:
    """``P'' = P' (1 - P_d)`` — acceptance probability after revocation."""
    p_d = revocation_detection_rate(p_prime, m, tau_alert, n_c, population)
    return p_prime * (1.0 - p_d)


def affected_non_beacons(
    p_prime: float,
    m: int,
    tau_alert: int,
    n_c: int,
    population: Population = PAPER_POPULATION,
) -> float:
    """``N' = P'' N_c (N - N_b) / N`` — Figure 8.

    The expected number of non-beacon requesters that accept a malicious
    signal from one malicious beacon after all revocations.
    """
    p_pp = residual_acceptance(p_prime, m, tau_alert, n_c, population)
    return p_pp * n_c * population.n_non_beacons / population.n_total


def worst_case_affected(
    m: int,
    tau_alert: int,
    n_c: int,
    population: Population = PAPER_POPULATION,
    *,
    grid: int = 1000,
) -> Tuple[float, float]:
    """Adversarially chosen ``P'`` maximizing ``N'`` — Figure 9.

    Returns:
        ``(best_p_prime, max_n_affected)``.
    """
    check_int_in_range(grid, "grid", 1)
    best_p = 0.0
    best_n = 0.0
    for i in range(1, grid + 1):
        p = i / grid
        n = affected_non_beacons(p, m, tau_alert, n_c, population)
        if n > best_n:
            best_n = n
            best_p = p
    return best_p, best_n


def false_positives_nf(
    n_wormholes: int,
    p_d: float,
    tau_report: int,
    tau_alert: int,
    population: Population = PAPER_POPULATION,
) -> float:
    """``N_f = (2 (1-p_d) N_w + N_a (tau_report + 1)) / (tau_alert + 1)``.

    Worst-case benign beacons revoked: undetected wormholes generate
    ``2 (1 - p_d) N_w`` cross-benign alerts (either endpoint may report
    the other), colluding malicious beacons spend their full quota, and
    revoking one benign beacon costs ``tau_alert + 1`` accepted alerts.
    """
    check_int_in_range(n_wormholes, "n_wormholes", 0)
    check_probability(p_d, "p_d")
    check_int_in_range(tau_report, "tau_report", 0)
    check_int_in_range(tau_alert, "tau_alert", 0)
    benign_alerts = 2.0 * (1.0 - p_d) * n_wormholes
    collusion_alerts = population.n_malicious * (tau_report + 1)
    return (benign_alerts + collusion_alerts) / (tau_alert + 1)


def report_counter_overflow(
    tau_report: int,
    *,
    n_c: int,
    m: int,
    p_prime: float,
    tau_alert: int,
    n_wormholes: int,
    p_d: float,
    population: Population = PAPER_POPULATION,
) -> float:
    """``P_o`` — probability a benign beacon's report counter exceeds
    ``tau_report`` (Figure 10).

    A benign beacon u's counter increments once per malicious beacon it
    detects (prob ``P_1`` each) and once per undetected wormhole it sits on
    (prob ``P_2`` each); the overflow probability is the tail of the sum of
    the two binomials.
    """
    check_int_in_range(tau_report, "tau_report", 0)
    check_int_in_range(n_c, "n_c", 0)
    check_int_in_range(n_wormholes, "n_wormholes", 0)
    check_probability(p_d, "p_d")

    p_r = detection_rate_pr(p_prime, m)
    p_detect = revocation_detection_rate(p_prime, m, tau_alert, n_c, population)
    # P_1: u is one of the malicious node's N_c requesters (n_c / N), it
    # reports (P_r), and the target was not already revoked (1 - P_d).
    p1 = min(1.0, p_r * n_c * (1.0 - p_detect) / population.n_total)

    n_f = false_positives_nf(n_wormholes, p_d, tau_report, tau_alert, population)
    n_benign = population.n_benign_beacons
    if n_benign > 0:
        # P_2: u is an endpoint of a given wormhole (2 / (N_b - N_a)), the
        # wormhole goes undetected so u reports (1 - p_d), and the peer is
        # not already revoked ((N_b - N_a - N_f) / (N_b - N_a)).
        p2 = (
            2.0
            * (1.0 - p_d)
            * max(0.0, n_benign - n_f)
            / (n_benign * n_benign)
        )
        p2 = min(1.0, p2)
    else:
        p2 = 0.0

    n_a = population.n_malicious
    # P[X + Y <= tau_report], X ~ Bin(N_a, P1), Y ~ Bin(N_w, P2).
    prob_le = 0.0
    for i in range(tau_report + 1):
        for j in range(i + 1):
            k = i - j
            prob_le += binomial_pmf(j, n_a, p1) * binomial_pmf(k, n_wormholes, p2)
    return max(0.0, 1.0 - prob_le)


def expected_alerts_against(
    p_prime: float,
    m: int,
    n_c: int,
    population: Population = PAPER_POPULATION,
) -> float:
    """Mean accepted alerts the base station sees about one malicious beacon."""
    return n_c * alert_probability(p_prime, m, population)


def collusion_revocations(
    tau_report: int, tau_alert: int, population: Population = PAPER_POPULATION
) -> float:
    """Benign beacons colluders can revoke: ``N_a (tau'+1) / (tau+1)``."""
    check_int_in_range(tau_report, "tau_report", 0)
    check_int_in_range(tau_alert, "tau_alert", 0)
    return population.n_malicious * (tau_report + 1) / (tau_alert + 1)
