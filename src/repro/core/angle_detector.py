"""Angle-of-arrival consistency detection (paper §2.3 extension).

Section 2.3 notes the distance-based detector "can be easily revised to
deal with location estimation based on other measurements" such as AoA.
This module is that revision:

- :class:`AngleConsistencyDetector` compares the bearing *measured* from a
  beacon signal (AoA hardware) with the bearing *calculated* from the
  receiver's own location to the location declared in the beacon packet.
  A benign beacon's discrepancy is bounded by the AoA error; beyond that,
  the signal is malicious.
- :func:`aoa_triangulate` is the matching localization solver: a node with
  two or more bearings to (declared) beacon locations solves the linear
  least-squares intersection of the bearing rays.

The two detectors are complementary: a location lie *along* the true
bearing ray preserves the angle but not the distance; a lie at the true
range but off-ray preserves the distance but not the angle. The combined
check (:class:`CombinedConsistencyDetector`) closes both gaps, leaving
only lies consistent with *both* measurements — which, by the paper's §2.1
equivalence argument, are exactly the harmless ones.

Paper section: §2.3 (AoA variant of the consistency check)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.signal_detector import MaliciousSignalDetector, SignalCheck
from repro.errors import InsufficientReferencesError, SolverError
from repro.localization.references import LocationReference
from repro.utils.geometry import Point
from repro.utils.validation import check_non_negative


def wrap_angle(angle_rad: float) -> float:
    """Normalize an angle into (-pi, pi]."""
    wrapped = math.fmod(angle_rad, 2.0 * math.pi)
    if wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    elif wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    return wrapped


def angular_difference(a_rad: float, b_rad: float) -> float:
    """The magnitude of the smallest rotation between two bearings."""
    return abs(wrap_angle(a_rad - b_rad))


@dataclass(frozen=True)
class AngleCheck:
    """Diagnostics of one bearing-consistency check."""

    is_malicious: bool
    calculated_bearing_rad: float
    measured_bearing_rad: float
    discrepancy_rad: float
    threshold_rad: float


@dataclass(frozen=True)
class AngleConsistencyDetector:
    """The AoA analogue of the §2.1 distance-consistency detector.

    Args:
        max_error_rad: maximum bearing measurement error of the AoA
            hardware (the decision threshold).
    """

    max_error_rad: float = math.radians(5.0)

    def __post_init__(self) -> None:
        check_non_negative(self.max_error_rad, "max_error_rad")

    def check(
        self,
        own_location: Point,
        declared_location: Point,
        measured_bearing_rad: float,
    ) -> AngleCheck:
        """Compare the measured bearing with the declared-location bearing."""
        calculated = math.atan2(
            declared_location.y - own_location.y,
            declared_location.x - own_location.x,
        )
        discrepancy = angular_difference(calculated, measured_bearing_rad)
        return AngleCheck(
            is_malicious=discrepancy > self.max_error_rad,
            calculated_bearing_rad=calculated,
            measured_bearing_rad=wrap_angle(measured_bearing_rad),
            discrepancy_rad=discrepancy,
            threshold_rad=self.max_error_rad,
        )

    def is_malicious(
        self,
        own_location: Point,
        declared_location: Point,
        measured_bearing_rad: float,
    ) -> bool:
        """Boolean shortcut for :meth:`check`."""
        return self.check(
            own_location, declared_location, measured_bearing_rad
        ).is_malicious


@dataclass(frozen=True)
class CombinedCheck:
    """Outcome of running both the distance and the angle checks."""

    distance: SignalCheck
    angle: AngleCheck

    @property
    def is_malicious(self) -> bool:
        """Flagged when either modality is inconsistent."""
        return self.distance.is_malicious or self.angle.is_malicious


@dataclass(frozen=True)
class CombinedConsistencyDetector:
    """Distance + bearing consistency, flagged when either check fails."""

    distance_detector: MaliciousSignalDetector
    angle_detector: AngleConsistencyDetector

    def check(
        self,
        own_location: Point,
        declared_location: Point,
        measured_distance_ft: float,
        measured_bearing_rad: float,
    ) -> CombinedCheck:
        """Run both checks and combine."""
        return CombinedCheck(
            distance=self.distance_detector.check(
                own_location, declared_location, measured_distance_ft
            ),
            angle=self.angle_detector.check(
                own_location, declared_location, measured_bearing_rad
            ),
        )


# ----------------------------------------------------------------------
# AoA localization (the substrate the extension protects)
# ----------------------------------------------------------------------
#: Minimum bearings for a 2-D fix.
MIN_BEARINGS = 2


def aoa_triangulate(references: Sequence[LocationReference]) -> Point:
    """Solve a node's position from bearings to declared beacon locations.

    Each reference must carry ``measured_angle_rad`` — the bearing from the
    (unknown) node position toward the beacon. The node lies on the line
    through the beacon with that direction; two or more non-parallel
    bearings intersect in the least-squares sense:

        sin(theta_i) * (b_ix - x) - cos(theta_i) * (b_iy - y) = 0

    Raises:
        InsufficientReferencesError: fewer than two references with
            bearings, or (numerically) parallel bearing lines.
        SolverError: degenerate solve.
    """
    usable = [r for r in references if r.measured_angle_rad is not None]
    if len(usable) < MIN_BEARINGS:
        raise InsufficientReferencesError(
            f"AoA triangulation needs >= {MIN_BEARINGS} bearings, "
            f"got {len(usable)}"
        )
    rows = []
    rhs = []
    for ref in usable:
        theta = ref.measured_angle_rad
        s, c = math.sin(theta), math.cos(theta)
        # s*(bx - x) - c*(by - y) = 0  =>  -s*x + c*y = c*by - s*bx... keep
        # signs straight by moving knowns to the right-hand side:
        rows.append([s, -c])
        rhs.append(s * ref.beacon_location.x - c * ref.beacon_location.y)
    a = np.array(rows, dtype=float)
    b = np.array(rhs, dtype=float)
    if np.linalg.matrix_rank(a) < 2:
        raise InsufficientReferencesError(
            "bearing lines are parallel; intersection is ambiguous"
        )
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    if not np.all(np.isfinite(solution)):
        raise SolverError("AoA triangulation produced a non-finite position")
    return Point(float(solution[0]), float(solution[1]))
