"""Angle-aware detecting beacons (the §2.3 AoA extension, end to end).

A :class:`AngleDetectingBeacon` runs *both* consistency checks on every
probe reply: the §2.1 distance check and the AoA bearing check
(:mod:`repro.core.angle_detector`). The payoff is against the paper's
"consistent lie" equivalence class: an attacker who games its transmit
power can make the *measured distance* agree with a lied location, but it
cannot steer the physical direction its signal arrives from — so a lie off
the true bearing ray is caught by the angle check even when the distance
check is blind to it.

Paper section: §2.3 (angle-aware detecting beacons)
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.angle_detector import (
    AngleConsistencyDetector,
    CombinedConsistencyDetector,
)
from repro.core.detecting import DetectingBeacon
from repro.core.replay_filter import FilterDecision, ReplayFilterCascade
from repro.core.revocation import BaseStation
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.sim.radio import Reception
from repro.utils.geometry import Point


class AngleDetectingBeacon(DetectingBeacon):
    """A detecting beacon with an AoA antenna.

    Args:
        angle_detector: the bearing-consistency check (its
            ``max_error_rad`` should match the antenna's accuracy).
        aoa_error_rad: measurement noise of the antenna.
        (remaining args as :class:`DetectingBeacon`)
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        *,
        signal_detector: MaliciousSignalDetector,
        filter_cascade: ReplayFilterCascade,
        angle_detector: Optional[AngleConsistencyDetector] = None,
        aoa_error_rad: float = math.radians(5.0),
        base_station: Optional[BaseStation] = None,
        detecting_ids: Optional[List[int]] = None,
    ) -> None:
        super().__init__(
            node_id,
            position,
            key_manager,
            signal_detector=signal_detector,
            filter_cascade=filter_cascade,
            base_station=base_station,
            detecting_ids=detecting_ids,
        )
        self.aoa_error_rad = aoa_error_rad
        self.combined = CombinedConsistencyDetector(
            distance_detector=signal_detector,
            angle_detector=(
                angle_detector
                if angle_detector is not None
                else AngleConsistencyDetector(max_error_rad=aoa_error_rad)
            ),
        )
        self.angle_only_catches = 0

    def _handle_probe_reply(self, reception: Reception) -> None:
        packet = reception.packet
        if packet.dst_id not in self.detecting_ids:
            return
        if not self.key_manager.verify(packet):
            return

        bearing = 0.0
        if self.network is not None:
            bearing = self.network.measure_bearing(
                self,
                reception.transmission.tx_origin,
                max_error_rad=self.aoa_error_rad,
            )
        check = self.combined.check(
            self.position,
            packet.claimed_point,
            reception.measured_distance_ft,
            bearing,
        )
        # For an angle-aware beacon the consistency verdict is the
        # *combined* check: a distance-consistent lie off the bearing ray
        # is still inconsistent, and indicting it is correct (§2.3).
        consistent = not check.is_malicious
        if consistent:
            self._record(
                packet.dst_id, packet.src_id, "consistent",
                signal_consistent=consistent,
            )
            return
        if check.angle.is_malicious and not check.distance.is_malicious:
            self.angle_only_catches += 1

        rtt = self._observe_rtt(reception)
        decision = self.filter_cascade.evaluate(
            reception, self.position, rtt, receiver_knows_location=True
        )
        if decision is FilterDecision.REPLAYED_WORMHOLE:
            self._record(
                packet.dst_id, packet.src_id, "replayed_wormhole",
                signal_consistent=consistent,
            )
            return
        if decision is FilterDecision.REPLAYED_LOCAL:
            self._record(
                packet.dst_id, packet.src_id, "replayed_local",
                signal_consistent=consistent,
            )
            return
        self._record(
            packet.dst_id, packet.src_id, "alert", signal_consistent=consistent
        )
        self.report_alert(packet.src_id, time=reception.arrival_time)
