"""End-to-end secure location discovery (paper Section 4).

:class:`SecureLocalizationPipeline` deploys the paper's simulated network —
N sensor nodes in a square field, N_b beacons of which N_a are compromised,
a wormhole tunnel, detecting IDs, replay filters, base-station revocation —
runs the full protocol, and reports the evaluation metrics:

- **detection rate**: fraction of malicious beacons revoked;
- **false positive rate**: fraction of benign beacons revoked;
- **N'**: average number of requesting non-beacon nodes that accepted a
  (still-unrevoked) malicious beacon's misleading signal.

Phases:

1. *Collusion*: malicious beacons flood their false-alert quota at the
   base station (worst case: before any honest alert).
2. *Detection*: every benign beacon probes each beacon it can reach, once
   per detecting ID; surviving alerts drive revocations.
3. *Localization*: non-beacon nodes request beacon signals, filter
   replays, discard revoked beacons, and estimate positions.

Paper section: §4 (end-to-end simulation evaluation)
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.attacks.collusion import ColludingReporters
from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy
from repro.core.replay_filter import FilterDecision, ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.detecting import DetectingBeacon
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.errors import ConfigurationError, InsufficientReferencesError
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.localization.beacon import NonBeaconAgent
from repro.obs import Observability, ObserveConfig, linear_buckets
from repro.sim.engine import Engine
from repro.sim.network import Network, WormholeLink
from repro.sim.node import Node
from repro.sim.radio import RadioModel, Reception
from repro.sim.reliable import LossModel, ReliableChannel
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import TraceRecorder
from repro.utils.geometry import Point, distance, random_point_in_rect
from repro.utils.profiling import PhaseProfile
from repro.utils.validation import check_int_in_range, check_probability
from repro.wormhole.detector import ProbabilisticWormholeDetector

#: Fixed bucket bounds (cycles) for the ``rtt_cycles`` histograms. The
#: honest register-level RTT lives in roughly [15480, 17210] cycles
#: (RttModel defaults), so 250-cycle buckets tile 14k–18k finely enough
#: to reproduce the Figure-4 distribution shape, with a coarse tail
#: catching replayed/delayed/faulted exchanges. Fixed bounds (never
#: data-derived) are what keep worker histograms mergeable.
RTT_BUCKETS_CYCLES = linear_buckets(14_000.0, 250.0, 17) + (
    20_000.0,
    30_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
)


def _vec_core_default() -> bool:
    """Default for ``use_vectorized_core``: the env switch, else False.

    Setting ``REPRO_USE_VECTORIZED_CORE=1`` flips the default on — this
    is how the CI matrix runs the whole tier-1 suite through the batch
    path without editing every test's config.
    """
    return os.environ.get("REPRO_USE_VECTORIZED_CORE", "") == "1"


@dataclass(frozen=True)
class PipelineConfig:
    """Deployment and protocol parameters (paper Section 4 defaults).

    The OCR of the paper dropped most digits; these values are the
    DESIGN.md reconstruction: 1000 nodes in a 1000x1000 ft field, 110
    beacons with 10 compromised (so benign beacons are 10% of all nodes),
    150 ft radio range, 10 ft maximum ranging error, m = 8 detecting IDs,
    wormhole detection rate 0.9, one wormhole (100,100)-(800,700).
    """

    n_total: int = 1_000
    n_beacons: int = 110
    n_malicious: int = 10
    field_width_ft: float = 1_000.0
    field_height_ft: float = 1_000.0
    comm_range_ft: float = 150.0
    max_ranging_error_ft: float = 10.0
    m_detecting_ids: int = 8
    tau_report: int = 2
    tau_alert: int = 2
    wormhole_p_d: float = 0.9
    #: Probability the wormhole detector flags a *clean* direct signal
    #: (§2.2.1 robustness ablation; the paper's model uses 0). Each
    #: clean evaluated reception draws one coin on the
    #: ``wormhole-detector`` stream, so 0.0 keeps the stream untouched
    #: and bit-identical to earlier seeds.
    wormhole_false_alarm_rate: float = 0.0
    p_prime: float = 0.2
    location_lie_ft: float = 100.0
    #: Which registered :mod:`repro.detectors` implementation judges
    #: probe replies. ``"paper"`` (default) is the §2.1+§2.2 reference
    #: suite, bit-identical to the pre-arena pipeline; rivals
    #: (``"mahalanobis"``, ``"noisy"``, ``"consistency"``) calibrate on
    #: the dedicated ``detector-calibration`` stream and share one
    #: instance across all detecting beacons. Non-paper detectors run on
    #: the scalar path only (see
    #: :func:`repro.vec.vectorized_core_supported`).
    detector: str = "paper"
    wormhole_endpoints: Optional[Tuple[Tuple[float, float], Tuple[float, float]]] = (
        (100.0, 100.0),
        (800.0, 700.0),
    )
    collusion: bool = True
    rtt_calibration_samples: int = 2_000
    alert_loss_rate: float = 0.0
    alert_max_retries: int = 8
    #: ARQ for the detecting-protocol request hop: when > 0, every probe
    #: request rides a retrying channel over a link with this loss rate.
    request_loss_rate: float = 0.0
    request_max_retries: int = 3
    #: Timeout growth per ARQ retry for both channels (1.0 = fixed
    #: timeout stop-and-wait, 2.0 = binary exponential backoff).
    arq_backoff_factor: float = 1.0
    #: "oracle": revocations reach every node instantly (the paper's §3.2
    #: working assumption). "flood": revocation notices are disseminated
    #: as µTESLA-authenticated broadcasts relayed hop by hop — the
    #: mechanism behind the assumption, measurable under radio loss.
    revocation_dissemination: str = "oracle"
    notice_interval_cycles: float = 2_000_000.0
    notice_rounds: int = 4
    network_loss_rate: float = 0.0
    #: Route reachability and metrics scans through the grid spatial
    #: index (the fast path). False falls back to the naive O(N * N_b)
    #: scans — kept as a reference oracle; results are bit-identical
    #: either way (asserted by tests/core/test_pipeline_spatial.py).
    use_spatial_index: bool = True
    #: Route the detection/localization phases and the metrics scans
    #: through the :mod:`repro.vec` batch kernels. Falls back to the
    #: scalar path silently when NumPy is absent or the configuration
    #: is outside the batch path's supported envelope (ARQ loss,
    #: flooded revocation, event budgets — see
    #: :func:`repro.vec.vectorized_core_supported`). Results match the
    #: scalar path under the parity rules in docs/PERFORMANCE.md:
    #: everything bit-identical except localization errors (≤ ~1e-3 ft).
    #: Defaults to the ``REPRO_USE_VECTORIZED_CORE=1`` env switch.
    use_vectorized_core: bool = field(default_factory=_vec_core_default)
    #: Declarative fault-injection scenario (see :mod:`repro.faults` and
    #: docs/FAULTS.md). ``None`` — or an all-zero :class:`FaultConfig` —
    #: leaves every code path bit-identical to the fault-free pipeline
    #: (asserted by tests/core/test_pipeline_faults.py).
    faults: Optional[FaultConfig] = None
    #: Hard cap on discrete events per trial; ``None`` = unbounded. A
    #: pathological fault scenario then fails with a catchable
    #: :class:`repro.errors.BudgetExceededError` instead of running away.
    max_events: Optional[int] = None
    #: Observability switches (see :mod:`repro.obs`). ``None`` (default)
    #: builds no observability object at all; an
    #: :class:`repro.obs.ObserveConfig` collects spans/metrics/RTT
    #: histograms. Either way the layer draws zero randomness, so
    #: results are bit-identical to observe=None (asserted by
    #: tests/core/test_pipeline_observe.py). Excluded from result-cache
    #: keys for the same reason.
    observe: Optional[ObserveConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_probability(self.alert_loss_rate, "alert_loss_rate")
        check_int_in_range(self.alert_max_retries, "alert_max_retries", 0)
        check_probability(self.request_loss_rate, "request_loss_rate")
        check_int_in_range(self.request_max_retries, "request_max_retries", 0)
        if self.arq_backoff_factor < 1.0:
            raise ConfigurationError(
                f"arq_backoff_factor must be >= 1.0, got {self.arq_backoff_factor}"
            )
        if self.max_events is not None:
            check_int_in_range(self.max_events, "max_events", 1)
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise ConfigurationError(
                f"faults must be a FaultConfig or None, got {self.faults!r}"
            )
        if self.observe is not None and not isinstance(self.observe, ObserveConfig):
            raise ConfigurationError(
                f"observe must be an ObserveConfig or None, got {self.observe!r}"
            )
        check_probability(self.network_loss_rate, "network_loss_rate")
        check_int_in_range(self.notice_rounds, "notice_rounds", 1)
        if self.revocation_dissemination not in ("oracle", "flood"):
            raise ConfigurationError(
                "revocation_dissemination must be 'oracle' or 'flood', "
                f"got {self.revocation_dissemination!r}"
            )
        check_int_in_range(self.n_total, "n_total", 1)
        check_int_in_range(self.n_beacons, "n_beacons", 0, self.n_total)
        check_int_in_range(self.n_malicious, "n_malicious", 0, self.n_beacons)
        check_int_in_range(self.m_detecting_ids, "m_detecting_ids", 0)
        check_probability(self.wormhole_p_d, "wormhole_p_d")
        check_probability(
            self.wormhole_false_alarm_rate, "wormhole_false_alarm_rate"
        )
        check_probability(self.p_prime, "p_prime")
        from repro.detectors import available_detectors

        if self.detector not in available_detectors():
            raise ConfigurationError(
                f"detector must be one of {available_detectors()}, "
                f"got {self.detector!r}"
            )
        if self.comm_range_ft <= 0:
            raise ConfigurationError(
                f"comm_range_ft must be > 0, got {self.comm_range_ft}"
            )


@dataclass
class PipelineResult:
    """Evaluation metrics of one pipeline run.

    ``detection_rate`` / ``false_positive_rate`` are ``None`` when the
    respective beacon population is empty — the rate is undefined, and
    the aggregation layer excludes such trials rather than biasing the
    Monte-Carlo mean toward zero.
    """

    detection_rate: Optional[float]
    false_positive_rate: Optional[float]
    affected_non_beacons_per_malicious: float
    revoked_malicious: int
    revoked_benign: int
    alerts_accepted: int
    alerts_rejected: int
    probes_sent: int
    localization_errors_ft: List[float] = field(default_factory=list)
    affected_node_ids: Set[int] = field(default_factory=set)
    mean_requesters_per_malicious: float = 0.0

    @property
    def mean_localization_error_ft(self) -> float:
        """Average position error over solved non-beacon nodes."""
        if not self.localization_errors_ft:
            return float("nan")
        return sum(self.localization_errors_ft) / len(self.localization_errors_ft)


class SecureNonBeaconAgent(NonBeaconAgent):
    """A non-beacon node with the replay filters installed.

    Accepts a beacon signal only when the wormhole detector and the RTT
    local-replay detector both pass it (paper: both detectors are installed
    on "every beacon and non-beacon node").
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        filter_cascade: ReplayFilterCascade,
    ) -> None:
        super().__init__(node_id, position, key_manager)
        self.filter_cascade = filter_cascade
        self.rejected_replays = 0
        self.accepted_misleading: List[int] = []

    def accepts(self, reception: Reception) -> bool:
        rtt = self._observe_rtt(reception)
        decision = self.filter_cascade.evaluate(
            reception, self.position, rtt, receiver_knows_location=False
        )
        if decision is not FilterDecision.ACCEPT:
            self.rejected_replays += 1
            return False
        return True

    def _observe_rtt(self, reception: Reception) -> float:
        if self.network is None:
            return 0.0
        tx = reception.transmission
        return self.network.measure_rtt(self, tx.tx_origin, tx.extra_delay_cycles)


class SecureLocalizationPipeline:
    """Builds and runs the full Section 4 simulation."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.rngs = RngRegistry(self.config.seed)
        self.trace = TraceRecorder(enabled=True)
        self.engine: Engine = Engine(event_budget=self.config.max_events)
        #: Built by :meth:`build` when the config enables faults; None on
        #: the (bit-identical) fault-free path.
        self.fault_injector: Optional[FaultInjector] = None
        self.key_manager = KeyManager()
        self.network: Optional[Network] = None
        self.base_station: Optional[BaseStation] = None
        self.benign_beacons: List[DetectingBeacon] = []
        self.malicious_beacons: List[MaliciousBeacon] = []
        self.agents: List[SecureNonBeaconAgent] = []
        #: The shared rival detector instance, or None on the paper path
        #: (where each beacon owns a PaperDetector); set by :meth:`build`.
        self.detector = None
        self.notice_distributor = None
        self._built = False
        self._probes_sent = 0
        #: Lazily resolved: config switch AND supported envelope AND
        #: NumPy importable. None until first queried.
        self._vec_active: Optional[bool] = None
        #: Batch-path work counters (waves closed, deliveries batched,
        #: noise/RTT draws batched); folded into observability at
        #: finalize and into :meth:`profile_snapshot` as ``vec_*``.
        self._vec_counters: Dict[str, int] = {}
        #: Per-phase wall clock + hot-path counters; populated by
        #: :meth:`run` and read back via :meth:`profile_snapshot`.
        self.profile = PhaseProfile()
        #: The trial's observability context, or None when
        #: ``config.observe`` is None (the default — no obs object is
        #: even constructed, so the hot paths carry zero extra checks
        #: beyond one ``is None`` test at phase boundaries).
        self.obs: Optional[Observability] = None
        if self.config.observe is not None:
            self.obs = Observability(
                self.config.observe,
                trace=self.trace,
                sim_clock=self.engine.now,
            )
        self._obs_finalized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> "SecureLocalizationPipeline":
        """Deploy the network; idempotent."""
        if self._built:
            return self
        cfg = self.config
        radio = RadioModel(comm_range_ft=cfg.comm_range_ft)
        loss_model = None
        if cfg.network_loss_rate > 0.0:
            loss_model = LossModel(
                cfg.network_loss_rate, self.rngs.stream("network-loss")
            )
        if cfg.faults is not None and cfg.faults.enabled:
            # The injector seed derives from the pipeline seed, so one
            # (config, seed) pair still fully determines a faulted run;
            # fault streams are named, so they never perturb the draws
            # of the protocol/deployment streams.
            self.fault_injector = FaultInjector.from_config(
                cfg.faults, derive_seed(cfg.seed, "faults")
            )
        self.network = Network(
            self.engine,
            radio=radio,
            rngs=self.rngs,
            max_ranging_error_ft=cfg.max_ranging_error_ft,
            trace=self.trace,
            loss_model=loss_model,
            fault_injector=self.fault_injector,
        )

        # RTT calibration (attack-free, as in Figure 4). A fault scenario
        # may opt into calibrating under the faulted observation path
        # (jitter/spikes; drift is per-observer and stays out), so the
        # window absorbs field noise instead of the lab-clean support.
        calibration_perturb = None
        if (
            self.fault_injector is not None
            and cfg.faults.recalibrate_under_faults
            and self.fault_injector.perturbs_rtt()
        ):
            calibration_perturb = self.fault_injector.perturb_rtt
        obs = self.obs
        rtt_histograms = obs is not None and obs.config.rtt_histograms
        calibration_observe = None
        if rtt_histograms:
            calibration_observe = obs.registry.histogram(
                "rtt_cycles", buckets=RTT_BUCKETS_CYCLES, kind="calibration"
            ).observe
        # Calibrate at the radio range, not at zero separation: the RTT
        # includes a flight term that grows with distance, so a window
        # measured at 0 ft sits ~2 cycles below what an honest in-range
        # exchange can produce — with zero jitter the local-replay filter
        # would then flag honest beacons at the field's edge. Calibrating
        # at comm_range_ft makes x_max dominate every honest exchange
        # (the §2.2.2 honest-window invariant in repro.verify).
        calibration_sampler = None
        if self._vectorized_active():
            from repro.vec.measurement import batched_calibration_rtts

            calibration_sampler = batched_calibration_rtts
        calibration = calibrate_rtt(
            self.network.rtt_model,
            self.rngs.stream("rtt-calibration"),
            samples=cfg.rtt_calibration_samples,
            distance_ft=cfg.comm_range_ft,
            perturb=calibration_perturb,
            observe=calibration_observe,
            sampler=calibration_sampler,
        )
        if calibration_sampler is not None:
            self._vec_bump("vec_calibration_rtts", cfg.rtt_calibration_samples)
        if rtt_histograms:
            self.network.rtt_observer = self._make_rtt_observer(obs)

        def canonical_identity(identity: int) -> int:
            if self.key_manager.is_detecting_id(identity):
                return self.key_manager.owner_of_detecting_id(identity)
            return identity

        wormhole_detector = ProbabilisticWormholeDetector(
            cfg.wormhole_p_d,
            self.rngs.stream("wormhole-detector"),
            false_alarm_rate=cfg.wormhole_false_alarm_rate,
            identity_resolver=canonical_identity,
        )
        signal_detector = MaliciousSignalDetector(
            max_error_ft=cfg.max_ranging_error_ft
        )
        # Rival detectors: one calibrated instance shared by every
        # detecting beacon (exchanges carry the beacon identity, so
        # per-pair state lives inside the detector). The paper path
        # passes None — each beacon wraps its own cascade objects in a
        # PaperDetector — and, since calibration draws only from the
        # dedicated "detector-calibration" stream, stays bit-identical.
        shared_detector = None
        if cfg.detector != "paper":
            from repro.detectors import DetectorContext, make_detector

            shared_detector = make_detector(cfg.detector)
            shared_detector.calibrate(
                DetectorContext(
                    max_ranging_error_ft=cfg.max_ranging_error_ft,
                    comm_range_ft=cfg.comm_range_ft,
                    rtt_model=self.network.rtt_model,
                    rtt_calibration=calibration,
                    rng=self.rngs.stream("detector-calibration"),
                )
            )
        self.detector = shared_detector
        self.base_station = BaseStation(
            self.key_manager,
            RevocationConfig(tau_report=cfg.tau_report, tau_alert=cfg.tau_alert),
            on_revoke=self._propagate_revocation,
            trace=self.trace,
        )

        alert_channel: Optional[ReliableChannel] = None
        if cfg.alert_loss_rate > 0.0:
            alert_channel = ReliableChannel(
                self.engine,
                LossModel(cfg.alert_loss_rate, self.rngs.stream("alert-loss")),
                max_retries=cfg.alert_max_retries,
                backoff_factor=cfg.arq_backoff_factor,
                name="alert",
            )
        self.alert_channel = alert_channel
        request_channel: Optional[ReliableChannel] = None
        if cfg.request_loss_rate > 0.0:
            request_channel = ReliableChannel(
                self.engine,
                LossModel(
                    cfg.request_loss_rate, self.rngs.stream("request-loss")
                ),
                max_retries=cfg.request_max_retries,
                backoff_factor=cfg.arq_backoff_factor,
                name="request",
            )
        self.request_channel = request_channel

        deploy_rng = self.rngs.stream("deployment")
        field_point = lambda: random_point_in_rect(  # noqa: E731 - local shorthand
            deploy_rng, cfg.field_width_ft, cfg.field_height_ft
        )

        def make_cascade() -> ReplayFilterCascade:
            return ReplayFilterCascade(
                wormhole_detector=wormhole_detector,
                local_replay_detector=LocalReplayDetector(calibration),
                comm_range_ft=cfg.comm_range_ft,
            )

        next_id = 1
        # Benign beacons (ids 1 .. N_b - N_a).
        for _ in range(cfg.n_beacons - cfg.n_malicious):
            self.key_manager.enroll(next_id, is_beacon=True)
            beacon = DetectingBeacon(
                next_id,
                field_point(),
                self.key_manager,
                signal_detector=signal_detector,
                filter_cascade=make_cascade(),
                base_station=self.base_station,
                detecting_ids=self.key_manager.allocate_detecting_ids(
                    next_id, cfg.m_detecting_ids
                ),
                alert_channel=alert_channel,
                request_channel=request_channel,
                detector=shared_detector,
            )
            self.network.add_node(beacon)
            for did in beacon.detecting_ids:
                self.network.add_alias(did, beacon.node_id)
            self.benign_beacons.append(beacon)
            next_id += 1

        # Malicious beacons (the next N_a ids).
        for k in range(cfg.n_malicious):
            self.key_manager.enroll(next_id, is_beacon=True)
            strategy = AdversaryStrategy.with_effective(
                cfg.p_prime,
                location_lie_ft=cfg.location_lie_ft,
                seed=cfg.seed * 1_000 + k,
            )
            beacon = MaliciousBeacon(
                next_id, field_point(), self.key_manager, strategy
            )
            self.network.add_node(beacon)
            self.malicious_beacons.append(beacon)
            next_id += 1

        # Non-beacon nodes.
        for _ in range(cfg.n_total - cfg.n_beacons):
            self.key_manager.enroll(next_id)
            agent = SecureNonBeaconAgent(
                next_id, field_point(), self.key_manager, make_cascade()
            )
            self.network.add_node(agent)
            self.agents.append(agent)
            next_id += 1

        if cfg.wormhole_endpoints is not None:
            (ax, ay), (bx, by) = cfg.wormhole_endpoints
            self.network.add_wormhole(
                WormholeLink(end_a=Point(ax, ay), end_b=Point(bx, by))
            )

        if cfg.revocation_dissemination == "flood" and self.benign_beacons:
            from repro.core.notices import (
                NoticeDistributor,
                install_notice_handling,
            )

            gateway = self.benign_beacons[0]
            self.notice_distributor = NoticeDistributor(
                self.network,
                gateway,
                interval_cycles=cfg.notice_interval_cycles,
            )
            # Benign beacons relay and verify; malicious nodes do not
            # cooperate with the flood (worst case). Agents verify+apply.
            for node in self.benign_beacons + self.agents:
                install_notice_handling(
                    node,
                    self.notice_distributor.commitment,
                    interval_cycles=cfg.notice_interval_cycles,
                )
        else:
            self.notice_distributor = None

        self._built = True
        return self

    def _make_rtt_observer(self, obs: Observability):
        """The per-exchange RTT sink installed on the network.

        Both variants cache their handles up front, so the hot path is a
        single ``Histogram.observe`` (plus one dict lookup in per-node
        mode). RNG-free by construction.
        """
        if obs.config.per_node_rtt:
            registry = obs.registry
            handles: Dict[int, object] = {}

            def observer(rtt: float, node: Node) -> None:
                hist = handles.get(node.node_id)
                if hist is None:
                    hist = registry.histogram(
                        "rtt_cycles",
                        buckets=RTT_BUCKETS_CYCLES,
                        kind="exchange",
                        node=node.node_id,
                    )
                    handles[node.node_id] = hist
                hist.observe(rtt)

            return observer
        exchange = obs.registry.histogram(
            "rtt_cycles", buckets=RTT_BUCKETS_CYCLES, kind="exchange"
        )

        def observer(rtt: float, node: Node) -> None:
            exchange.observe(rtt)

        return observer

    def _propagate_revocation(self, beacon_id: int) -> None:
        """Disseminate one revocation per the configured mechanism."""
        if self.network is not None and self.network.has_node(beacon_id):
            self.network.node(beacon_id).revoked = True
        if self.notice_distributor is not None:
            # Flooded µTESLA notice: agents learn it (or not) over radio.
            self.notice_distributor.announce_revocation(beacon_id)
            return
        # Oracle mode: the paper's working assumption — every node learns.
        for agent in self.agents:
            agent.revoked_beacons.add(beacon_id)
            agent.references = [
                r for r in agent.references if r.beacon_id != beacon_id
            ]

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def _reachable_beacons(self, node: Node) -> List[Node]:
        """Beacons a node can exchange packets with (direct or tunnel).

        Both paths return the same beacons in the same (``node_id``)
        order, so downstream RNG consumption — probe scheduling, beacon
        requests — is identical; the naive path is the reference oracle.
        """
        if not self.config.use_spatial_index:
            return self._reachable_beacons_naive(node)
        assert self.network is not None
        net = self.network
        direct = net.beacons_within(node.position, self.config.comm_range_ft)
        tunneled = net.wormhole_reachable_beacon_ids(node.position)
        if not tunneled:
            return [b for b in direct if b.node_id != node.node_id]
        ids = {b.node_id for b in direct}
        ids.update(tunneled)
        ids.discard(node.node_id)
        return [net.node(i) for i in sorted(ids)]

    def _reachable_beacons_naive(self, node: Node) -> List[Node]:
        """Reference oracle: full O(N_b) scan with pairwise wormhole checks."""
        assert self.network is not None
        reachable: List[Node] = []
        stats = self.network.stats
        for beacon in self.network.beacon_nodes():
            if beacon.node_id == node.node_id:
                continue
            stats.distance_evals += 1
            if distance(node.position, beacon.position) <= self.config.comm_range_ft:
                reachable.append(beacon)
            elif (
                self.network.wormhole_between(node.position, beacon.position)
                is not None
            ):
                reachable.append(beacon)
        return reachable

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run_collusion(self) -> int:
        """Malicious beacons flood false alerts; returns accepted count."""
        if not self.config.collusion or not self.malicious_beacons:
            return 0
        assert self.base_station is not None
        reporters = ColludingReporters(
            reporter_ids=[b.node_id for b in self.malicious_beacons],
            tau_report=self.config.tau_report,
            tau_alert=self.config.tau_alert,
        )
        benign_ids = [b.node_id for b in self.benign_beacons]
        accepted = 0
        for reporter, target in reporters.concentrated_schedule(benign_ids):
            payload = BaseStation.alert_payload(reporter, target)
            tag = self.key_manager.sign_alert_payload(reporter, payload)
            if self.base_station.submit_alert(
                reporter, target, tag=tag, time=self.engine.now()
            ):
                accepted += 1
        return accepted

    def _initiator_down(self, node: Node) -> bool:
        """True when a crash fault stops ``node`` from starting exchanges."""
        return self.fault_injector is not None and self.fault_injector.is_crashed(
            node.node_id, self.engine.now()
        )

    def _vectorized_active(self) -> bool:
        """Whether this run goes through the :mod:`repro.vec` batch path.

        Resolved once per pipeline: the config must opt in *and* the
        configuration must be inside the batch path's supported
        envelope (NumPy present, no ARQ channels, oracle revocation, no
        event budget). Unsupported combinations fall back to the scalar
        path silently — same results, scalar speed.
        """
        if self._vec_active is None:
            if not self.config.use_vectorized_core:
                self._vec_active = False
            else:
                from repro.vec import vectorized_core_supported

                self._vec_active = vectorized_core_supported(self.config)
        return self._vec_active

    def _vec_bump(self, name: str, amount: int) -> None:
        """Accumulate one batch-path work counter (hot path: one dict op)."""
        self._vec_counters[name] = self._vec_counters.get(name, 0) + amount

    def run_detection(self) -> None:
        """Every benign beacon probes each reachable beacon per detecting ID.

        Crashed beacons (node-crash fault) initiate nothing; their
        detection coverage is simply lost, which is exactly the
        degradation the fault benches measure.
        """
        if self._vectorized_active():
            from repro.vec.detection import run_detection_vectorized

            run_detection_vectorized(self)
            return
        for beacon in self.benign_beacons:
            if self._initiator_down(beacon):
                continue
            for target in self._reachable_beacons(beacon):
                beacon.probe_all_ids(target.node_id)
                self._probes_sent += len(beacon.detecting_ids)
        self.engine.run()

    def run_localization(self) -> None:
        """Non-beacon nodes gather references and estimate positions.

        Crashed agents (node-crash fault) request nothing and therefore
        neither localize nor count as affected requesters.
        """
        if self._vectorized_active():
            from repro.vec.localization import run_localization_vectorized

            run_localization_vectorized(self)
            return
        for agent in self.agents:
            if self._initiator_down(agent):
                continue
            for beacon in self._reachable_beacons(agent):
                agent.request_beacon(beacon.node_id)
        self.engine.run()

    def run_notice_dissemination(self) -> None:
        """Advance µTESLA intervals so flooded notices verify and apply."""
        if self.notice_distributor is None:
            return
        for _ in range(self.config.notice_rounds):
            deadline = self.engine.now() + self.config.notice_interval_cycles
            self.engine.run_until(deadline)
            self.notice_distributor.disclose_key()
        self.engine.run()

    @contextmanager
    def _phase(self, name: str) -> Iterator[None]:
        """Time one phase and — when observing — wrap it in a span.

        The span is the *inner* context, so on failure it tags the
        exception first (``phase:<name>`` beats the profile's plain
        ``<name>`` — first tagger wins).
        """
        with self.profile.phase(name):
            if self.obs is not None and self.obs.config.spans:
                with self.obs.span(f"phase:{name}"):
                    yield
            else:
                yield

    def run(self) -> PipelineResult:
        """Build (if needed) and execute all phases, returning the metrics.

        Each phase is timed into :attr:`profile` and, when observing,
        delimited by a ``phase:<name>`` span nested under one ``trial``
        span; see :meth:`profile_snapshot` / :meth:`telemetry` for the
        aggregated views. End-of-trial counters are flushed into the
        registry via :meth:`finalize_observability`.
        """
        if self.obs is not None and self.obs.config.spans:
            with self.obs.span("trial", seed=self.config.seed):
                result = self._run_phases()
        else:
            result = self._run_phases()
        self.finalize_observability()
        return result

    def _run_phases(self) -> PipelineResult:
        """The phase sequence shared by observed and unobserved runs."""
        with self._phase("build"):
            self.build()
        with self._phase("collusion"):
            self.run_collusion()
        with self._phase("detection"):
            self.run_detection()
        with self._phase("notices"):
            self.run_notice_dissemination()
        with self._phase("localization"):
            self.run_localization()
        with self._phase("metrics"):
            result = self.collect_metrics()
        return result

    def finalize_observability(self) -> None:
        """Flush end-of-trial counters into the registry (idempotent).

        The hot paths accumulate into their existing plain-int structs
        (:class:`~repro.utils.profiling.NetworkCounters`, ARQ channel
        counters, fault-model counters, §3.1 base-station counters);
        this one call folds them all into the mergeable registry, so
        observing adds no per-event registry work.
        """
        obs = self.obs
        if obs is None or self._obs_finalized or not obs.config.metrics:
            return
        self._obs_finalized = True
        registry = obs.registry
        self.engine.record_metrics(registry)
        registry.counter("probes_sent_total").inc(self._probes_sent)
        if self.network is not None:
            self.network.record_metrics(registry)
        if self.base_station is not None:
            self.base_station.record_metrics(registry)
        if self.fault_injector is not None:
            self.fault_injector.record_metrics(registry)
        for channel in (
            getattr(self, "alert_channel", None),
            getattr(self, "request_channel", None),
        ):
            if channel is not None:
                channel.record_metrics(registry)
        for name in sorted(self._vec_counters):
            registry.counter("vec_batch_total", kind=name).inc(
                self._vec_counters[name]
            )

    def telemetry(self) -> dict:
        """The trial's exportable telemetry (empty dict when not observing).

        Shape: ``{"registry": <snapshot>, "spans": [...], "events":
        [...]}``. Events carry the full protocol stream only with
        ``observe.trace_events``; otherwise just the ``span.*`` markers,
        which keeps worker->parent payloads small in the parallel runner.
        """
        if self.obs is None:
            return {}
        self.finalize_observability()
        data = self.obs.telemetry()
        include_all = self.obs.config.trace_events
        data["events"] = [
            event.to_dict()
            for event in self.trace
            if include_all or event.kind.startswith("span.")
        ]
        return data

    def profile_snapshot(self) -> dict:
        """Phase timings plus hot-path counters, as a JSON-ready dict.

        Counters fold in the network-level operation counts (distance
        evaluations, grid cells visited, spatial queries, deliveries),
        the probe total, fault-injection event counts (``fault_*``), and
        per-ARQ-channel delivery accounting (``channel_<name>_*``), so
        one snapshot fully describes where a trial spent its work.
        Shape: ``{"phases": {...}, "counters": {...}}`` (see
        :mod:`repro.utils.profiling`).
        """
        snapshot = self.profile.to_dict()
        if self.network is not None:
            snapshot["counters"].update(self.network.stats.to_dict())
        snapshot["counters"]["probes"] = self._probes_sent
        for name in sorted(self._vec_counters):
            snapshot["counters"][f"vec_{name}"] = self._vec_counters[name]
        if self.fault_injector is not None:
            snapshot["counters"].update(self.fault_injector.counters())
        for channel in (
            getattr(self, "alert_channel", None),
            getattr(self, "request_channel", None),
        ):
            if channel is not None:
                snapshot["counters"].update(
                    channel.counters.to_dict(prefix=f"channel_{channel.name}_")
                )
        return snapshot

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _requester_counts(self, malicious_ids: Set[int]) -> List[int]:
        """Per-malicious-beacon count of in-range agents + benign beacons."""
        assert self.network is not None
        cfg = self.config
        if self._vectorized_active():
            from repro.vec.arrays import requester_counts_vectorized

            return requester_counts_vectorized(
                self.network,
                self.malicious_beacons,
                malicious_ids,
                cfg.comm_range_ft,
            )
        if cfg.use_spatial_index:
            # One grid query per malicious beacon; everything in range
            # that is not itself malicious is an agent or benign beacon.
            return [
                sum(
                    1
                    for n in self.network.nodes_within(
                        b.position, cfg.comm_range_ft
                    )
                    if n.node_id not in malicious_ids
                )
                for b in self.malicious_beacons
            ]
        # Naive oracle; the candidate list is hoisted out of the loop
        # rather than re-concatenated per malicious beacon.
        candidates = self.agents + self.benign_beacons
        return [
            len(
                [
                    a
                    for a in candidates
                    if distance(a.position, b.position) <= cfg.comm_range_ft
                ]
            )
            for b in self.malicious_beacons
        ]

    def collect_metrics(self) -> PipelineResult:
        """Compute the paper's evaluation metrics from the run."""
        assert self.base_station is not None
        assert self.network is not None
        cfg = self.config
        malicious_ids = {b.node_id for b in self.malicious_beacons}
        benign_ids = {b.node_id for b in self.benign_beacons}

        revoked_malicious = len(self.base_station.revoked & malicious_ids)
        revoked_benign = len(self.base_station.revoked & benign_ids)

        # N': non-beacon requesters holding a *misleading* accepted
        # reference from a malicious beacon the agent does not know is
        # revoked. Misleading = the measured/calculated discrepancy
        # exceeds the error bound at the agent's true position (a NORMAL
        # answer is consistent and, as the paper argues, harmless). In
        # oracle mode every revoked beacon's references were purged, so
        # this reduces to the paper's definition; in flooded mode an agent
        # the notice never reached still counts as affected.
        affected: Set[int] = set()
        victim_pairs = 0
        for agent in self.agents:
            for ref in agent.references:
                if ref.beacon_id not in malicious_ids:
                    continue
                if ref.beacon_id in agent.revoked_beacons:
                    continue
                if abs(ref.residual_at(agent.position)) > cfg.max_ranging_error_ft:
                    affected.add(agent.node_id)
                    victim_pairs += 1

        if self._vectorized_active():
            from repro.vec.localization import batched_estimate_errors

            errors = batched_estimate_errors(self.agents)
        else:
            errors = []
            for agent in self.agents:
                try:
                    agent.estimate_position()
                except InsufficientReferencesError:
                    continue
                errors.append(agent.location_error_ft())

        requesters = self._requester_counts(malicious_ids)
        mean_requesters = (
            sum(requesters) / len(requesters) if requesters else 0.0
        )

        accepted = self.base_station.accepted_alert_count()
        rejected = len(self.base_station.log) - accepted
        n_malicious = max(1, len(self.malicious_beacons))
        return PipelineResult(
            detection_rate=(
                revoked_malicious / len(malicious_ids) if malicious_ids else None
            ),
            false_positive_rate=(
                revoked_benign / len(benign_ids) if benign_ids else None
            ),
            affected_non_beacons_per_malicious=victim_pairs / n_malicious,
            revoked_malicious=revoked_malicious,
            revoked_benign=revoked_benign,
            alerts_accepted=accepted,
            alerts_rejected=rejected,
            probes_sent=self._probes_sent,
            localization_errors_ft=errors,
            affected_node_ids=affected,
            mean_requesters_per_malicious=mean_requesters,
        )
