"""The paper's primary contribution: detecting and revoking malicious beacons.

- :mod:`repro.core.signal_detector` — the measured-vs-calculated distance
  consistency check (Section 2.1);
- :mod:`repro.core.rtt` — RTT calibration and the local-replay detector
  (Section 2.2.2, Figure 4);
- :mod:`repro.core.replay_filter` — the full filtering cascade a detecting
  node runs before raising an alert (Section 2.2), also used by non-beacon
  nodes to decide whether to accept a beacon signal;
- :mod:`repro.core.detecting` — the detecting-beacon role that probes its
  neighbours under detecting IDs;
- :mod:`repro.core.revocation` — the base station's alert/report counters
  and revocation decision (Section 3.1);
- :mod:`repro.core.analysis` — every closed form behind Figures 5-10;
- :mod:`repro.core.pipeline` — the end-to-end secure-localization run that
  reproduces the paper's Section 4 simulation.

Paper section: §2-§4 (the paper's scheme, end to end)
"""

from repro.core.signal_detector import MaliciousSignalDetector, SignalVerdict
from repro.core.angle_detector import (
    AngleConsistencyDetector,
    CombinedConsistencyDetector,
    aoa_triangulate,
)
from repro.core.rtt import (
    LocalReplayDetector,
    RttCalibration,
    RttCalibrationTable,
    calibrate_rtt,
)
from repro.core.promoted import (
    GenerationAwareDetector,
    PromotedAnchor,
    uncertainty_for_generation,
)
from repro.core.notices import (
    NoticeAwareAgent,
    NoticeDistributor,
    NoticeRelay,
)
from repro.core.replay_filter import FilterDecision, ReplayFilterCascade
from repro.core.detecting import DetectingBeacon
from repro.core.revocation import (
    AlertDecision,
    AlertRecord,
    BaseStation,
    CounterState,
    RevocationConfig,
    apply_alert,
    apply_target,
    evaluate_alert,
    evaluate_target,
)
from repro.core.distributed import (
    DistributedConfig,
    DistributedRevocationProtocol,
    RevocationLedger,
)
from repro.core import analysis
from repro.core.pipeline import PipelineConfig, PipelineResult, SecureLocalizationPipeline

__all__ = [
    "MaliciousSignalDetector",
    "SignalVerdict",
    "AngleConsistencyDetector",
    "CombinedConsistencyDetector",
    "aoa_triangulate",
    "RttCalibration",
    "RttCalibrationTable",
    "LocalReplayDetector",
    "calibrate_rtt",
    "GenerationAwareDetector",
    "PromotedAnchor",
    "uncertainty_for_generation",
    "NoticeAwareAgent",
    "NoticeDistributor",
    "NoticeRelay",
    "FilterDecision",
    "ReplayFilterCascade",
    "DetectingBeacon",
    "AlertDecision",
    "AlertRecord",
    "BaseStation",
    "CounterState",
    "RevocationConfig",
    "apply_alert",
    "apply_target",
    "evaluate_alert",
    "evaluate_target",
    "DistributedConfig",
    "DistributedRevocationProtocol",
    "RevocationLedger",
    "analysis",
    "PipelineConfig",
    "PipelineResult",
    "SecureLocalizationPipeline",
]
