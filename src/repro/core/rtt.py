"""RTT calibration and the local-replay detector (paper Section 2.2.2).

Calibration reproduces the paper's Figure 4 methodology: measure the
register-level RTT many times under attack-free conditions, take the
empirical CDF, and extract ``x_min``/``x_max``. At run time the detector
declares a beacon signal *locally replayed* when the observed RTT exceeds
``x_max`` — a replay between benign neighbours must add at least one packet
transmission time, far above the ~4.5-bit-time width of the honest window.

Paper section: §2.2.2 (RTT calibration and local-replay detection)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.errors import CalibrationError, ConfigurationError
from repro.sim.timing import BIT_TIME_CYCLES, RttModel
from repro.utils.stats import Ecdf


@dataclass(frozen=True)
class RttCalibration:
    """The attack-free RTT window.

    Attributes:
        x_min: largest x with F(x) = 0 (minimum observed RTT, cycles).
        x_max: smallest x with F(x) = 1 (maximum observed RTT, cycles).
        samples: how many measurements backed the calibration.
    """

    x_min: float
    x_max: float
    samples: int

    def __post_init__(self) -> None:
        if self.x_min > self.x_max:
            raise CalibrationError(
                f"invalid calibration window: x_min={self.x_min} > x_max={self.x_max}"
            )
        if self.samples <= 0:
            raise CalibrationError(f"samples must be > 0, got {self.samples}")

    @property
    def window_cycles(self) -> float:
        """Width of the honest window (x_max - x_min)."""
        return self.x_max - self.x_min

    @property
    def window_bits(self) -> float:
        """The honest window expressed in bit transmission times.

        The paper reports ~4.5 bits: any replay delayed by more than this
        is detectable.
        """
        return self.window_cycles / BIT_TIME_CYCLES


def calibrate_rtt(
    model: RttModel,
    rng: random.Random,
    *,
    samples: int = 10_000,
    distance_ft: float = 0.0,
    perturb: Optional[Callable[[float], float]] = None,
    observe: Optional[Callable[[float], None]] = None,
    sampler: Optional[
        Callable[[RttModel, random.Random, int, float], Iterable[float]]
    ] = None,
) -> RttCalibration:
    """Measure ``samples`` attack-free RTTs and extract the window.

    Mirrors the paper's experiment ("derived by measuring RTT 10,000
    times").

    Args:
        model: the register-level RTT hardware model to sample.
        rng: randomness source for the hardware jitter draws.
        samples: how many attack-free measurements to take.
        distance_ft: requester/responder separation during calibration.
        perturb: optional per-observation transform applied to each RTT
            before the window is extracted — the hook
            :mod:`repro.faults` uses when a scenario re-calibrates under
            field conditions (``recalibrate_under_faults``), so ``x_max``
            absorbs jitter/drift instead of the lab-clean support.
        observe: optional RNG-free sink called with each (possibly
            perturbed) calibration RTT — the observability layer feeds
            these into its ``rtt_cycles{kind="calibration"}`` histogram,
            reconstructing the Figure-4 distribution.
        sampler: optional replacement for the scalar draw loop, called
            as ``sampler(model, rng, samples, distance_ft)`` — the
            vectorized pipeline passes
            :func:`repro.vec.measurement.batched_calibration_rtts`,
            whose output (and resulting ``rng`` state) is bit-identical
            to the scalar loop. The perturb/observe hooks apply after
            all draws in both paths, so the swap is order-safe.
    """
    if samples <= 0:
        raise ConfigurationError(f"samples must be > 0, got {samples}")
    if sampler is not None:
        rtts = list(sampler(model, rng, samples, distance_ft))
    else:
        rtts = model.sample_rtts(rng, samples, distance_ft=distance_ft)
    if perturb is not None:
        rtts = [perturb(rtt) for rtt in rtts]
    if observe is not None:
        for rtt in rtts:
            observe(rtt)
    return calibration_from_samples(rtts)


def calibration_from_samples(rtts: Iterable[float]) -> RttCalibration:
    """Build a calibration window from externally measured RTTs.

    The recorded ``samples`` count is always the *observed* number of
    measurements (``ecdf.n``) — the same convention
    :func:`calibrate_rtt` and :meth:`RttCalibrationTable.calibrate_pair`
    follow, so a window's provenance is comparable regardless of which
    path built it.

    Raises:
        CalibrationError: ``rtts`` is empty — a window extracted from
            zero measurements is meaningless.
    """
    rtts = list(rtts)
    if not rtts:
        raise CalibrationError(
            "cannot calibrate an RTT window from zero samples"
        )
    ecdf = Ecdf(rtts)
    return RttCalibration(x_min=ecdf.x_min, x_max=ecdf.x_max, samples=ecdf.n)


class RttCalibrationTable:
    """Per-hardware-pair calibration for heterogeneous networks (§2.2.2).

    The paper assumes one mote type "for simplicity" and notes the
    technique "can be easily extended to deal with different types of
    nodes". The extension: each (requester type, responder type) pair has
    its own honest RTT window, calibrated from the mixed hardware model;
    the detector for an exchange uses the window of that pair. Using one
    global window instead either misses replays (window from slow
    hardware, exchange on fast) or falsely flags honest exchanges (window
    from fast hardware, exchange on slow) — both failure modes are
    demonstrated in the tests.

    Type keys are arbitrary hashables. Entries are keyed by the
    **ordered** pair (requester type, responder type) and each direction
    is calibrated independently: d1/d4 are drawn from the requester's
    model and d2/d3 from the responder's. Note that the RTT *sum* is
    role-symmetric in distribution — either way each endpoint
    contributes exactly two delay draws — so the (A, B) and (B, A)
    windows agree in distribution and cannot be systematically
    asymmetric, even for different per-delay models. The two directions
    still hold distinct realized windows (independent calibration
    samples), and querying a direction that was never calibrated is an
    error rather than a silent fallback to its mirror.
    """

    def __init__(self) -> None:
        self._models: Dict[object, RttModel] = {}
        self._windows: Dict[tuple, RttCalibration] = {}

    def register_type(self, type_key: object, model: RttModel) -> None:
        """Declare a hardware type and its RTT delay model."""
        self._models[type_key] = model

    def types(self) -> list:
        """Registered hardware type keys."""
        return list(self._models)

    def calibrate_pair(
        self,
        requester_type: object,
        responder_type: object,
        rng: random.Random,
        *,
        samples: int = 5_000,
    ) -> RttCalibration:
        """Measure the honest window for one ordered type pair."""
        from repro.sim.timing import sample_mixed_rtt

        req = self._require_model(requester_type)
        resp = self._require_model(responder_type)
        if samples <= 0:
            raise ConfigurationError(f"samples must be > 0, got {samples}")
        rtts = [
            sample_mixed_rtt(req, resp, rng) for _ in range(samples)
        ]
        calibration = calibration_from_samples(rtts)
        self._windows[(requester_type, responder_type)] = calibration
        return calibration

    def calibrate_all(
        self, rng: random.Random, *, samples: int = 5_000
    ) -> None:
        """Calibrate every ordered pair of registered types."""
        for a in self._models:
            for b in self._models:
                self.calibrate_pair(a, b, rng, samples=samples)

    def window(
        self, requester_type: object, responder_type: object
    ) -> RttCalibration:
        """The calibrated window for an ordered type pair.

        Raises:
            CalibrationError: the pair was never calibrated.
        """
        try:
            return self._windows[(requester_type, responder_type)]
        except KeyError:
            raise CalibrationError(
                f"pair ({requester_type!r}, {responder_type!r}) "
                "was never calibrated"
            ) from None

    def detector_for(
        self, requester_type: object, responder_type: object
    ) -> "LocalReplayDetector":
        """A replay detector bound to the pair's window."""
        return LocalReplayDetector(self.window(requester_type, responder_type))

    def _require_model(self, type_key: object) -> RttModel:
        model = self._models.get(type_key)
        if model is None:
            raise CalibrationError(f"unknown hardware type {type_key!r}")
        return model


class LocalReplayDetector:
    """The run-time ``RTT > x_max`` test.

    Installed "on every beacon and non-beacon node" (Section 2.2.2): a
    requesting node measures the RTT of its beacon exchange and discards
    the reply as locally replayed when the RTT exceeds the calibrated
    maximum.
    """

    def __init__(self, calibration: Optional[RttCalibration]) -> None:
        self._calibration = calibration
        self.checks = 0
        self.flagged = 0

    @property
    def calibration(self) -> RttCalibration:
        """The active window.

        Raises:
            CalibrationError: when the detector was built without one.
        """
        if self._calibration is None:
            raise CalibrationError(
                "local replay detector used before RTT calibration"
            )
        return self._calibration

    def is_replayed(self, observed_rtt_cycles: float) -> bool:
        """True when the observed RTT falls outside the honest window."""
        self.checks += 1
        replayed = observed_rtt_cycles > self.calibration.x_max
        if replayed:
            self.flagged += 1
        return replayed

    def detection_margin_cycles(self, observed_rtt_cycles: float) -> float:
        """How far past x_max the observation lies (negative = honest)."""
        return observed_rtt_cycles - self.calibration.x_max
