"""Detecting malicious beacon signals (paper Section 2.1).

The check: a detecting node knows its own location, so it can *calculate*
its distance to the location declared in a beacon packet and compare it
with the distance *measured* from the beacon signal. Benign signals agree
to within the maximum measurement error; anything beyond that bound is a
malicious beacon signal:

    sqrt((x - x')^2 + (y - y')^2) - measured  >  maximum measurement error
    (in absolute value)

The paper's key observation (end of Section 2.1): a signal that *passes*
this test is harmless even if it came from a compromised node, because it
is indistinguishable from a benign beacon at the declared location.

Paper section: §2.1 (malicious beacon signal detection)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.geometry import Point, distance
from repro.utils.validation import check_non_negative


class SignalVerdict(enum.Enum):
    """Outcome of the distance-consistency check."""

    CONSISTENT = "consistent"
    MALICIOUS = "malicious"


@dataclass(frozen=True)
class SignalCheck:
    """Full diagnostics of one consistency check.

    Attributes:
        verdict: consistent or malicious.
        calculated_distance_ft: own-location to declared-location distance.
        measured_distance_ft: the ranging estimate from the signal.
        discrepancy_ft: |calculated - measured|.
        threshold_ft: the maximum-measurement-error bound used.
    """

    verdict: SignalVerdict
    calculated_distance_ft: float
    measured_distance_ft: float
    discrepancy_ft: float
    threshold_ft: float

    @property
    def is_malicious(self) -> bool:
        """Convenience flag."""
        return self.verdict is SignalVerdict.MALICIOUS


@dataclass(frozen=True)
class MaliciousSignalDetector:
    """The Section 2.1 detector, parameterized by the error bound.

    Args:
        max_error_ft: the maximum distance-measurement error of the ranging
            technique in use (paper Section 4: 10 ft for RSSI).
    """

    max_error_ft: float = 10.0

    def __post_init__(self) -> None:
        check_non_negative(self.max_error_ft, "max_error_ft")

    def check(
        self,
        own_location: Point,
        declared_location: Point,
        measured_distance_ft: float,
    ) -> SignalCheck:
        """Run the consistency check and return full diagnostics."""
        calculated = distance(own_location, declared_location)
        discrepancy = abs(calculated - measured_distance_ft)
        verdict = (
            SignalVerdict.MALICIOUS
            if discrepancy > self.max_error_ft
            else SignalVerdict.CONSISTENT
        )
        return SignalCheck(
            verdict=verdict,
            calculated_distance_ft=calculated,
            measured_distance_ft=measured_distance_ft,
            discrepancy_ft=discrepancy,
            threshold_ft=self.max_error_ft,
        )

    def is_malicious(
        self,
        own_location: Point,
        declared_location: Point,
        measured_distance_ft: float,
    ) -> bool:
        """Boolean shortcut for :meth:`check`."""
        return self.check(
            own_location, declared_location, measured_distance_ft
        ).is_malicious
