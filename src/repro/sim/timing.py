"""Register-level round-trip-time hardware model (paper Section 2.2.2).

The paper measures RTT between two neighbour MICA motes at the SPDR-register
level so that MAC waiting time and processing delay cancel out:

    RTT = (t4 - t1) - (t3 - t2) = d1 + d2 + d3 + d4 + 2 D / c

where ``d1..d4`` are small hardware delays between the radio channel and the
shift register, and the propagation term ``2 D / c`` is negligible for
neighbours. The resulting distribution is very narrow (Figure 4); the paper
reports a support width of roughly **4.5 bit transmission times**, with one
bit taking about **384 CPU cycles**.

We have no motes, so this module *synthesizes* that distribution: each
``d_i`` is drawn from a bounded distribution whose parameters reproduce the
paper's support width. All downstream code (calibration, the
``RTT > x_max`` replay test) is agnostic to whether samples came from
hardware or from this model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.sim.clock import CPU_HZ

#: Transmission time of one bit, in CPU cycles (paper: "about 384").
BIT_TIME_CYCLES: float = 384.0

#: Speed of light in feet per CPU cycle (duplicated from radio to avoid a cycle).
_SPEED_OF_LIGHT_FT_PER_CYCLE: float = 983_571_056.4 / CPU_HZ


@dataclass(frozen=True)
class RttSample:
    """One measured round trip, with its four timestamps (cycles).

    ``rtt = (t4 - t1) - (t3 - t2)``, exactly as in the paper's Figure 3.
    """

    t1: float
    t2: float
    t3: float
    t4: float

    @property
    def rtt(self) -> float:
        """The MAC/processing-independent round-trip time."""
        return (self.t4 - self.t1) - (self.t3 - self.t2)


@dataclass(frozen=True)
class RttModel:
    """Synthetic generator of register-level RTTs.

    Each of the four hardware delays ``d1..d4`` is modelled as
    ``base + U(0, jitter)`` cycles. With the defaults the total support width
    is ``4 * jitter = 4.5 bit-times ~= 1728 cycles``, matching the margin the
    paper derives from Figure 4, and the midpoint sits near the observed
    x_min/x_max window.

    Attributes:
        base_delay_cycles: deterministic part of each ``d_i``.
        jitter_cycles: width of the uniform jitter of each ``d_i``.
    """

    base_delay_cycles: float = 3_870.0
    jitter_cycles: float = 432.0  # 4 * 432 = 1728 = 4.5 bit-times

    def __post_init__(self) -> None:
        if self.base_delay_cycles < 0:
            raise ConfigurationError(
                f"base_delay_cycles must be >= 0, got {self.base_delay_cycles}"
            )
        if self.jitter_cycles < 0:
            raise ConfigurationError(
                f"jitter_cycles must be >= 0, got {self.jitter_cycles}"
            )

    # ------------------------------------------------------------------
    # Theoretical bounds
    # ------------------------------------------------------------------
    def min_rtt(self) -> float:
        """Smallest possible RTT (all jitters zero, zero distance)."""
        return 4 * self.base_delay_cycles

    def max_rtt(self, distance_ft: float = 0.0) -> float:
        """Largest possible RTT at ``distance_ft`` (all jitters maximal)."""
        return 4 * (self.base_delay_cycles + self.jitter_cycles) + (
            2.0 * distance_ft / _SPEED_OF_LIGHT_FT_PER_CYCLE
        )

    def support_width_bits(self) -> float:
        """Support width expressed in bit transmission times."""
        return 4 * self.jitter_cycles / BIT_TIME_CYCLES

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def delay(self, rng: random.Random) -> float:
        """Draw one hardware delay ``d_i``."""
        return self.base_delay_cycles + rng.uniform(0.0, self.jitter_cycles)

    def sample(
        self,
        rng: random.Random,
        *,
        distance_ft: float = 0.0,
        extra_delay_cycles: float = 0.0,
        start_time: float = 0.0,
    ) -> RttSample:
        """Generate a full four-timestamp round trip.

        Args:
            rng: the random stream to draw hardware jitter from.
            distance_ft: physical distance between requester and responder.
            extra_delay_cycles: attacker-introduced delay (replay, tunnel).
                It lands between the request's arrival and the reply's
                departure *as seen by the requester*, so it inflates the RTT
                exactly as a real replay would.
            start_time: absolute cycle of t1.

        Returns:
            An :class:`RttSample` whose ``rtt`` includes the extra delay.
        """
        if distance_ft < 0:
            raise ConfigurationError(f"distance_ft must be >= 0, got {distance_ft}")
        if extra_delay_cycles < 0:
            raise ConfigurationError(
                f"extra_delay_cycles must be >= 0, got {extra_delay_cycles}"
            )
        d1 = self.delay(rng)
        d2 = self.delay(rng)
        d3 = self.delay(rng)
        d4 = self.delay(rng)
        flight = distance_ft / _SPEED_OF_LIGHT_FT_PER_CYCLE
        # Receiver-side processing is arbitrary; it cancels in the RTT formula.
        processing = rng.uniform(1e4, 1e6)
        t1 = start_time
        t2 = t1 + d1 + flight + d2
        t3 = t2 + processing
        # The replay delay is visible to the requester but not inside t3 - t2.
        t4 = t3 + d3 + flight + d4 + extra_delay_cycles
        return RttSample(t1=t1, t2=t2, t3=t3, t4=t4)

    def sample_rtts(
        self,
        rng: random.Random,
        n: int,
        *,
        distance_ft: float = 0.0,
        extra_delay_cycles: float = 0.0,
    ) -> List[float]:
        """Draw ``n`` RTT values (convenience for calibration and Figure 4)."""
        if n <= 0:
            raise ConfigurationError(f"n must be > 0, got {n}")
        return [
            self.sample(
                rng,
                distance_ft=distance_ft,
                extra_delay_cycles=extra_delay_cycles,
            ).rtt
            for _ in range(n)
        ]


def sample_mixed_rtt(
    requester_model: RttModel,
    responder_model: RttModel,
    rng: random.Random,
    *,
    distance_ft: float = 0.0,
    extra_delay_cycles: float = 0.0,
) -> float:
    """One RTT between two *different* hardware types (paper §2.2.2).

    "For simplicity, we assume the same type of sensor nodes in the sensor
    network. Nevertheless, our technique can be easily extended to deal
    with different types of nodes" — the extension is exactly this: the
    requester contributes its send/receive register delays (d1, d4), the
    responder contributes its own (d2, d3), so the honest window of a
    mixed pair is the convolution of the two hardware profiles and must be
    calibrated per pair of types (see
    :class:`repro.core.rtt.RttCalibrationTable`).
    """
    if distance_ft < 0:
        raise ConfigurationError(f"distance_ft must be >= 0, got {distance_ft}")
    if extra_delay_cycles < 0:
        raise ConfigurationError(
            f"extra_delay_cycles must be >= 0, got {extra_delay_cycles}"
        )
    d1 = requester_model.delay(rng)
    d2 = responder_model.delay(rng)
    d3 = responder_model.delay(rng)
    d4 = requester_model.delay(rng)
    flight = 2.0 * distance_ft / _SPEED_OF_LIGHT_FT_PER_CYCLE
    return d1 + d2 + d3 + d4 + flight + extra_delay_cycles


def packet_transmission_cycles(size_bits: int) -> float:
    """Airtime of a ``size_bits`` packet — the minimum delay a local replay
    between benign neighbours must introduce (paper Section 2.3)."""
    if size_bits <= 0:
        raise ConfigurationError(f"size_bits must be > 0, got {size_bits}")
    return size_bits * BIT_TIME_CYCLES
