"""Deterministic named random streams.

Every stochastic component draws from its own named stream derived from one
master seed, so that (a) experiments are exactly reproducible, and (b) adding
randomness to one subsystem does not perturb the draws seen by another —
the standard trick for variance-controlled discrete-event simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that child seeds are statistically independent even for
    adjacent master seeds and similar names.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams.

    Example:
        >>> rngs = RngRegistry(seed=42)
        >>> deploy_rng = rngs.stream("deployment")
        >>> noise_rng = rngs.stream("rssi-noise")
        >>> rngs.stream("deployment") is deploy_rng
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Useful for giving each simulation trial its own independent universe
        of streams.
        """
        return RngRegistry(derive_seed(self._seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
