"""Simulation time bookkeeping.

Time is counted in **CPU clock cycles** of the modelled mote, matching the
paper's Figure 4 ("we use one CPU clock cycle as the basic unit to measure
the time"). The MICA mote's ATmega128 runs at roughly 7.37 MHz; the exact
constant only matters for converting to human-readable seconds, never for
the detection logic itself.
"""

from __future__ import annotations

from repro.errors import ScheduleError

#: Modeled CPU frequency (Hz) of the mote; ATmega128L on a MICA mote.
CPU_HZ: float = 7_372_800.0


def cycles_to_seconds(cycles: float) -> float:
    """Convert a duration in CPU cycles to seconds."""
    return cycles / CPU_HZ


def seconds_to_cycles(seconds: float) -> float:
    """Convert a duration in seconds to CPU cycles."""
    return seconds * CPU_HZ


class Clock:
    """Monotonically non-decreasing simulation clock (cycle resolution).

    Only the :class:`repro.sim.engine.Engine` advances the clock; nodes and
    detectors read it through :meth:`now`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ScheduleError(f"clock cannot start before 0, got {start}")
        self._now = float(start)

    def now(self) -> float:
        """Current simulation time in CPU cycles."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ScheduleError: if ``when`` is in the past.
        """
        if when < self._now:
            raise ScheduleError(
                f"cannot move clock backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"
