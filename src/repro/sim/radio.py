"""Radio propagation and airtime model.

Distances are in feet and times in CPU cycles (see :mod:`repro.sim.clock`).
The model captures exactly the physical facts the paper's arguments rest on:

- a fixed maximum communication range (150 ft in the reproduced evaluation);
- per-bit transmission time (~384 CPU cycles on a MICA mote), so a packet's
  airtime is ``size_bits * BIT_TIME_CYCLES``;
- propagation at the speed of light, so the ``D/c`` term in the RTT equation
  is negligible between neighbours (the paper's Section 2.2.2 observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.clock import CPU_HZ
from repro.sim.messages import Packet
from repro.sim.timing import BIT_TIME_CYCLES
from repro.utils.geometry import Point, distance

#: Speed of light in feet per second.
SPEED_OF_LIGHT_FT_PER_S: float = 983_571_056.4

#: Speed of light in feet per CPU cycle.
SPEED_OF_LIGHT_FT_PER_CYCLE: float = SPEED_OF_LIGHT_FT_PER_S / CPU_HZ


@dataclass(frozen=True)
class RadioModel:
    """Static radio parameters shared by every node of one type.

    Attributes:
        comm_range_ft: maximum communication range (paper Section 4: 150 ft).
        bit_time_cycles: transmission time of one bit.
        preamble_bits: fixed per-packet preamble/sync overhead.
    """

    comm_range_ft: float = 150.0
    bit_time_cycles: float = BIT_TIME_CYCLES
    preamble_bits: int = 24

    def __post_init__(self) -> None:
        if self.comm_range_ft <= 0:
            raise ConfigurationError(
                f"comm_range_ft must be > 0, got {self.comm_range_ft}"
            )
        if self.bit_time_cycles <= 0:
            raise ConfigurationError(
                f"bit_time_cycles must be > 0, got {self.bit_time_cycles}"
            )

    def in_range(self, a: Point, b: Point) -> bool:
        """True when two positions can communicate directly."""
        return distance(a, b) <= self.comm_range_ft

    def airtime_cycles(self, packet: Packet) -> float:
        """Time to push ``packet`` onto the air (preamble + payload bits)."""
        return (packet.size_bits + self.preamble_bits) * self.bit_time_cycles

    def propagation_cycles(self, dist_ft: float) -> float:
        """Propagation delay for a signal travelling ``dist_ft`` feet."""
        if dist_ft < 0:
            raise ConfigurationError(f"distance must be >= 0, got {dist_ft}")
        return dist_ft / SPEED_OF_LIGHT_FT_PER_CYCLE

    def packet_time_cycles(self, packet: Packet, dist_ft: float) -> float:
        """Airtime plus propagation: departure-to-full-arrival latency."""
        return self.airtime_cycles(packet) + self.propagation_cycles(dist_ft)


@dataclass
class Transmission:
    """A packet in flight, with ground-truth physical metadata.

    The receiving *protocol* code only ever sees the packet plus a measured
    distance; the remaining fields are simulation ground truth used by the
    measurement model and by probabilistic detectors (e.g. the wormhole
    detector's coin flip needs to know whether a wormhole was really used).

    Attributes:
        packet: the logical payload.
        tx_origin: physical location the signal actually left from. For a
            wormhole-replayed signal this is the far tunnel endpoint, which
            is what makes replayed signals produce inconsistent distances.
        departure_time: cycle at which the first bit left ``tx_origin``.
        ranging_bias_ft: adversarial manipulation of the ranging feature
            (e.g. transmit-power games against RSSI); added to the measured
            distance at the receiver.
        replayed_by: node id of the replaying attacker, if any.
        via_wormhole: True when the signal traversed a wormhole tunnel.
        extra_delay_cycles: delay added by replay/tunnelling, observable in
            the round-trip time (this is what the RTT detector catches).
        fake_wormhole_symptoms: set by a malicious beacon that *manipulates*
            its signal to look wormhole-replayed (paper Section 2.2.1: "a
            malicious target node can always manipulate its beacon signals
            to convince the detecting node that there is a wormhole
            attack"); wormhole detectors report these as wormholes.
        duplicated: True on the spurious extra copy a duplication fault
            re-delivers (see :mod:`repro.faults`); protocol code treats
            the copy like any packet — which is the point: duplicate
            suppression is the receiver's job — but traces and tests can
            tell the copies apart.
    """

    packet: Packet
    tx_origin: Point
    departure_time: float
    ranging_bias_ft: float = 0.0
    replayed_by: Optional[int] = None
    via_wormhole: bool = False
    extra_delay_cycles: float = 0.0
    tx_node_id: Optional[int] = field(default=None)
    fake_wormhole_symptoms: bool = False
    duplicated: bool = False

    def is_replayed(self) -> bool:
        """True when the signal is any kind of replay (local or wormhole)."""
        return self.replayed_by is not None or self.via_wormhole


@dataclass
class Reception:
    """What a node's radio hands to its protocol layer on packet arrival.

    Attributes:
        packet: the received packet.
        arrival_time: cycle at which the last bit arrived.
        measured_distance_ft: the ranging estimate derived from the signal
            (true tx distance + noise + adversarial bias), i.e. the paper's
            "estimated distance".
        transmission: ground-truth metadata (see :class:`Transmission`).
    """

    packet: Packet
    arrival_time: float
    measured_distance_ft: float
    transmission: Transmission
