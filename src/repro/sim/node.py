"""Node base class: identity, position, and packet dispatch.

Protocol behaviour (beacon service, detection, revocation handling) is built
by registering per-packet-type handlers; subclasses in
:mod:`repro.localization.beacon`, :mod:`repro.attacks`, and
:mod:`repro.core.pipeline` compose on top of this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Type

from repro.errors import SimulationError
from repro.sim.messages import Packet
from repro.sim.radio import Reception
from repro.utils.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

Handler = Callable[["Node", Reception], None]


class Node:
    """A sensor node in the simulated field.

    Attributes:
        node_id: unique integer identity.
        position: physical location (ground truth; nodes do not necessarily
            *know* it — only beacon nodes do, per the paper's model).
        is_beacon: True for beacon nodes (location-aware).
        revoked: set by the revocation protocol; revoked beacons' signals
            are ignored by compliant nodes.
    """

    def __init__(self, node_id: int, position: Point, *, is_beacon: bool = False) -> None:
        self.node_id = int(node_id)
        self.position = position
        self.is_beacon = bool(is_beacon)
        self.revoked = False
        self.network: Optional["Network"] = None
        self._handlers: Dict[Type[Packet], Handler] = {}
        self.received_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.add_node`; stores the back-reference."""
        self.network = network

    def on(self, packet_type: Type[Packet], handler: Handler) -> None:
        """Register ``handler`` for receptions of ``packet_type``.

        Dispatch is by exact type first, then by subclass match.
        """
        self._handlers[packet_type] = handler

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def send(self, packet: Packet, **delivery_kwargs) -> None:
        """Transmit ``packet`` from this node's physical position."""
        if self.network is None:
            raise SimulationError(
                f"node {self.node_id} is not attached to a network"
            )
        self.network.unicast(self, packet, **delivery_kwargs)

    def handle(self, reception: Reception) -> None:
        """Dispatch an arriving packet to the registered handler."""
        self.received_count += 1
        handler = self._lookup_handler(type(reception.packet))
        if handler is None:
            self.dropped_count += 1
            return
        handler(self, reception)

    def _lookup_handler(self, packet_type: Type[Packet]) -> Optional[Handler]:
        handler = self._handlers.get(packet_type)
        if handler is not None:
            return handler
        for registered, candidate in self._handlers.items():
            if issubclass(packet_type, registered):
                return candidate
        return None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def distance_to(self, other: "Node") -> float:
        """Physical (ground-truth) distance to ``other``."""
        return self.position.distance_to(other.position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "beacon" if self.is_beacon else "sensor"
        return f"Node(id={self.node_id}, {role}, pos={self.position})"
