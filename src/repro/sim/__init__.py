"""Discrete-event wireless-sensor-network simulator substrate.

This package provides everything the paper's evaluation runs on top of:

- :mod:`repro.sim.engine` — the event queue and simulation loop;
- :mod:`repro.sim.clock` — CPU-cycle-resolution time bookkeeping;
- :mod:`repro.sim.rng` — named deterministic random streams;
- :mod:`repro.sim.messages` — packet types exchanged by nodes;
- :mod:`repro.sim.radio` — propagation, airtime, and range model;
- :mod:`repro.sim.node` — the node base class and inbox dispatch;
- :mod:`repro.sim.network` — topology, neighbor queries, delivery;
- :mod:`repro.sim.timing` — the register-level RTT hardware model;
- :mod:`repro.sim.trace` — structured event tracing for tests.
"""

from repro.sim.clock import CPU_HZ, Clock, cycles_to_seconds, seconds_to_cycles
from repro.sim.engine import Engine, Event
from repro.sim.messages import (
    Alert,
    BeaconPacket,
    BeaconRequest,
    Packet,
    RevocationNotice,
)
from repro.sim.mac import CsmaMedium
from repro.sim.mobility import RandomWaypointWalker, WaypointConfig
from repro.sim.network import Network, WormholeLink
from repro.sim.node import Node
from repro.sim.radio import RadioModel
from repro.sim.reliable import DeliveryReport, LossModel, ReliableChannel
from repro.sim.rng import RngRegistry
from repro.sim.timing import (
    BIT_TIME_CYCLES,
    RttModel,
    RttSample,
)
from repro.sim.trace import TraceRecorder

__all__ = [
    "CPU_HZ",
    "Clock",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "Engine",
    "Event",
    "Packet",
    "BeaconRequest",
    "BeaconPacket",
    "Alert",
    "RevocationNotice",
    "Network",
    "WormholeLink",
    "Node",
    "RadioModel",
    "RngRegistry",
    "CsmaMedium",
    "RandomWaypointWalker",
    "WaypointConfig",
    "LossModel",
    "ReliableChannel",
    "DeliveryReport",
    "BIT_TIME_CYCLES",
    "RttModel",
    "RttSample",
    "TraceRecorder",
]
