"""The discrete-event simulation engine.

A classic calendar-queue design: events are ``(time, priority, seq)``-ordered
callbacks held in a binary heap. The engine owns the :class:`Clock`; running
an event advances the clock to the event's timestamp before the callback
fires, so callbacks always observe a consistent "now".
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import BudgetExceededError, ScheduleError
from repro.sim.clock import Clock

#: Default priority; lower numbers run first among same-time events.
DEFAULT_PRIORITY = 100


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, priority, seq)`` so that simultaneous events run
    in a deterministic order; ``seq`` is a monotonically increasing ticket.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Engine:
    """Event queue + simulation loop.

    Example:
        >>> engine = Engine()
        >>> fired = []
        >>> _ = engine.schedule_at(10.0, lambda: fired.append(engine.now()))
        >>> engine.run()
        >>> fired
        [10.0]
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        *,
        event_budget: Optional[int] = None,
    ) -> None:
        if event_budget is not None and event_budget < 1:
            raise ScheduleError(
                f"event_budget must be >= 1 or None, got {event_budget}"
            )
        self.clock = clock if clock is not None else Clock()
        #: Lifetime cap on executed events; ``None`` means unbounded. A
        #: fault-injection scenario (duplication storms, retry cascades)
        #: can in principle schedule without bound — the budget converts
        #: that into a :class:`repro.errors.BudgetExceededError` that the
        #: experiment runner records as a structured trial failure.
        self.event_budget = event_budget
        self._queue: List[Event] = []
        self._tickets = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulation time (CPU cycles)."""
        return self.clock.now()

    @property
    def events_processed(self) -> int:
        """How many events have run so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def record_metrics(self, registry: Any) -> None:
        """Flush engine totals into a metrics registry (end of trial).

        Emits ``sim_events_total`` (events executed) and the
        ``sim_events_pending`` gauge (events still queued — nonzero means
        the run stopped before the calendar drained, e.g. on a budget).
        """
        registry.counter("sim_events_total").inc(self._events_processed)
        registry.gauge("sim_events_pending").inc(len(self._queue))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        when: float,
        action: Callable[[], Any],
        *,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run at absolute time ``when``.

        Raises:
            ScheduleError: if ``when`` is before the current time.
        """
        if when < self.clock.now():
            raise ScheduleError(
                f"cannot schedule in the past: now={self.clock.now()}, when={when}"
            )
        event = Event(
            time=float(when),
            priority=priority,
            seq=next(self._tickets),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ScheduleError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self.clock.now() + delay, action, priority=priority, label=label
        )

    def absorb_batch(self, events: int, advance_to: float) -> None:
        """Fold an externally simulated batch of events into the engine.

        The vectorized batch core (``repro.vec``) replays whole phases
        without materializing :class:`Event` objects; it reports back the
        number of deliveries it emulated and the timestamp of the last
        one, so ``events_processed`` and the clock read exactly as if the
        calendar queue had executed the same schedule event by event.

        Args:
            events: emulated event count to add to ``events_processed``.
            advance_to: clock target; ignored when it is not ahead of now.

        Raises:
            ScheduleError: ``events`` is negative.
        """
        if events < 0:
            raise ScheduleError(f"events must be >= 0, got {events}")
        self._events_processed += events
        if advance_to > self.clock.now():
            self.clock.advance_to(advance_to)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.

        Returns:
            True if an event ran, False if the queue was empty.

        Raises:
            BudgetExceededError: the engine's ``event_budget`` is set and
                already spent — the queue still holds runnable events.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if (
                self.event_budget is not None
                and self._events_processed >= self.event_budget
            ):
                heapq.heappush(self._queue, event)
                raise BudgetExceededError(
                    f"event budget exhausted: {self._events_processed} events "
                    f"executed (budget {self.event_budget}), "
                    f"{len(self._queue)} still queued"
                )
            self.clock.advance_to(event.time)
            event.action()
            self._events_processed += 1
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` events have run).

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while self._running:
                if max_events is not None and executed >= max_events:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, deadline: float) -> int:
        """Run events with ``time <= deadline``; leave later events queued.

        The clock ends at ``deadline`` (or later if an executed event pushed
        it past — which cannot happen given the filter below).
        """
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            executed += 1
        if self.clock.now() < deadline:
            self.clock.advance_to(deadline)
        return executed

    def stop(self) -> None:
        """Request that a :meth:`run` in progress stop after the current event."""
        self._running = False
