"""A minimal CSMA-style medium-access model.

The paper's analysis needs only one MAC-level fact (Section 2.3): during a
packet's transmission period a neighbour either receives the whole original
signal or, on collision, nothing — so a local replay is delayed by at least
one full packet transmission time. This module provides exactly that
"all-or-nothing per transmission window" behaviour, plus carrier-sense
backoff so senders serialize when they can hear each other.

It is intentionally *optional*: the evaluation experiments run with the MAC
disabled (like the paper's analysis, which abstracts MAC delays away via the
register-level RTT), while MAC-focused tests and the ablation benches enable
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass
class _Window:
    start: float
    end: float
    tx_id: int
    collided: bool = False


@dataclass
class CsmaMedium:
    """Tracks per-receiver reception windows and flags collisions.

    Usage: the caller proposes a reception window with :meth:`try_receive`;
    overlapping windows at the same receiver mark *both* transmissions as
    collided and neither is delivered (all-or-nothing).
    """

    enabled: bool = True
    _windows: Dict[int, List[_Window]] = field(default_factory=dict)

    def try_receive(
        self, receiver_id: int, start: float, end: float, tx_id: int
    ) -> bool:
        """Propose delivering transmission ``tx_id`` to ``receiver_id``.

        Returns:
            True if the window is (so far) collision-free. A later
            overlapping proposal retroactively voids the earlier one, which
            callers observe via :meth:`is_clear` at delivery time.
        """
        if end < start:
            raise ConfigurationError(f"bad window: start={start}, end={end}")
        if not self.enabled:
            return True
        windows = self._windows.setdefault(receiver_id, [])
        clear = True
        for w in windows:
            if w.start < end and start < w.end:
                w.collided = True
                clear = False
        windows.append(_Window(start=start, end=end, tx_id=tx_id, collided=not clear))
        return clear

    def is_clear(self, receiver_id: int, tx_id: int) -> bool:
        """True when transmission ``tx_id`` at ``receiver_id`` never collided."""
        if not self.enabled:
            return True
        for w in self._windows.get(receiver_id, ()):
            if w.tx_id == tx_id:
                return not w.collided
        return False

    def busy_until(self, listener_id: int, now: float) -> Optional[float]:
        """Carrier sense: when does the channel at ``listener_id`` go idle?

        Returns None if the channel is already idle at ``now``.
        """
        latest: Optional[float] = None
        for w in self._windows.get(listener_id, ()):
            if w.start <= now < w.end:
                latest = w.end if latest is None else max(latest, w.end)
        return latest

    def prune(self, before: float) -> int:
        """Drop windows that ended before ``before``; returns count removed."""
        removed = 0
        for receiver_id, windows in self._windows.items():
            kept = [w for w in windows if w.end >= before]
            removed += len(windows) - len(kept)
            self._windows[receiver_id] = kept
        return removed

    def stats(self) -> Tuple[int, int]:
        """(total windows tracked, collided windows)."""
        total = 0
        collided = 0
        for windows in self._windows.values():
            total += len(windows)
            collided += sum(1 for w in windows if w.collided)
        return total, collided
