"""Network topology, neighbor queries, and packet delivery.

The :class:`Network` ties together the engine, the radio model, the ranging
error model, and any wormhole tunnels. Delivery semantics:

- **Direct unicast** succeeds when the destination is within the radio's
  communication range of the transmission origin.
- **Wormhole tunnelling** (paper Figure 1c and Section 4): a tunnel has two
  endpoints; a transmission originating within range of one endpoint is
  re-emitted at the other, reaching destinations within range of that far
  endpoint. The re-emitted signal physically emanates from the far endpoint,
  so receivers derive their ranging measurement from *its* position — which
  is exactly why replayed signals produce inconsistent distances.
- Every delivery computes a **measured distance**: true distance from the
  physical transmission origin, plus bounded ranging noise, plus any
  adversarial ranging bias carried by the transmission.
- An optional :class:`repro.faults.FaultInjector` perturbs delivery and
  measurement: packet copies can be dropped, duplicated, or delayed;
  crashed nodes neither transmit nor receive; observed RTTs pick up
  jitter, outlier spikes, and per-node clock drift. With no injector the
  code path is byte-for-byte the fault-free one.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import ConfigurationError, DeliveryError
from repro.sim.engine import Engine
from repro.sim.mac import CsmaMedium
from repro.sim.messages import Packet
from repro.sim.node import Node
from repro.sim.radio import RadioModel, Reception, Transmission
from repro.sim.reliable import LossModel
from repro.sim.rng import RngRegistry
from repro.sim.timing import RttModel
from repro.sim.trace import TraceRecorder
from repro.utils.geometry import Point, distance
from repro.utils.profiling import NetworkCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

#: Signature of a ranging-error model: (true_distance_ft, rng) -> error_ft.
RangingErrorModel = Callable[[float, "object"], float]


def uniform_ranging_error(max_error_ft: float) -> RangingErrorModel:
    """The paper's bounded-error model: error ~ U(-max_error, +max_error)."""
    if max_error_ft < 0:
        raise ConfigurationError(f"max_error_ft must be >= 0, got {max_error_ft}")

    def model(true_distance_ft: float, rng) -> float:
        return rng.uniform(-max_error_ft, max_error_ft)

    # Tag the closure so batch consumers (repro.vec) can recognize the
    # default model and reproduce its draws array-wide; a custom model
    # without the tag falls back to per-copy scalar calls.
    model.max_error_ft = max_error_ft

    return model


@dataclass(frozen=True)
class WormholeLink:
    """A low-latency tunnel between two field locations.

    Attributes:
        end_a: one tunnel endpoint.
        end_b: the other endpoint.
        latency_cycles: extra delay the tunnel adds (visible to the RTT
            detector when large enough; the paper's wormhole "forwards
            every message ... immediately", i.e. small latency).
    """

    end_a: Point
    end_b: Point
    latency_cycles: float = 0.0

    def far_end(self, near: Point, comm_range_ft: float) -> Optional[Point]:
        """If ``near`` is within range of one endpoint, return the other."""
        if distance(near, self.end_a) <= comm_range_ft:
            return self.end_b
        if distance(near, self.end_b) <= comm_range_ft:
            return self.end_a
        return None


class Network:
    """The simulated sensing field.

    Args:
        engine: the event engine driving delivery.
        radio: shared radio parameters.
        rngs: named random streams ("ranging" is used for measurement noise).
        max_ranging_error_ft: the paper's maximum distance-measurement error
            (Section 4 uses 10 ft); used by the default error model.
        ranging_error_model: override for the noise distribution.
        trace: optional recorder of delivery/drop events.
        drop_out_of_range: when True (default) out-of-range unicasts are
            silently dropped like real radio; when False they raise, which
            is convenient in unit tests.
        fault_injector: optional :class:`repro.faults.FaultInjector`
            perturbing deliveries and RTT observations; None (default)
            keeps the fault-free paths untouched.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        radio: Optional[RadioModel] = None,
        rngs: Optional[RngRegistry] = None,
        max_ranging_error_ft: float = 10.0,
        ranging_error_model: Optional[RangingErrorModel] = None,
        rtt_model: Optional[RttModel] = None,
        trace: Optional[TraceRecorder] = None,
        drop_out_of_range: bool = True,
        loss_model: Optional[LossModel] = None,
        medium: Optional[CsmaMedium] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.engine = engine
        self.radio = radio if radio is not None else RadioModel()
        self.rngs = rngs if rngs is not None else RngRegistry(seed=0)
        self.max_ranging_error_ft = max_ranging_error_ft
        self.ranging_error = (
            ranging_error_model
            if ranging_error_model is not None
            else uniform_ranging_error(max_ranging_error_ft)
        )
        self.rtt_model = rtt_model if rtt_model is not None else RttModel()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.drop_out_of_range = drop_out_of_range
        self.loss_model = loss_model
        #: Optional fault-injection layer (see :mod:`repro.faults`).
        #: ``None`` keeps every delivery/measurement path fault-free.
        self.fault_injector = fault_injector
        #: Optional collision model: overlapping reception windows at one
        #: receiver void each other (all-or-nothing, the paper's §2.3 MAC
        #: assumption). None = ideal medium (the default; the paper's
        #: analysis abstracts MAC effects away).
        self.medium = medium
        self._tx_tickets = 0
        self._nodes: Dict[int, Node] = {}
        self._aliases: Dict[int, int] = {}
        self._wormholes: List[WormholeLink] = []
        self._grid: Dict[tuple, List[Node]] = {}
        #: Beacon-only mirror of the grid, so beacon range queries don't
        #: filter the (10x larger) full node population per bucket.
        self._beacon_grid: Dict[tuple, List[Node]] = {}
        self._cell = max(self.radio.comm_range_ft, 1.0)
        # Beacon/non-beacon partition, maintained incrementally by
        # add_node (role is fixed at registration) and kept sorted by
        # node_id; the tuples are the cached read views.
        self._beacons: List[Node] = []
        self._non_beacons: List[Node] = []
        self._beacons_view: Optional[Tuple[Node, ...]] = None
        self._non_beacons_view: Optional[Tuple[Node, ...]] = None
        #: Hot-path operation counters (distance evals, cells visited,
        #: queries, deliveries) — cheap enough to always stay on.
        self.stats = NetworkCounters()
        #: Optional observability hook: called as ``rtt_observer(rtt,
        #: requester)`` with every RTT the network hands out (after any
        #: fault perturbation — observers see what the node sees). The
        #: pipeline wires this to its ``rtt_cycles`` histogram; RNG-free.
        self.rtt_observer: Optional[Callable[[float, Node], None]] = None
        # Wormhole-endpoint proximity cache: beacon ids within range of
        # each tunnel endpoint, recomputed lazily whenever the topology
        # version moves (node added / moved, wormhole installed).
        self._topology_version = 0
        self._endpoint_beacon_cache: Dict[
            Tuple[int, str], Tuple[int, FrozenSet[int]]
        ] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register ``node``; ids must be unique.

        The node's beacon/non-beacon role is read here, once; flipping
        ``node.is_beacon`` after registration is not supported.
        """
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        node.attach(self)
        cell = self._cell_of(node.position)
        self._grid.setdefault(cell, []).append(node)
        if node.is_beacon:
            bisect.insort(self._beacons, node, key=lambda n: n.node_id)
            self._beacons_view = None
            self._beacon_grid.setdefault(cell, []).append(node)
        else:
            bisect.insort(self._non_beacons, node, key=lambda n: n.node_id)
            self._non_beacons_view = None
        self._topology_version += 1
        return node

    def update_position(self, node: Node, new_position: Point) -> None:
        """Move a node (mobility support); keeps the spatial index fresh."""
        if node.node_id not in self._nodes:
            raise DeliveryError(f"unknown node id {node.node_id}")
        old_cell = self._cell_of(node.position)
        new_cell = self._cell_of(new_position)
        node.position = new_position
        if old_cell != new_cell:
            grids = (
                (self._grid, self._beacon_grid) if node.is_beacon else (self._grid,)
            )
            for grid in grids:
                bucket = grid.get(old_cell, [])
                if node in bucket:
                    bucket.remove(node)
                grid.setdefault(new_cell, []).append(node)
        self._topology_version += 1

    def add_wormhole(self, link: WormholeLink) -> None:
        """Install a wormhole tunnel in the field."""
        self._wormholes.append(link)
        self._topology_version += 1

    @property
    def topology_version(self) -> int:
        """Monotone counter bumped on every topology mutation.

        Node additions, moves, and wormhole installs all advance it, so
        derived views (the wormhole-endpoint cache here, the
        struct-of-arrays views in :mod:`repro.vec.arrays`) can be cached
        against a version number instead of re-deriving per query.
        """
        return self._topology_version

    @property
    def wormholes(self) -> List[WormholeLink]:
        """The installed tunnels (read-only by convention)."""
        return list(self._wormholes)

    def add_alias(self, alias_id: int, node_id: int) -> None:
        """Route packets addressed to ``alias_id`` to node ``node_id``.

        Used for detecting IDs (paper Section 2.1): a beacon node owns
        extra non-beacon identities; radio-wise they are the same device.
        """
        if alias_id in self._nodes or alias_id in self._aliases:
            raise ConfigurationError(f"identity {alias_id} already in use")
        if node_id not in self._nodes:
            raise DeliveryError(f"unknown node id {node_id}")
        self._aliases[alias_id] = node_id

    def node(self, node_id: int) -> Node:
        """Look up a node by id (aliases resolve to their owner)."""
        target = self._aliases.get(node_id, node_id)
        try:
            return self._nodes[target]
        except KeyError:
            raise DeliveryError(f"unknown node id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        """True when ``node_id`` is registered."""
        return node_id in self._nodes

    def nodes(self) -> List[Node]:
        """All registered nodes (stable id order)."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def beacon_nodes(self) -> Tuple[Node, ...]:
        """All nodes flagged as beacons (id order; cached tuple)."""
        if self._beacons_view is None:
            self._beacons_view = tuple(self._beacons)
        return self._beacons_view

    def non_beacon_nodes(self) -> Tuple[Node, ...]:
        """All regular sensor nodes (id order; cached tuple)."""
        if self._non_beacons_view is None:
            self._non_beacons_view = tuple(self._non_beacons)
        return self._non_beacons_view

    def _cell_of(self, p: Point) -> tuple:
        return (int(math.floor(p.x / self._cell)), int(math.floor(p.y / self._cell)))

    def _query_grid(
        self, grid: Dict[tuple, List[Node]], center: Point, radius_ft: float
    ) -> List[Node]:
        """Range query over one grid; results sorted by ``node_id``."""
        # Prune with the bounding box of the query disc, padded by an
        # epsilon scaled to the operand magnitudes: the membership test
        # below uses the *rounded* float distance, which can admit a node
        # whose true distance is a few ulps past ``radius_ft`` — such a
        # node may sit one cell outside the exact box and must still be
        # visited (otherwise grid and brute-force results diverge).
        pad = 1e-9 * (abs(center.x) + abs(center.y) + radius_ft + 1.0)
        gx_min = int(math.floor((center.x - radius_ft - pad) / self._cell))
        gx_max = int(math.floor((center.x + radius_ft + pad) / self._cell))
        gy_min = int(math.floor((center.y - radius_ft - pad) / self._cell))
        gy_max = int(math.floor((center.y + radius_ft + pad) / self._cell))
        stats = self.stats
        stats.spatial_queries += 1
        found: List[Node] = []
        for gx in range(gx_min, gx_max + 1):
            for gy in range(gy_min, gy_max + 1):
                bucket = grid.get((gx, gy))
                if not bucket:
                    continue
                stats.grid_cells_visited += 1
                stats.distance_evals += len(bucket)
                for node in bucket:
                    if distance(center, node.position) <= radius_ft:
                        found.append(node)
        found.sort(key=lambda n: n.node_id)
        return found

    def nodes_within(self, center: Point, radius_ft: float) -> List[Node]:
        """Nodes at distance <= radius from ``center`` (grid-accelerated)."""
        return self._query_grid(self._grid, center, radius_ft)

    def beacons_within(self, center: Point, radius_ft: float) -> List[Node]:
        """Beacons at distance <= radius from ``center``.

        Served from the beacon-only grid, so the query never touches the
        non-beacon population; same ordering contract as
        :meth:`nodes_within` (sorted by ``node_id``).
        """
        return self._query_grid(self._beacon_grid, center, radius_ft)

    def neighbors_of(self, node: Node) -> List[Node]:
        """Nodes within communication range of ``node`` (excluding itself)."""
        return [
            n
            for n in self.nodes_within(node.position, self.radio.comm_range_ft)
            if n.node_id != node.node_id
        ]

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def unicast(
        self,
        sender: Node,
        packet: Packet,
        *,
        tx_origin: Optional[Point] = None,
        ranging_bias_ft: float = 0.0,
        extra_delay_cycles: float = 0.0,
        replayed_by: Optional[int] = None,
        allow_wormhole: bool = True,
        fake_wormhole_symptoms: bool = False,
    ) -> bool:
        """Send ``packet`` to ``packet.dst_id``.

        Returns:
            True if at least one copy (direct or tunnelled) was scheduled
            for delivery, False if the packet was dropped.

        Raises:
            DeliveryError: when the destination id is unknown, or when the
                destination is out of range and ``drop_out_of_range`` is
                False.
        """
        dst = self.node(packet.dst_id)
        if self._sender_crashed(sender):
            return False
        origin = tx_origin if tx_origin is not None else sender.position
        transmission = Transmission(
            packet=packet,
            tx_origin=origin,
            departure_time=self.engine.now(),
            ranging_bias_ft=ranging_bias_ft,
            replayed_by=replayed_by,
            via_wormhole=False,
            extra_delay_cycles=extra_delay_cycles,
            tx_node_id=sender.node_id,
            fake_wormhole_symptoms=fake_wormhole_symptoms,
        )

        delivered = False
        true_dist = distance(origin, dst.position)
        if true_dist <= self.radio.comm_range_ft:
            self._schedule_delivery(transmission, dst, true_dist)
            delivered = True

        if allow_wormhole:
            delivered = self._tunnel(transmission, dst) or delivered

        if not delivered:
            self.trace.record(
                self.engine.now(),
                "drop.out_of_range",
                src=sender.node_id,
                dst=dst.node_id,
                packet_kind=packet.kind(),
            )
            if not self.drop_out_of_range:
                raise DeliveryError(
                    f"node {dst.node_id} out of range of {origin} "
                    f"(d={true_dist:.1f} ft > {self.radio.comm_range_ft} ft)"
                )
        return delivered

    def broadcast(
        self,
        sender: Node,
        packet: Packet,
        *,
        tx_origin: Optional[Point] = None,
        extra_delay_cycles: float = 0.0,
    ) -> int:
        """Deliver ``packet`` to every node in radio range of the origin.

        Ignores the packet's ``dst_id`` (each receiver sees the same
        frame, as real radio broadcast does); wormhole tunnels replay the
        broadcast at their far end like any other transmission.

        Returns:
            Number of receivers the packet was scheduled for.
        """
        if self._sender_crashed(sender):
            return 0
        origin = tx_origin if tx_origin is not None else sender.position
        transmission = Transmission(
            packet=packet,
            tx_origin=origin,
            departure_time=self.engine.now(),
            extra_delay_cycles=extra_delay_cycles,
            tx_node_id=sender.node_id,
        )
        receivers = 0
        for node in self.nodes_within(origin, self.radio.comm_range_ft):
            if node.node_id == sender.node_id:
                continue
            self._schedule_delivery(
                transmission, node, distance(origin, node.position)
            )
            receivers += 1
        for link in self._wormholes:
            far = link.far_end(origin, self.radio.comm_range_ft)
            if far is None:
                continue
            replayed = Transmission(
                packet=packet,
                tx_origin=far,
                departure_time=transmission.departure_time,
                via_wormhole=True,
                extra_delay_cycles=extra_delay_cycles + link.latency_cycles,
                tx_node_id=sender.node_id,
            )
            for node in self.nodes_within(far, self.radio.comm_range_ft):
                if node.node_id == sender.node_id:
                    continue
                self._schedule_delivery(
                    replayed, node, distance(far, node.position)
                )
                receivers += 1
        return receivers

    def _tunnel(self, transmission: Transmission, dst: Node) -> bool:
        """Deliver a wormhole-replayed copy of ``transmission`` if possible."""
        delivered = False
        for link in self._wormholes:
            far = link.far_end(transmission.tx_origin, self.radio.comm_range_ft)
            if far is None:
                continue
            exit_dist = distance(far, dst.position)
            if exit_dist > self.radio.comm_range_ft:
                continue
            # The tunnelled copy physically leaves from the far endpoint and
            # pays the tunnel latency on top of whatever delay it had.
            replayed = Transmission(
                packet=transmission.packet,
                tx_origin=far,
                departure_time=transmission.departure_time,
                ranging_bias_ft=transmission.ranging_bias_ft,
                replayed_by=transmission.replayed_by,
                via_wormhole=True,
                extra_delay_cycles=transmission.extra_delay_cycles
                + link.latency_cycles,
                tx_node_id=transmission.tx_node_id,
                fake_wormhole_symptoms=transmission.fake_wormhole_symptoms,
            )
            self._schedule_delivery(replayed, dst, exit_dist)
            delivered = True
        return delivered

    def _sender_crashed(self, sender: Node) -> bool:
        """True (and traced) when a crash fault has taken the sender down."""
        injector = self.fault_injector
        if injector is None or not injector.is_crashed(
            sender.node_id, self.engine.now()
        ):
            return False
        self.trace.record(
            self.engine.now(),
            "drop.crashed_sender",
            src=sender.node_id,
        )
        return True

    def _schedule_delivery(
        self, transmission: Transmission, dst: Node, physical_dist: float
    ) -> None:
        if self.loss_model is not None and not self.loss_model.attempt_succeeds():
            self.trace.record(
                self.engine.now(),
                "drop.loss",
                src=transmission.packet.src_id,
                dst=dst.node_id,
                packet_kind=transmission.packet.kind(),
            )
            return
        injector = self.fault_injector
        if injector is not None:
            if injector.drop_delivery():
                self.trace.record(
                    self.engine.now(),
                    "drop.fault",
                    src=transmission.packet.src_id,
                    dst=dst.node_id,
                    packet_kind=transmission.packet.kind(),
                )
                return
            dup_delay = injector.duplicate_delay()
            if dup_delay is not None and not transmission.duplicated:
                # Re-deliver a marked copy later; the copy itself is not
                # re-duplicated (one spurious retransmission per packet).
                duplicate = dataclasses.replace(
                    transmission,
                    duplicated=True,
                    extra_delay_cycles=transmission.extra_delay_cycles
                    + dup_delay,
                )
                self._schedule_delivery(duplicate, dst, physical_dist)
        radio = self.radio
        delay = (
            radio.packet_time_cycles(transmission.packet, physical_dist)
            + transmission.extra_delay_cycles
        )
        if injector is not None:
            delay += injector.delivery_delay()
        if transmission.packet.carries_ranging_signal:
            noise = self.ranging_error(
                physical_dist, self.rngs.stream("ranging")
            )
        else:
            # Nobody ranges on this packet: skip the noise draw so pure
            # control traffic (notice floods) stays RNG-neutral.
            noise = 0.0
        measured = max(
            0.0, physical_dist + noise + transmission.ranging_bias_ft
        )

        tx_ticket = None
        if self.medium is not None:
            self._tx_tickets += 1
            tx_ticket = self._tx_tickets
            window_end = self.engine.now() + delay
            window_start = window_end - radio.airtime_cycles(transmission.packet)
            self.medium.try_receive(
                dst.node_id, window_start, window_end, tx_ticket
            )

        def deliver() -> None:
            if tx_ticket is not None and not self.medium.is_clear(
                dst.node_id, tx_ticket
            ):
                self.trace.record(
                    self.engine.now(),
                    "drop.collision",
                    src=transmission.packet.src_id,
                    dst=dst.node_id,
                    packet_kind=transmission.packet.kind(),
                )
                return
            if injector is not None and injector.is_crashed(
                dst.node_id, self.engine.now()
            ):
                # Receiver went down before the last bit arrived.
                self.trace.record(
                    self.engine.now(),
                    "drop.crashed",
                    src=transmission.packet.src_id,
                    dst=dst.node_id,
                    packet_kind=transmission.packet.kind(),
                )
                return
            self._finish_delivery(transmission, dst, measured)

        self.engine.schedule_in(
            delay, deliver, label=f"deliver:{transmission.packet.kind()}"
        )

    def _finish_delivery(
        self, transmission: Transmission, dst: Node, measured: float
    ) -> None:
        self.stats.deliveries += 1
        reception = Reception(
            packet=transmission.packet,
            arrival_time=self.engine.now(),
            measured_distance_ft=measured,
            transmission=transmission,
        )
        self.trace.record(
            self.engine.now(),
            "deliver",
            src=transmission.packet.src_id,
            dst=dst.node_id,
            packet_kind=transmission.packet.kind(),
            wormhole=transmission.via_wormhole,
            replayed=transmission.is_replayed(),
        )
        dst.handle(reception)

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    def measure_bearing(
        self,
        receiver: Node,
        tx_origin: Point,
        *,
        max_error_rad: float = 0.0873,  # ~5 degrees
    ) -> float:
        """Sample an AoA bearing from ``receiver`` toward a signal source.

        The bearing is *physical*: it points at the true transmission
        origin. An attacker can game RSSI with transmit power, but it
        cannot change the direction its signal arrives from — which is
        what makes the AoA consistency check complementary to the
        distance check.
        """
        angle = math.atan2(
            tx_origin.y - receiver.position.y, tx_origin.x - receiver.position.x
        )
        noise = self.rngs.stream("aoa").uniform(-max_error_rad, max_error_rad)
        return angle + noise

    def measure_rtt(
        self, requester: Node, responder_position: Point, extra_delay_cycles: float
    ) -> float:
        """Sample the register-level RTT of one request/reply exchange.

        Used by the local-replay detector: honest exchanges draw from the
        narrow hardware distribution; replayed ones carry ``extra_delay``.
        With a fault injector configured, the observation additionally
        picks up channel jitter/outlier spikes and the requester's clock
        drift — the §2.2.2 stress case where the true distribution no
        longer matches the calibrated Figure-4 window.
        """
        dist = distance(requester.position, responder_position)
        sample = self.rtt_model.sample(
            self.rngs.stream("rtt"),
            distance_ft=dist,
            extra_delay_cycles=extra_delay_cycles,
            start_time=self.engine.now(),
        )
        injector = self.fault_injector
        rtt = sample.rtt
        if injector is not None and injector.perturbs_rtt():
            rtt = injector.perturb_rtt(sample.rtt, observer_id=requester.node_id)
        if self.rtt_observer is not None:
            self.rtt_observer(rtt, requester)
        return rtt

    def record_metrics(self, registry) -> None:
        """Flush the hot-path counters into a metrics registry as
        ``net_*_total`` series (end of trial)."""
        self.stats.record_metrics(registry)

    def wormhole_between(self, a: Point, b: Point) -> Optional[WormholeLink]:
        """The tunnel that connects the neighbourhoods of ``a`` and ``b``."""
        r = self.radio.comm_range_ft
        for link in self._wormholes:
            self.stats.distance_evals += 4
            a_near_a = distance(a, link.end_a) <= r
            a_near_b = distance(a, link.end_b) <= r
            b_near_a = distance(b, link.end_a) <= r
            b_near_b = distance(b, link.end_b) <= r
            if (a_near_a and b_near_b) or (a_near_b and b_near_a):
                return link
        return None

    def _endpoint_beacon_ids(self, index: int, side: str) -> FrozenSet[int]:
        """Beacon ids within radio range of one tunnel endpoint (cached).

        The cache key is (wormhole index, endpoint side); an entry is
        valid only for the topology version it was computed under, so any
        node addition, move, or new tunnel transparently invalidates it.
        """
        key = (index, side)
        cached = self._endpoint_beacon_cache.get(key)
        if cached is not None and cached[0] == self._topology_version:
            return cached[1]
        link = self._wormholes[index]
        endpoint = link.end_a if side == "a" else link.end_b
        ids = frozenset(
            b.node_id
            for b in self.beacons_within(endpoint, self.radio.comm_range_ft)
        )
        self._endpoint_beacon_cache[key] = (self._topology_version, ids)
        return ids

    def wormhole_reachable_beacon_ids(self, position: Point) -> FrozenSet[int]:
        """Ids of beacons reachable from ``position`` through some tunnel.

        A beacon is tunnel-reachable when ``position`` is within range of
        one endpoint and the beacon is within range of the other — the
        same predicate :meth:`wormhole_between` evaluates pairwise, but
        answered with two distance checks per tunnel plus a cached
        per-endpoint beacon set instead of four distance calls per
        (position, beacon) pair.
        """
        if not self._wormholes:
            return frozenset()
        r = self.radio.comm_range_ft
        reachable: Set[int] = set()
        for index, link in enumerate(self._wormholes):
            self.stats.distance_evals += 2
            if distance(position, link.end_a) <= r:
                reachable |= self._endpoint_beacon_ids(index, "b")
            if distance(position, link.end_b) <= r:
                reachable |= self._endpoint_beacon_ids(index, "a")
        return frozenset(reachable)
