"""Packet types exchanged in the simulated network.

Packets model only what the paper's protocols need:

- :class:`BeaconRequest` — a (non-)beacon node asking a beacon node for a
  beacon signal (the paper's request/reply protocol, Figure 3);
- :class:`BeaconPacket` — the beacon reply carrying the claimed location;
- :class:`Alert` — a detecting node's report ``(detector, target)`` to the
  base station (Section 3.1);
- :class:`RevocationNotice` — the base station announcing a revoked beacon.

Every packet exposes :meth:`Packet.wire_repr`, the canonical byte string the
crypto layer authenticates. Authentication tags travel in ``auth_tag`` and
are verified against the pairwise key of the (claimed) endpoints.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

from repro.utils.geometry import Point


@dataclass
class Packet:
    """Base class for everything sent over the simulated radio.

    Attributes:
        src_id: the *claimed* sender identity (an attacker may lie).
        dst_id: the intended recipient identity.
        auth_tag: message-authentication code over :meth:`wire_repr`,
            computed with the pairwise key for ``(src_id, dst_id)``; ``None``
            until the crypto layer signs the packet.
        size_bits: on-air size, used for airtime/delay computation.
    """

    src_id: int
    dst_id: int
    auth_tag: Optional[bytes] = field(default=None, compare=False)
    size_bits: int = field(default=288, compare=False)  # 36-byte TinyOS frame

    #: Whether receivers extract a ranging feature (RSSI/ToF distance)
    #: from this packet's signal. Control traffic that nobody ranges on
    #: (e.g. flooded µTESLA notices) sets this False so its deliveries
    #: never consume the shared ``ranging`` noise stream — otherwise
    #: mere dissemination traffic would perturb every later ranging
    #: measurement and break oracle-vs-flood determinism.
    carries_ranging_signal: ClassVar[bool] = True

    def kind(self) -> str:
        """Short type name used in traces."""
        return type(self).__name__

    def wire_repr(self) -> bytes:
        """Canonical bytes covered by the authentication tag."""
        fields = []
        for f in dataclasses.fields(self):
            if f.name in ("auth_tag",):
                continue
            fields.append(f"{f.name}={getattr(self, f.name)!r}")
        return f"{self.kind()}({','.join(fields)})".encode("utf-8")

    def with_auth(self, tag: bytes) -> "Packet":
        """Return a shallow copy of this packet carrying ``tag``."""
        clone = dataclasses.replace(self)
        clone.auth_tag = tag
        return clone


@dataclass
class BeaconRequest(Packet):
    """Request for a beacon signal, sent under a (possibly detecting) ID."""

    nonce: int = 0


@dataclass
class BeaconPacket(Packet):
    """A beacon signal's data payload.

    Attributes:
        claimed_location: the location the beacon *declares*; for a
            compromised beacon this may differ from its physical location.
        nonce: echoes the request nonce, binding reply to request.
        sequence: per-beacon monotonically increasing counter.
    """

    claimed_location: Tuple[float, float] = (0.0, 0.0)
    nonce: int = 0
    sequence: int = 0

    @property
    def claimed_point(self) -> Point:
        """The declared location as a :class:`Point`."""
        return Point(*self.claimed_location)


@dataclass
class Alert(Packet):
    """Detecting node -> base station: "target looks malicious"."""

    detector_id: int = 0
    target_id: int = 0


@dataclass
class RevocationNotice(Packet):
    """Base station -> network: the named beacon node is revoked."""

    revoked_id: int = 0


@dataclass
class DataPacket(Packet):
    """Opaque application payload (used by tests and routing examples)."""

    payload: bytes = b""
