"""Lossy channels and retransmission-based reliable delivery.

The paper assumes (§3.2) "every alert from beacon nodes can be
successfully delivered to the base station using some standard fault
tolerant techniques (e.g., retransmission) when there are message
losses". This module supplies both halves of that assumption:

- :class:`LossModel` — per-attempt Bernoulli loss, pluggable into the
  network or used standalone;
- :class:`ReliableChannel` — stop-and-wait ARQ over a lossy link: retry
  with a fixed timeout until an attempt (and its acknowledgement) gets
  through or the retry budget is exhausted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.utils.validation import check_int_in_range, check_probability


@dataclass
class LossModel:
    """Independent per-attempt message loss.

    Attributes:
        loss_rate: probability a single transmission attempt is lost.
        rng: randomness source.
    """

    loss_rate: float
    rng: random.Random
    attempts: int = field(default=0, init=False)
    losses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_probability(self.loss_rate, "loss_rate")

    def attempt_succeeds(self) -> bool:
        """Draw one attempt; updates counters."""
        self.attempts += 1
        if self.rng.random() < self.loss_rate:
            self.losses += 1
            return False
        return True

    def expected_attempts(self) -> float:
        """Mean attempts until first success (geometric distribution)."""
        if self.loss_rate >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - self.loss_rate)


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of one reliable send."""

    delivered: bool
    attempts: int
    completion_time: float


class ReliableChannel:
    """Stop-and-wait ARQ: retransmit until delivered or budget exhausted.

    Both the data packet and the acknowledgement traverse the lossy link,
    so one round trip succeeds with probability ``(1 - loss)^2``.

    Args:
        engine: the simulation engine for timeout scheduling.
        loss: the loss model (shared counters are intentional).
        max_retries: additional attempts after the first.
        retry_timeout_cycles: wait before concluding an attempt failed.
        ack_required: model the acknowledgement path too (default True).
    """

    def __init__(
        self,
        engine: Engine,
        loss: LossModel,
        *,
        max_retries: int = 8,
        retry_timeout_cycles: float = 1_000_000.0,
        ack_required: bool = True,
    ) -> None:
        check_int_in_range(max_retries, "max_retries", 0)
        if retry_timeout_cycles <= 0:
            raise ConfigurationError(
                f"retry_timeout_cycles must be > 0, got {retry_timeout_cycles}"
            )
        self.engine = engine
        self.loss = loss
        self.max_retries = max_retries
        self.retry_timeout_cycles = retry_timeout_cycles
        self.ack_required = ack_required
        self.sends = 0
        self.delivered = 0
        self.failed = 0

    def _attempt_round_trip(self) -> bool:
        if not self.loss.attempt_succeeds():
            return False
        if self.ack_required and not self.loss.attempt_succeeds():
            return False
        return True

    def send(
        self,
        deliver: Callable[[], None],
        *,
        on_failure: Optional[Callable[[], None]] = None,
    ) -> DeliveryReport:
        """Deliver ``deliver()`` reliably; returns the synchronous report.

        The delivery callback runs at the simulated completion time (the
        attempt number times the timeout); the report is computed eagerly
        so callers in tests can assert without running the engine, while
        the scheduled callback preserves causality for protocol code.
        """
        self.sends += 1
        attempts = 0
        for attempt in range(self.max_retries + 1):
            attempts += 1
            if self._attempt_round_trip():
                delay = (attempts - 1) * self.retry_timeout_cycles
                completion = self.engine.now() + delay
                if delay > 0:
                    self.engine.schedule_in(delay, deliver, label="arq-deliver")
                else:
                    deliver()
                self.delivered += 1
                return DeliveryReport(
                    delivered=True, attempts=attempts, completion_time=completion
                )
        self.failed += 1
        if on_failure is not None:
            failure_delay = attempts * self.retry_timeout_cycles
            self.engine.schedule_in(failure_delay, on_failure, label="arq-fail")
        return DeliveryReport(
            delivered=False,
            attempts=attempts,
            completion_time=self.engine.now()
            + attempts * self.retry_timeout_cycles,
        )

    def delivery_probability(self) -> float:
        """P[delivered within the retry budget] for the configured loss."""
        p_attempt = 1.0 - self.loss.loss_rate
        if self.ack_required:
            p_attempt *= 1.0 - self.loss.loss_rate
        return 1.0 - (1.0 - p_attempt) ** (self.max_retries + 1)
