"""Lossy channels and retransmission-based reliable delivery (ARQ).

The paper assumes (§3.2) "every alert from beacon nodes can be
successfully delivered to the base station using some standard fault
tolerant techniques (e.g., retransmission) when there are message
losses". This module supplies both halves of that assumption:

- :class:`LossModel` — per-attempt Bernoulli loss, pluggable into the
  network or used standalone;
- :class:`ReliableChannel` — stop-and-wait ARQ over a lossy link.

ARQ semantics
-------------

One ``send`` makes up to ``1 + max_retries`` transmission attempts. An
attempt succeeds when the data packet gets through and — with
``ack_required`` (default) — its acknowledgement gets through too, so one
round trip succeeds with probability ``(1 - loss)^2``. Attempt ``i``
(0-based) waits ``retry_timeout_cycles * backoff_factor ** i`` before
being declared failed, i.e. ``backoff_factor > 1`` gives truncated
exponential backoff; the delivery callback runs at the simulated time the
successful attempt completes (the sum of all earlier timeouts).

When the retry budget is exhausted the channel schedules the
``on_failure`` callback (if any) at the time the last timeout expires,
records the failure in its :class:`~repro.utils.profiling.ChannelCounters`,
and **raises** :class:`repro.errors.DeliveryError` — silently returning an
undelivered report let callers forget the §3.2 assumption had failed.
Callers that prefer report semantics (e.g. metrics that count losses)
pass ``raise_on_exhaustion=False`` and check ``report.delivered``.

Paper section: §3.2 (fault-tolerant alert delivery via retransmission)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError, DeliveryError
from repro.sim.engine import Engine
from repro.utils.profiling import ChannelCounters
from repro.utils.validation import check_int_in_range, check_probability


@dataclass
class LossModel:
    """Independent per-attempt message loss.

    Attributes:
        loss_rate: probability a single transmission attempt is lost.
        rng: randomness source.
    """

    loss_rate: float
    rng: random.Random
    attempts: int = field(default=0, init=False)
    losses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_probability(self.loss_rate, "loss_rate")

    def attempt_succeeds(self) -> bool:
        """Draw one attempt; updates counters."""
        self.attempts += 1
        if self.rng.random() < self.loss_rate:
            self.losses += 1
            return False
        return True

    def expected_attempts(self) -> float:
        """Mean attempts until first success (geometric distribution)."""
        if self.loss_rate >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - self.loss_rate)


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of one reliable send."""

    delivered: bool
    attempts: int
    completion_time: float


class ReliableChannel:
    """Stop-and-wait ARQ: retransmit until delivered or budget exhausted.

    Both the data packet and the acknowledgement traverse the lossy link,
    so one round trip succeeds with probability ``(1 - loss)^2``. See the
    module docstring for the full ARQ semantics (timeouts, backoff,
    exhaustion behaviour).

    Args:
        engine: the simulation engine for timeout scheduling.
        loss: the loss model (shared counters are intentional).
        max_retries: additional attempts after the first.
        retry_timeout_cycles: wait before concluding the *first* attempt
            failed; later attempts scale by ``backoff_factor``.
        backoff_factor: multiplicative timeout growth per retry (1.0 =
            the classic fixed-timeout stop-and-wait; 2.0 = binary
            exponential backoff).
        ack_required: model the acknowledgement path too (default True).
        name: label used when surfacing this channel's counters in a
            profile snapshot (e.g. ``"alert"`` -> ``channel_alert_*``).
    """

    def __init__(
        self,
        engine: Engine,
        loss: LossModel,
        *,
        max_retries: int = 8,
        retry_timeout_cycles: float = 1_000_000.0,
        backoff_factor: float = 1.0,
        ack_required: bool = True,
        name: str = "channel",
    ) -> None:
        check_int_in_range(max_retries, "max_retries", 0)
        if retry_timeout_cycles <= 0:
            raise ConfigurationError(
                f"retry_timeout_cycles must be > 0, got {retry_timeout_cycles}"
            )
        if backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1.0, got {backoff_factor}"
            )
        self.engine = engine
        self.loss = loss
        self.max_retries = max_retries
        self.retry_timeout_cycles = retry_timeout_cycles
        self.backoff_factor = backoff_factor
        self.ack_required = ack_required
        self.name = name
        self.counters = ChannelCounters()

    # Legacy counter views (pre-ChannelCounters API, kept for callers).
    @property
    def sends(self) -> int:
        """Messages handed to the channel so far."""
        return self.counters.sends

    @property
    def delivered(self) -> int:
        """Messages delivered within the retry budget."""
        return self.counters.delivered

    @property
    def failed(self) -> int:
        """Messages whose retry budget was exhausted."""
        return self.counters.failed

    def record_metrics(self, registry) -> None:
        """Flush ARQ counters into a metrics registry as
        ``arq_*_total{channel=<name>}`` series (end of trial)."""
        self.counters.record_metrics(registry, channel=self.name)

    def _attempt_round_trip(self) -> bool:
        if not self.loss.attempt_succeeds():
            return False
        if self.ack_required and not self.loss.attempt_succeeds():
            return False
        return True

    def _timeout_of_attempt(self, attempt_index: int) -> float:
        """Timeout of 0-based attempt ``attempt_index`` (with backoff)."""
        return self.retry_timeout_cycles * self.backoff_factor**attempt_index

    def send(
        self,
        deliver: Callable[[], None],
        *,
        on_failure: Optional[Callable[[], None]] = None,
        raise_on_exhaustion: bool = True,
    ) -> DeliveryReport:
        """Deliver ``deliver()`` reliably; returns the synchronous report.

        The delivery callback runs at the simulated completion time (the
        sum of the failed attempts' timeouts); the report is computed
        eagerly so callers in tests can assert without running the
        engine, while the scheduled callback preserves causality for
        protocol code.

        Raises:
            DeliveryError: the retry budget was exhausted and
                ``raise_on_exhaustion`` is True (the default). The
                ``on_failure`` callback is scheduled either way.
        """
        counters = self.counters
        counters.sends += 1
        attempts = 0
        elapsed = 0.0
        for attempt in range(self.max_retries + 1):
            attempts += 1
            counters.attempts += 1
            if attempt > 0:
                counters.retries += 1
            if self._attempt_round_trip():
                completion = self.engine.now() + elapsed
                if elapsed > 0:
                    self.engine.schedule_in(elapsed, deliver, label="arq-deliver")
                else:
                    deliver()
                counters.delivered += 1
                return DeliveryReport(
                    delivered=True, attempts=attempts, completion_time=completion
                )
            elapsed += self._timeout_of_attempt(attempt)
        counters.failed += 1
        if on_failure is not None:
            self.engine.schedule_in(elapsed, on_failure, label="arq-fail")
        report = DeliveryReport(
            delivered=False,
            attempts=attempts,
            completion_time=self.engine.now() + elapsed,
        )
        if raise_on_exhaustion:
            raise DeliveryError(
                f"reliable channel {self.name!r}: retry budget exhausted "
                f"after {attempts} attempts "
                f"(loss_rate={self.loss.loss_rate}, "
                f"max_retries={self.max_retries})"
            )
        return report

    def delivery_probability(self) -> float:
        """P[delivered within the retry budget] for the configured loss."""
        p_attempt = 1.0 - self.loss.loss_rate
        if self.ack_required:
            p_attempt *= 1.0 - self.loss.loss_rate
        return 1.0 - (1.0 - p_attempt) ** (self.max_retries + 1)
