"""Structured event tracing.

Tests and examples use the trace to assert on *what happened* (deliveries,
detections, revocations) without reaching into private state. The recorder
is also the unified event stream the observability layer
(:mod:`repro.obs`) writes its span begin/end markers into, and the JSONL
exporter reads back out.

Capacity handling: when ``capacity`` is set and reached, further events
are *counted* (:attr:`TraceRecorder.dropped`) rather than silently
discarded, a one-time :class:`RuntimeWarning` is emitted, and — if a
``spill_path`` was configured — the overflow is appended to a JSONL file
so long runs lose nothing.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union


@dataclass(frozen=True)
class TraceEvent:
    """One recorded happening: a kind, a timestamp, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Dict-style access to the event's fields."""
        return self.fields.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form: ``{"time": ..., "kind": ..., **fields}``."""
        out: Dict[str, Any] = {"time": self.time, "kind": self.kind}
        out.update(self.fields)
        return out


class TraceRecorder:
    """Append-only in-memory trace with simple filtering.

    Args:
        enabled: when False, :meth:`record` is a no-op.
        capacity: maximum events held in memory (None = unbounded).
        spill_path: optional JSONL file; events past ``capacity`` are
            appended there (one JSON object per line) instead of being
            lost. The file is opened lazily on first spill.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        capacity: Optional[int] = None,
        spill_path: Optional[Union[str, pathlib.Path]] = None,
    ) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.spill_path = pathlib.Path(spill_path) if spill_path else None
        self.dropped = 0
        self.spilled = 0
        self._events: List[TraceEvent] = []
        self._warned = False
        self._spill_file: Optional[TextIO] = None

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append an event; past capacity, spill to JSONL or count the drop."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._events) >= self.capacity:
            self._overflow(TraceEvent(time=time, kind=kind, fields=fields))
            return
        self._events.append(TraceEvent(time=time, kind=kind, fields=fields))

    def _overflow(self, event: TraceEvent) -> None:
        """Handle one event that arrived with the in-memory buffer full."""
        if not self._warned:
            self._warned = True
            sink = (
                f"spilling to {self.spill_path}"
                if self.spill_path is not None
                else "counting drops (set spill_path to keep them)"
            )
            warnings.warn(
                f"TraceRecorder capacity {self.capacity} reached; {sink}",
                RuntimeWarning,
                stacklevel=3,
            )
        if self.spill_path is None:
            self.dropped += 1
            return
        if self._spill_file is None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._spill_file = self.spill_path.open("a")
        self._spill_file.write(
            json.dumps(event.to_dict(), sort_keys=True, default=repr) + "\n"
        )
        self.spilled += 1

    def close(self) -> None:
        """Flush and close the spill file, if one was opened."""
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events whose kind equals ``kind``."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return len(self.of_kind(kind))

    def where(self, kind: str, **match: Any) -> List[TraceEvent]:
        """Events of ``kind`` whose fields contain every ``match`` item."""
        out = []
        for event in self.of_kind(kind):
            if all(event.get(k) == v for k, v in match.items()):
                out.append(event)
        return out

    def clear(self) -> None:
        """Drop all recorded events and reset overflow accounting."""
        self._events.clear()
        self.dropped = 0
        self.spilled = 0
        self._warned = False
