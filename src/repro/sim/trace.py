"""Structured event tracing.

Tests and examples use the trace to assert on *what happened* (deliveries,
detections, revocations) without reaching into private state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded happening: a kind, a timestamp, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Dict-style access to the event's fields."""
        return self.fields.get(key, default)


class TraceRecorder:
    """Append-only in-memory trace with simple filtering."""

    def __init__(self, *, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[TraceEvent] = []

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append an event (no-op when disabled or at capacity)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._events) >= self.capacity:
            return
        self._events.append(TraceEvent(time=time, kind=kind, fields=fields))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events whose kind equals ``kind``."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return len(self.of_kind(kind))

    def where(self, kind: str, **match: Any) -> List[TraceEvent]:
        """Events of ``kind`` whose fields contain every ``match`` item."""
        out = []
        for event in self.of_kind(kind):
            if all(event.get(k) == v for k, v in match.items()):
                out.append(event)
        return out

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
