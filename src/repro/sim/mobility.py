"""Node mobility: the random-waypoint model.

Section 2.1 names mobility as one way to make detecting IDs harder to
unmask ("if sensor nodes have certain mobility ... it will become even
more difficult for the attacker to determine the source of a request
message"). This module provides the standard random-waypoint walker over
the simulation clock: pick a destination uniformly in the field, move at a
speed drawn from [v_min, v_max], pause, repeat. Positions update through
:meth:`repro.sim.network.Network.update_position`, keeping neighbor
queries consistent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.sim.clock import seconds_to_cycles
from repro.sim.network import Network
from repro.sim.node import Node
from repro.utils.geometry import Point, distance


@dataclass(frozen=True)
class WaypointConfig:
    """Random-waypoint parameters.

    Attributes:
        field_width_ft / field_height_ft: movement bounds.
        speed_min_ft_s / speed_max_ft_s: uniform speed range.
        pause_s: dwell time at each waypoint.
        step_s: position-update granularity.
    """

    field_width_ft: float = 1_000.0
    field_height_ft: float = 1_000.0
    speed_min_ft_s: float = 1.0
    speed_max_ft_s: float = 5.0
    pause_s: float = 0.0
    step_s: float = 1.0

    def __post_init__(self) -> None:
        if self.field_width_ft <= 0 or self.field_height_ft <= 0:
            raise ConfigurationError("field dimensions must be positive")
        if not 0 < self.speed_min_ft_s <= self.speed_max_ft_s:
            raise ConfigurationError(
                "need 0 < speed_min <= speed_max, got "
                f"[{self.speed_min_ft_s}, {self.speed_max_ft_s}]"
            )
        if self.pause_s < 0 or self.step_s <= 0:
            raise ConfigurationError("pause_s must be >= 0 and step_s > 0")


class RandomWaypointWalker:
    """Drives one node along random waypoints on the engine clock."""

    def __init__(
        self,
        network: Network,
        node: Node,
        config: WaypointConfig,
        rng: random.Random,
    ) -> None:
        self.network = network
        self.node = node
        self.config = config
        self.rng = rng
        self.waypoints_visited = 0
        self._target: Optional[Point] = None
        self._speed_ft_s = 0.0
        self._running = False

    def start(self) -> None:
        """Begin walking; schedules the first movement step."""
        if self._running:
            return
        self._running = True
        self._pick_waypoint()
        self._schedule_step()

    def stop(self) -> None:
        """Freeze the node at its current position."""
        self._running = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pick_waypoint(self) -> None:
        self._target = Point(
            self.rng.uniform(0.0, self.config.field_width_ft),
            self.rng.uniform(0.0, self.config.field_height_ft),
        )
        self._speed_ft_s = self.rng.uniform(
            self.config.speed_min_ft_s, self.config.speed_max_ft_s
        )

    def _schedule_step(self, delay_s: Optional[float] = None) -> None:
        if not self._running:
            return
        step = self.config.step_s if delay_s is None else delay_s
        self.network.engine.schedule_in(
            seconds_to_cycles(step), self._step, label="waypoint-step"
        )

    def _step(self) -> None:
        if not self._running or self._target is None:
            return
        pos = self.node.position
        remaining = distance(pos, self._target)
        stride = self._speed_ft_s * self.config.step_s
        if remaining <= stride:
            self.network.update_position(self.node, self._target)
            self.waypoints_visited += 1
            self._pick_waypoint()
            self._schedule_step(self.config.pause_s + self.config.step_s)
            return
        frac = stride / remaining
        new_pos = Point(
            pos.x + (self._target.x - pos.x) * frac,
            pos.y + (self._target.y - pos.y) * frac,
        )
        self.network.update_position(self.node, new_pos)
        self._schedule_step()


def start_walkers(
    network: Network,
    nodes: List[Node],
    config: WaypointConfig,
    rng: random.Random,
) -> List[RandomWaypointWalker]:
    """Convenience: start one walker per node; returns the walkers."""
    walkers = []
    for node in nodes:
        walker = RandomWaypointWalker(network, node, config, rng)
        walker.start()
        walkers.append(walker)
    return walkers
