"""Lightweight phase timers and hot-path counters for the pipeline.

The end-to-end pipeline spends its time in a handful of phases (build,
collusion, detection, notice dissemination, localization, metrics); this
module provides the minimal instrumentation to see *where* — wall-clock
per phase plus integer counters for the operations the spatial index is
meant to reduce (distance evaluations, grid cells visited, spatial
queries, deliveries, probes).

Since the observability layer landed, :class:`PhaseProfile` is a *view*
over a private :class:`repro.obs.metrics.MetricsRegistry`: phase times
live in ``profile_phase_seconds{phase=...}`` gauges and counters in
``profile_count{name=...}`` gauges, while the historical dict-shaped API
(``phase_seconds``, ``counters``, ``to_dict``, :func:`merge_profiles`)
is preserved as properties, so ``--profile`` consumers keep working
unchanged. The profile registry is deliberately *not* the pipeline's
observability registry — wall-clock data is nondeterministic and must
stay out of the mergeable metrics stream (see
:mod:`repro.obs.metrics`).

Design constraints:

- **Cheap enough to stay on.** A counter bump is one gauge increment on
  a cached handle; a phase is two ``perf_counter`` calls. The pipeline
  keeps a :class:`PhaseProfile` unconditionally, so profiles are
  available without a special build.
- **Mergeable across processes.** Profiles serialize to plain dicts
  (:meth:`PhaseProfile.to_dict`) and :func:`merge_profiles` sums any
  number of them, which is how
  :class:`repro.experiments.runner.ExperimentRunner` aggregates worker
  profiles behind the CLI ``--profile`` flag.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import tag_active_span

#: Registry metric names backing a :class:`PhaseProfile`.
PHASE_METRIC = "profile_phase_seconds"
COUNT_METRIC = "profile_count"


@dataclass
class NetworkCounters:
    """Hot-path operation counts maintained by :class:`~repro.sim.network.Network`.

    Attributes:
        distance_evals: Euclidean distance computations performed by
            spatial queries and reference scans.
        grid_cells_visited: non-empty grid buckets inspected by
            ``nodes_within`` / ``beacons_within``.
        spatial_queries: grid-accelerated range queries issued.
        deliveries: packets actually handed to a receiving node.
    """

    distance_evals: int = 0
    grid_cells_visited: int = 0
    spatial_queries: int = 0
    deliveries: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-ready)."""
        return {
            "distance_evals": self.distance_evals,
            "grid_cells_visited": self.grid_cells_visited,
            "spatial_queries": self.spatial_queries,
            "deliveries": self.deliveries,
        }

    def record_metrics(self, registry: MetricsRegistry) -> None:
        """Flush the accumulated counts into ``registry`` (end of trial)."""
        registry.counter("net_distance_evals_total").inc(self.distance_evals)
        registry.counter("net_grid_cells_visited_total").inc(self.grid_cells_visited)
        registry.counter("net_spatial_queries_total").inc(self.spatial_queries)
        registry.counter("net_deliveries_total").inc(self.deliveries)


@dataclass
class ChannelCounters:
    """Per-reliable-channel delivery accounting (ARQ observability).

    Maintained by :class:`repro.sim.reliable.ReliableChannel` and folded
    into the pipeline profile snapshot under a channel-name prefix, so a
    ``--profile`` run shows how much retransmission work the §3.2
    delivery assumption actually cost.

    Attributes:
        sends: logical messages handed to the channel.
        attempts: physical transmission attempts (first tries + retries).
        retries: attempts beyond the first, summed over sends.
        delivered: messages that got through within the retry budget.
        failed: messages whose budget was exhausted.
    """

    sends: int = 0
    attempts: int = 0
    retries: int = 0
    delivered: int = 0
    failed: int = 0

    def to_dict(self, *, prefix: str = "") -> Dict[str, int]:
        """The counters as a plain dict, optionally key-prefixed."""
        return {
            f"{prefix}sends": self.sends,
            f"{prefix}attempts": self.attempts,
            f"{prefix}retries": self.retries,
            f"{prefix}delivered": self.delivered,
            f"{prefix}failed": self.failed,
        }

    def record_metrics(self, registry: MetricsRegistry, *, channel: str) -> None:
        """Flush into ``registry`` as ``arq_*_total{channel=...}`` series."""
        registry.counter("arq_sends_total", channel=channel).inc(self.sends)
        registry.counter("arq_attempts_total", channel=channel).inc(self.attempts)
        registry.counter("arq_retries_total", channel=channel).inc(self.retries)
        registry.counter("arq_delivered_total", channel=channel).inc(self.delivered)
        registry.counter("arq_failed_total", channel=channel).inc(self.failed)


class PhaseProfile:
    """Accumulated wall-clock per named phase plus integer counters.

    Usage::

        profile = PhaseProfile()
        with profile.phase("detection"):
            ...                      # timed work
        profile.count("probes", 42)
        profile.to_dict()
        # {"phases": {"detection": 0.93}, "counters": {"probes": 42}}

    The data lives in a private metrics registry (:attr:`registry`);
    ``phase_seconds`` and ``counters`` are dict *views* kept for
    backward compatibility (assignment replaces the backing series).
    A phase body that raises tags the exception with the phase name
    (see :func:`repro.obs.spans.tag_active_span`), so the experiment
    runner can report where a trial died even with spans disabled.
    """

    def __init__(
        self,
        phase_seconds: Optional[Mapping[str, float]] = None,
        counters: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.registry = MetricsRegistry()
        if phase_seconds:
            self.phase_seconds = dict(phase_seconds)
        if counters:
            self.counters = dict(counters)

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Accumulated wall seconds per phase name (a fresh dict)."""
        return {
            labels[0][1]: instrument.value
            for name, labels, instrument in self.registry.series()
            if name == PHASE_METRIC
        }

    @phase_seconds.setter
    def phase_seconds(self, values: Mapping[str, float]) -> None:
        self.registry.clear_name(PHASE_METRIC)
        for name, seconds in values.items():
            self.registry.gauge(PHASE_METRIC, phase=name).set(float(seconds))

    @property
    def counters(self) -> Dict[str, int]:
        """Accumulated counter values per name (a fresh dict)."""
        return {
            labels[0][1]: instrument.value
            for name, labels, instrument in self.registry.series()
            if name == COUNT_METRIC
        }

    @counters.setter
    def counters(self, values: Mapping[str, int]) -> None:
        self.registry.clear_name(COUNT_METRIC)
        for name, n in values.items():
            self.registry.gauge(COUNT_METRIC, name=name).inc(n)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entries accumulate)."""
        gauge = self.registry.gauge(PHASE_METRIC, phase=name)
        start = time.perf_counter()
        try:
            yield
        except BaseException as exc:
            tag_active_span(exc, name)
            raise
        finally:
            gauge.inc(time.perf_counter() - start)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created on first use)."""
        self.registry.gauge(COUNT_METRIC, name=name).inc(n)

    @property
    def total_seconds(self) -> float:
        """Summed wall clock across all recorded phases."""
        return sum(self.phase_seconds.values())

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot: ``{"phases": ..., "counters": ...}``."""
        return {
            "phases": self.phase_seconds,
            "counters": self.counters,
        }


def merge_profiles(profiles: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum per-trial profile dicts into one aggregate.

    Args:
        profiles: dicts shaped like :meth:`PhaseProfile.to_dict` output.

    Returns:
        ``{"trials": n, "phases": {...}, "counters": {...}}`` with phase
        seconds and counters summed across inputs. Zero inputs yield the
        empty aggregate (``trials == 0``).
    """
    phases: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    trials = 0
    for profile in profiles:
        trials += 1
        for name, seconds in (profile.get("phases") or {}).items():
            phases[name] = phases.get(name, 0.0) + float(seconds)
        for name, n in (profile.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(n)
    return {"trials": trials, "phases": phases, "counters": counters}
