"""Lightweight phase timers and hot-path counters for the pipeline.

The end-to-end pipeline spends its time in a handful of phases (build,
collusion, detection, notice dissemination, localization, metrics); this
module provides the minimal instrumentation to see *where* — wall-clock
per phase plus integer counters for the operations the spatial index is
meant to reduce (distance evaluations, grid cells visited, spatial
queries, deliveries, probes).

Design constraints:

- **Cheap enough to stay on.** A counter bump is one attribute
  increment; a phase is two ``perf_counter`` calls. The pipeline keeps a
  :class:`PhaseProfile` unconditionally, so profiles are available
  without a special build.
- **Mergeable across processes.** Profiles serialize to plain dicts
  (:meth:`PhaseProfile.to_dict`) and :func:`merge_profiles` sums any
  number of them, which is how
  :class:`repro.experiments.runner.ExperimentRunner` aggregates worker
  profiles behind the CLI ``--profile`` flag.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Mapping


@dataclass
class NetworkCounters:
    """Hot-path operation counts maintained by :class:`~repro.sim.network.Network`.

    Attributes:
        distance_evals: Euclidean distance computations performed by
            spatial queries and reference scans.
        grid_cells_visited: non-empty grid buckets inspected by
            ``nodes_within`` / ``beacons_within``.
        spatial_queries: grid-accelerated range queries issued.
        deliveries: packets actually handed to a receiving node.
    """

    distance_evals: int = 0
    grid_cells_visited: int = 0
    spatial_queries: int = 0
    deliveries: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-ready)."""
        return {
            "distance_evals": self.distance_evals,
            "grid_cells_visited": self.grid_cells_visited,
            "spatial_queries": self.spatial_queries,
            "deliveries": self.deliveries,
        }


@dataclass
class ChannelCounters:
    """Per-reliable-channel delivery accounting (ARQ observability).

    Maintained by :class:`repro.sim.reliable.ReliableChannel` and folded
    into the pipeline profile snapshot under a channel-name prefix, so a
    ``--profile`` run shows how much retransmission work the §3.2
    delivery assumption actually cost.

    Attributes:
        sends: logical messages handed to the channel.
        attempts: physical transmission attempts (first tries + retries).
        retries: attempts beyond the first, summed over sends.
        delivered: messages that got through within the retry budget.
        failed: messages whose budget was exhausted.
    """

    sends: int = 0
    attempts: int = 0
    retries: int = 0
    delivered: int = 0
    failed: int = 0

    def to_dict(self, *, prefix: str = "") -> Dict[str, int]:
        """The counters as a plain dict, optionally key-prefixed."""
        return {
            f"{prefix}sends": self.sends,
            f"{prefix}attempts": self.attempts,
            f"{prefix}retries": self.retries,
            f"{prefix}delivered": self.delivered,
            f"{prefix}failed": self.failed,
        }


@dataclass
class PhaseProfile:
    """Accumulated wall-clock per named phase plus integer counters.

    Usage::

        profile = PhaseProfile()
        with profile.phase("detection"):
            ...                      # timed work
        profile.count("probes", 42)
        profile.to_dict()
        # {"phases": {"detection": 0.93}, "counters": {"probes": 42}}
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entries accumulate)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    @property
    def total_seconds(self) -> float:
        """Summed wall clock across all recorded phases."""
        return sum(self.phase_seconds.values())

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot: ``{"phases": ..., "counters": ...}``."""
        return {
            "phases": dict(self.phase_seconds),
            "counters": dict(self.counters),
        }


def merge_profiles(profiles: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum per-trial profile dicts into one aggregate.

    Args:
        profiles: dicts shaped like :meth:`PhaseProfile.to_dict` output.

    Returns:
        ``{"trials": n, "phases": {...}, "counters": {...}}`` with phase
        seconds and counters summed across inputs. Zero inputs yield the
        empty aggregate (``trials == 0``).
    """
    phases: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    trials = 0
    for profile in profiles:
        trials += 1
        for name, seconds in (profile.get("phases") or {}).items():
            phases[name] = phases.get(name, 0.0) + float(seconds)
        for name, n in (profile.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(n)
    return {"trials": trials, "phases": phases, "counters": counters}
