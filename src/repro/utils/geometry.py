"""Planar geometry helpers used across the simulator and the detectors.

The paper's sensing field is a 2-D plane measured in feet; positions are
plain ``(x, y)`` pairs wrapped in an immutable :class:`Point` for readability.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple


class Point(NamedTuple):
    """An immutable 2-D location in the sensing field (feet)."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return distance(self, other)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between ``a`` and ``b``."""
    return math.hypot(a.x - b.x, a.y - b.y)


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance (cheaper; useful for comparisons)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """The point halfway between ``a`` and ``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of ``points``.

    Raises:
        ValueError: if ``points`` is empty.
    """
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return Point(xs / n, ys / n)


def random_point_in_rect(rng, width: float, height: float) -> Point:
    """A uniform random point inside ``[0, width] x [0, height]``.

    Args:
        rng: any object with a ``uniform(low, high)`` method (e.g.
            :class:`random.Random` or a ``numpy`` generator adapter).
        width: field width.
        height: field height.
    """
    return Point(rng.uniform(0.0, width), rng.uniform(0.0, height))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))
