"""Small statistics toolkit: empirical CDFs and exact binomial terms.

The paper's analysis (Sections 2.3 and 3.2) is built almost entirely from
binomial probabilities and an empirical round-trip-time distribution, so we
keep exact, dependency-light implementations here.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence


class Ecdf:
    """Empirical cumulative distribution function over a fixed sample.

    Mirrors the paper's use of the measured RTT distribution (Figure 4):
    exposes the CDF value at any point plus the support bounds ``x_min``
    (largest x with F(x) = 0) and ``x_max`` (smallest x with F(x) = 1).
    """

    def __init__(self, samples: Iterable[float]) -> None:
        data = sorted(float(s) for s in samples)
        if not data:
            raise ValueError("Ecdf requires at least one sample")
        self._data: List[float] = data

    @property
    def n(self) -> int:
        """Number of samples backing the ECDF."""
        return len(self._data)

    @property
    def x_min(self) -> float:
        """The minimum observed value; F(x) = 0 for all x < x_min."""
        return self._data[0]

    @property
    def x_max(self) -> float:
        """The maximum observed value; F(x) = 1 for all x >= x_max."""
        return self._data[-1]

    def __call__(self, x: float) -> float:
        """F(x): fraction of samples <= x."""
        return bisect.bisect_right(self._data, x) / len(self._data)

    def quantile(self, q: float) -> float:
        """Inverse CDF: the smallest sample value v with F(v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        if q == 0.0:
            return self._data[0]
        index = math.ceil(q * len(self._data)) - 1
        return self._data[index]

    def support_width(self) -> float:
        """x_max - x_min: the width of the observed support."""
        return self.x_max - self.x_min

    def curve(self) -> List[tuple]:
        """The full (x, F(x)) step curve, one point per distinct sample."""
        points = []
        n = len(self._data)
        previous = None
        for i, x in enumerate(self._data):
            if x != previous:
                # overwrite duplicates with the highest step
                points.append((x, (i + 1) / n))
                previous = x
            else:
                points[-1] = (x, (i + 1) / n)
        return points


def binomial_pmf(k: int, n: int, p: float) -> float:
    """P[X = k] for X ~ Binomial(n, p), computed exactly.

    Uses ``math.comb`` so it stays numerically exact for the small n used in
    the paper's analysis (N_c, N_a, N_w are all at most a few hundred).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if k < 0 or k > n:
        return 0.0
    # 0**0 == 1 in Python, which is exactly the convention we need here.
    return math.comb(n, k) * (p**k) * ((1.0 - p) ** (n - k))


def binomial_cdf(k: int, n: int, p: float) -> float:
    """P[X <= k] for X ~ Binomial(n, p)."""
    if k < 0:
        return 0.0
    upper = min(k, n)
    return math.fsum(binomial_pmf(i, n, p) for i in range(upper + 1))


def binomial_sf(k: int, n: int, p: float) -> float:
    """P[X > k] for X ~ Binomial(n, p) (the survival function).

    This is the paper's ``P_d = 1 - sum_{i=0}^{tau} P(i)`` form.
    """
    return max(0.0, 1.0 - binomial_cdf(k, n, p))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return math.fsum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Population variance; raises on an empty sequence."""
    mu = mean(values)
    return math.fsum((v - mu) ** 2 for v in values) / len(values)
