"""Argument validation helpers.

These raise :class:`repro.errors.ConfigurationError` with a consistent
message format, so configuration mistakes surface at construction time
instead of as silent mis-simulation.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Alias of :func:`check_probability` for values that are fractions."""
    return check_probability(value, name)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_int_in_range(value: int, name: str, low: int, high: int | None = None) -> int:
    """Validate that ``value`` is an int within ``[low, high]`` and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < low or (high is not None and value > high):
        bound = f">= {low}" if high is None else f"in [{low}, {high}]"
        raise ConfigurationError(f"{name} must be {bound}, got {value!r}")
    return value
