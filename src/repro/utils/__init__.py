"""Shared utilities: geometry, empirical statistics, and validation helpers."""

from repro.utils.geometry import (
    Point,
    centroid,
    clamp,
    distance,
    distance_sq,
    midpoint,
    random_point_in_rect,
)
from repro.utils.stats import Ecdf, binomial_pmf, binomial_sf, mean, variance
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "Point",
    "centroid",
    "distance",
    "distance_sq",
    "midpoint",
    "random_point_in_rect",
    "clamp",
    "Ecdf",
    "binomial_pmf",
    "binomial_sf",
    "mean",
    "variance",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
