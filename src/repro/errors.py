"""Exception hierarchy shared by every ``repro`` subpackage.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to discriminate on the concrete class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ScheduleError",
    "DeliveryError",
    "BudgetExceededError",
    "ExperimentError",
    "CryptoError",
    "KeyAgreementError",
    "AuthenticationError",
    "LocalizationError",
    "InsufficientReferencesError",
    "SolverError",
    "DetectionError",
    "CalibrationError",
    "RevocationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class ScheduleError(SimulationError):
    """An event was scheduled in the past or after the engine stopped."""


class DeliveryError(SimulationError):
    """A packet could not be delivered (unknown node, out of range, or an
    ARQ retry budget was exhausted)."""


class BudgetExceededError(SimulationError):
    """A simulation exceeded its configured event budget.

    Raised by :class:`repro.sim.engine.Engine` when ``event_budget`` is
    set and a run attempts to execute more events — the backstop that
    turns a fault-induced event storm (e.g. a duplication cascade) into
    a structured, catchable failure instead of an unbounded run.
    """


class ExperimentError(ReproError):
    """An experiment task failed in a way the runner could not recover."""


class CryptoError(ReproError):
    """Base class for key-management and authentication failures."""


class KeyAgreementError(CryptoError):
    """Two nodes could not establish a pairwise key."""


class AuthenticationError(CryptoError):
    """A packet failed its message-authentication-code check."""


class LocalizationError(ReproError):
    """Base class for localization-substrate failures."""


class InsufficientReferencesError(LocalizationError):
    """Too few location references to solve for a position."""


class SolverError(LocalizationError):
    """The position solver failed to converge to a solution."""


class DetectionError(ReproError):
    """Base class for failures in the malicious-beacon detection suite."""


class CalibrationError(DetectionError):
    """The RTT detector was used before calibration, or calibration failed."""


class RevocationError(ReproError):
    """The base-station revocation protocol was misused."""
