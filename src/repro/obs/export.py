"""Telemetry exporters: Prometheus text, Chrome/Perfetto trace, JSONL.

Three stdlib-only serializers over the snapshot/span/event shapes the
rest of :mod:`repro.obs` produces:

- :func:`prometheus_text` — a registry snapshot (or a
  :func:`repro.obs.metrics.merge_snapshots` result) in the Prometheus
  exposition format, with histograms emitted as cumulative
  ``_bucket``/``_sum``/``_count`` series;
- :func:`chrome_trace` — per-trial span lists as a Chrome
  ``chrome://tracing`` / Perfetto-loadable JSON object (one process per
  trial, complete ``"X"`` events in microseconds);
- :func:`write_events_jsonl` — the unified trace-event stream, one JSON
  object per line, each stamped with its trial key.

All outputs are validated structurally by ``tools/check_telemetry.py``
(run in CI on a real one-trial pipeline).

Paper section: §4 (exporting the evaluation's telemetry)
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Union

PathLike = Union[str, pathlib.Path]


def _format_value(value: Any) -> str:
    """Prometheus sample value: ints bare, floats via repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _split_series_key(key: str) -> tuple:
    """``name{labels}`` -> (name, "labels") ("" when unlabelled)."""
    if "{" not in key:
        return key, ""
    name, _, rest = key.partition("{")
    return name, rest[:-1]


def _with_label(labels: str, extra: str) -> str:
    """Append one ``k="v"`` item to a (possibly empty) label body."""
    return f"{labels},{extra}" if labels else extra


def _format_le(bound: float) -> str:
    """A bucket bound as Prometheus spells it (ints without '.0')."""
    return str(int(bound)) if float(bound).is_integer() else repr(float(bound))


def prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines: List[str] = []
    typed: set = set()

    def type_line(key: str, kind: str) -> None:
        name, _ = _split_series_key(key)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in (snapshot.get("counters") or {}).items():
        type_line(key, "counter")
        lines.append(f"{key} {_format_value(value)}")
    for key, value in (snapshot.get("gauges") or {}).items():
        type_line(key, "gauge")
        lines.append(f"{key} {_format_value(value)}")
    for key, hist in (snapshot.get("histograms") or {}).items():
        name, labels = _split_series_key(key)
        type_line(key, "histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            body = _with_label(labels, f'le="{_format_le(bound)}"')
            lines.append(f"{name}_bucket{{{body}}} {cumulative}")
        cumulative += hist["counts"][-1]
        body = _with_label(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{{{body}}} {cumulative}")
        sum_key = f"{name}_sum{{{labels}}}" if labels else f"{name}_sum"
        count_key = f"{name}_count{{{labels}}}" if labels else f"{name}_count"
        lines.append(f"{sum_key} {_format_value(hist['sum'])}")
        lines.append(f"{count_key} {int(hist['count'])}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: PathLike, snapshot: Mapping[str, Any]) -> pathlib.Path:
    """Write :func:`prometheus_text` output to ``path`` (parents created)."""
    destination = pathlib.Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(prometheus_text(snapshot))
    return destination


def chrome_trace(trials: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Span timelines as a Chrome-trace/Perfetto JSON object.

    Args:
        trials: dicts with ``spans`` (list of completed-span dicts from
            :class:`repro.obs.spans.Observability`) plus optional
            ``key``/``index`` used to name and number the trace process.

    Each span's thread lane is its *root* span's id, so concurrent
    top-level spans (the runner's per-task spans under ``--workers``)
    get their own rows instead of illegally overlapping in one lane.
    Namespaced string span ids (from worker processes; see
    :mod:`repro.obs.live`) map to integer lanes in deterministic
    first-seen order.
    """
    events: List[Dict[str, Any]] = []
    for trial in trials:
        lanes: Dict[Any, int] = {}

        def lane_of(root: Any) -> int:
            if isinstance(root, int):
                return root
            if root not in lanes:
                lanes[root] = 10_000 + len(lanes)
            return lanes[root]

        pid = int(trial.get("index", 0)) + 1
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": str(trial.get("key", f"trial:{pid}"))},
            }
        )
        spans = trial.get("spans") or []
        parents = {span["id"]: span.get("parent", 0) for span in spans}
        roots: Dict[Any, Any] = {}

        def root_of(span_id: Any) -> Any:
            seen = []
            while span_id not in roots and parents.get(span_id, 0) != 0:
                seen.append(span_id)
                span_id = parents[span_id]
            root = roots.get(span_id, span_id)
            for walked in seen:
                roots[walked] = root
            return root

        for span in spans:
            args = {
                "sim_t0": span.get("t0_sim"),
                "sim_t1": span.get("t1_sim"),
                "depth": span.get("depth"),
            }
            args.update(span.get("attrs") or {})
            events.append(
                {
                    "name": span["name"],
                    "cat": "span",
                    "ph": "X",
                    "ts": round(float(span["t0_wall_s"]) * 1e6, 3),
                    "dur": round(float(span["dur_wall_s"]) * 1e6, 3),
                    "pid": pid,
                    "tid": lane_of(root_of(span["id"])),
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: PathLike, trials: Iterable[Mapping[str, Any]]
) -> pathlib.Path:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    destination = pathlib.Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(chrome_trace(trials), indent=None, sort_keys=True) + "\n"
    )
    return destination


def events_jsonl_lines(trials: Iterable[Mapping[str, Any]]) -> List[str]:
    """The unified event stream as JSONL lines (trial key stamped in)."""
    lines: List[str] = []
    for trial in trials:
        key = str(trial.get("key", f"trial:{trial.get('index', 0)}"))
        for event in trial.get("events") or []:
            record = {"trial": key}
            record.update(event)
            lines.append(json.dumps(record, sort_keys=True, default=repr))
    return lines


def write_events_jsonl(
    path: PathLike, trials: Iterable[Mapping[str, Any]]
) -> pathlib.Path:
    """Write :func:`events_jsonl_lines` to ``path``, one event per line."""
    destination = pathlib.Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    lines = events_jsonl_lines(trials)
    destination.write_text("\n".join(lines) + ("\n" if lines else ""))
    return destination
