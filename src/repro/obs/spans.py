"""Hierarchical tracing spans over the simulation's dual timeline.

A span is one named region of work — a trial, a pipeline phase, a
runner task — carrying *both* clocks: wall time (``perf_counter``, for
Chrome/Perfetto timelines and overhead analysis) and simulation time
(engine cycles, for correlating with protocol events). Spans nest; the
innermost open span names "where we were", which is what the experiment
runner attaches to a :class:`~repro.experiments.runner.TrialError` when
a trial dies mid-flight.

Span begin/end markers are recorded into the existing
:class:`repro.sim.trace.TraceRecorder` stream under a unified schema —
kinds ``span.begin`` / ``span.end`` with ``span``/``id``/``parent``/
``depth`` fields — so protocol events (deliveries, alerts, revocations)
and timing structure interleave in one exportable event log.

Nothing here draws randomness; an :class:`Observability` attached to a
pipeline leaves every simulated result bit-identical (asserted in
``tests/core/test_pipeline_observe.py``).

Paper section: §4 (the evaluation phases the spans delimit)
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.config import ObserveConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder

#: Attribute set on an exception by the innermost failing span/phase, so
#: worker-side error capture can report where a trial died. First tagger
#: wins — the innermost region.
ACTIVE_SPAN_ATTR = "_repro_active_span"

#: TraceRecorder event kinds of the unified span schema.
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"


def tag_active_span(exc: BaseException, name: str) -> None:
    """Attach ``name`` to ``exc`` unless an inner region already did."""
    if not hasattr(exc, ACTIVE_SPAN_ATTR):
        setattr(exc, ACTIVE_SPAN_ATTR, name)


def active_span_of(exc: BaseException) -> str:
    """The innermost span/phase name tagged onto ``exc`` ('' if none)."""
    return getattr(exc, ACTIVE_SPAN_ATTR, "")


@dataclass
class _OpenSpan:
    """Book-keeping for a span that has begun but not ended."""

    name: str
    span_id: int
    parent_id: int
    depth: int
    t0_wall: float
    t0_sim: float
    attrs: Dict[str, Any]


class Observability:
    """Per-trial observability context: one registry plus a span stack.

    Args:
        config: feature switches (spans/metrics/histograms); defaults on.
        registry: the metrics registry to use (fresh one by default).
        trace: recorder span begin/end events are appended to; by
            default a disabled recorder (spans still complete and are
            exportable — only the event stream is suppressed).
        sim_clock: zero-argument callable returning current simulation
            time; the pipeline passes ``engine.now``.

    Completed spans accumulate in :attr:`spans` as plain dicts (wall
    offsets relative to this object's creation), ready for the Chrome
    trace exporter.
    """

    def __init__(
        self,
        config: Optional[ObserveConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config if config is not None else ObserveConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.sim_clock = sim_clock if sim_clock is not None else (lambda: 0.0)
        self.spans: List[Dict[str, Any]] = []
        self._wall0 = time.perf_counter()
        self._stack: List[_OpenSpan] = []
        self._ids = itertools.count(1)

    @property
    def current_span(self) -> Optional[str]:
        """Name of the innermost open span, or None outside any span."""
        return self._stack[-1].name if self._stack else None

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Open a span for the duration of the ``with`` block.

        Records ``span.begin``/``span.end`` trace events (at simulation
        time), appends the completed span to :attr:`spans`, and — when
        the block raises — tags the exception with this span's name
        unless an inner span already claimed it.
        """
        open_span = _OpenSpan(
            name=name,
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else 0,
            depth=len(self._stack),
            t0_wall=time.perf_counter(),
            t0_sim=self.sim_clock(),
            attrs=dict(attrs),
        )
        self.trace.record(
            open_span.t0_sim,
            SPAN_BEGIN,
            span=name,
            id=open_span.span_id,
            parent=open_span.parent_id,
            depth=open_span.depth,
            **open_span.attrs,
        )
        self._stack.append(open_span)
        try:
            yield
        except BaseException as exc:
            tag_active_span(exc, name)
            raise
        finally:
            self._stack.pop()
            t1_wall = time.perf_counter()
            t1_sim = self.sim_clock()
            self.trace.record(
                t1_sim,
                SPAN_END,
                span=name,
                id=open_span.span_id,
                parent=open_span.parent_id,
                depth=open_span.depth,
                wall_s=t1_wall - open_span.t0_wall,
            )
            self.spans.append(
                {
                    "name": name,
                    "id": open_span.span_id,
                    "parent": open_span.parent_id,
                    "depth": open_span.depth,
                    "t0_wall_s": open_span.t0_wall - self._wall0,
                    "dur_wall_s": t1_wall - open_span.t0_wall,
                    "t0_sim": open_span.t0_sim,
                    "t1_sim": t1_sim,
                    "attrs": open_span.attrs,
                }
            )

    def telemetry(self) -> Dict[str, Any]:
        """Registry snapshot plus completed spans, as one JSON-ready dict."""
        return {
            "registry": self.registry.snapshot(),
            "spans": [dict(span) for span in self.spans],
        }
