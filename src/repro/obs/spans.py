"""Hierarchical tracing spans over the simulation's dual timeline.

A span is one named region of work — a trial, a pipeline phase, a
runner task — carrying *both* clocks: wall time (``perf_counter``, for
Chrome/Perfetto timelines and overhead analysis) and simulation time
(engine cycles, for correlating with protocol events). Spans nest; the
innermost open span names "where we were", which is what the experiment
runner attaches to a :class:`~repro.experiments.runner.TrialError` when
a trial dies mid-flight.

Span begin/end markers are recorded into the existing
:class:`repro.sim.trace.TraceRecorder` stream under a unified schema —
kinds ``span.begin`` / ``span.end`` with ``span``/``id``/``parent``/
``depth`` fields — so protocol events (deliveries, alerts, revocations)
and timing structure interleave in one exportable event log.

Span ids are plain integers (``1, 2, ...``) in a standalone process.
When a process-level namespace is set
(:func:`repro.obs.live.set_process_span_namespace`, as queue workers do
with their worker id) they become strings ``"w0:1", "w0:2", ...`` —
still deterministic per process, but globally unique across a fleet, so
stitched multi-process traces never collide. An ambient
:class:`repro.obs.live.TraceContext` additionally stamps root spans
with ``trace_id``/``remote_parent`` attrs for cross-process stitching.

Nothing here draws randomness; an :class:`Observability` attached to a
pipeline leaves every simulated result bit-identical (asserted in
``tests/core/test_pipeline_observe.py``).

Paper section: §4 (the evaluation phases the spans delimit)
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.obs.config import ObserveConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder

#: A span id: a plain int, or ``"{namespace}:{n}"`` under a namespace.
SpanId = Union[int, str]

#: Attribute set on an exception by the innermost failing span/phase, so
#: worker-side error capture can report where a trial died. First tagger
#: wins — the innermost region.
ACTIVE_SPAN_ATTR = "_repro_active_span"

#: TraceRecorder event kinds of the unified span schema.
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"


def tag_active_span(exc: BaseException, name: str) -> None:
    """Attach ``name`` to ``exc`` unless an inner region already did."""
    if not hasattr(exc, ACTIVE_SPAN_ATTR):
        setattr(exc, ACTIVE_SPAN_ATTR, name)


def active_span_of(exc: BaseException) -> str:
    """The innermost span/phase name tagged onto ``exc`` ('' if none)."""
    return getattr(exc, ACTIVE_SPAN_ATTR, "")


@dataclass
class _OpenSpan:
    """Book-keeping for a span that has begun but not ended."""

    name: str
    span_id: SpanId
    parent_id: SpanId
    depth: int
    t0_wall: float
    t0_sim: float
    attrs: Dict[str, Any]


class Observability:
    """Per-trial observability context: one registry plus a span stack.

    Args:
        config: feature switches (spans/metrics/histograms); defaults on.
        registry: the metrics registry to use (fresh one by default).
        trace: recorder span begin/end events are appended to; by
            default a disabled recorder (spans still complete and are
            exportable — only the event stream is suppressed).
        sim_clock: zero-argument callable returning current simulation
            time; the pipeline passes ``engine.now``.
        namespace: span-id prefix; defaults to the process-level
            namespace (:func:`repro.obs.live.process_span_namespace`).
            When set, span ids are strings ``"{namespace}:{n}"`` —
            globally unique across a worker fleet.
        trace_context: ambient cross-process trace reference; defaults
            to :func:`repro.obs.live.process_trace_context`. When set,
            root spans carry ``trace_id`` (and ``remote_parent`` when
            the context has a parent) in their attrs.

    Completed spans accumulate in :attr:`spans` as plain dicts (wall
    offsets relative to this object's creation; the absolute anchor is
    exported as ``wall0_epoch`` by :meth:`telemetry`), ready for the
    Chrome trace exporter and ``tools/stitch_trace.py``.
    """

    def __init__(
        self,
        config: Optional[ObserveConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        sim_clock: Optional[Callable[[], float]] = None,
        namespace: Optional[str] = None,
        trace_context: Optional[Any] = None,
    ) -> None:
        from repro.obs import live  # local import: live builds on spans

        self.config = config if config is not None else ObserveConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.sim_clock = sim_clock if sim_clock is not None else (lambda: 0.0)
        self.namespace = (
            namespace if namespace is not None else live.process_span_namespace()
        )
        self.trace_context = (
            trace_context
            if trace_context is not None
            else live.process_trace_context()
        )
        self.spans: List[Dict[str, Any]] = []
        self._wall0 = time.perf_counter()
        self._wall0_epoch = time.time()
        self._stack: List[_OpenSpan] = []
        # Namespaced serials are shared process-wide so a worker running
        # many trials never reuses an id; plain ints restart per trial.
        self._ids = (
            live.namespace_counter(self.namespace)
            if self.namespace
            else itertools.count(1)
        )

    def _next_id(self) -> SpanId:
        """The next span id: plain int, or namespaced string."""
        n = next(self._ids)
        return f"{self.namespace}:{n}" if self.namespace else n

    @property
    def current_span(self) -> Optional[str]:
        """Name of the innermost open span, or None outside any span."""
        return self._stack[-1].name if self._stack else None

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Open a span for the duration of the ``with`` block.

        Records ``span.begin``/``span.end`` trace events (at simulation
        time), appends the completed span to :attr:`spans`, and — when
        the block raises — tags the exception with this span's name
        unless an inner span already claimed it.
        """
        span_attrs = dict(attrs)
        if not self._stack and self.trace_context is not None:
            span_attrs.setdefault("trace_id", self.trace_context.trace_id)
            if self.trace_context.parent_span_id:
                span_attrs.setdefault(
                    "remote_parent", self.trace_context.parent_span_id
                )
        open_span = _OpenSpan(
            name=name,
            span_id=self._next_id(),
            parent_id=self._stack[-1].span_id if self._stack else 0,
            depth=len(self._stack),
            t0_wall=time.perf_counter(),
            t0_sim=self.sim_clock(),
            attrs=span_attrs,
        )
        self.trace.record(
            open_span.t0_sim,
            SPAN_BEGIN,
            span=name,
            id=open_span.span_id,
            parent=open_span.parent_id,
            depth=open_span.depth,
            **open_span.attrs,
        )
        self._stack.append(open_span)
        try:
            yield
        except BaseException as exc:
            tag_active_span(exc, name)
            raise
        finally:
            self._stack.pop()
            t1_wall = time.perf_counter()
            t1_sim = self.sim_clock()
            self.trace.record(
                t1_sim,
                SPAN_END,
                span=name,
                id=open_span.span_id,
                parent=open_span.parent_id,
                depth=open_span.depth,
                wall_s=t1_wall - open_span.t0_wall,
            )
            self.spans.append(
                {
                    "name": name,
                    "id": open_span.span_id,
                    "parent": open_span.parent_id,
                    "depth": open_span.depth,
                    "t0_wall_s": open_span.t0_wall - self._wall0,
                    "dur_wall_s": t1_wall - open_span.t0_wall,
                    "t0_sim": open_span.t0_sim,
                    "t1_sim": t1_sim,
                    "attrs": open_span.attrs,
                }
            )

    def telemetry(self) -> Dict[str, Any]:
        """Registry snapshot plus completed spans, as one JSON-ready dict.

        Under a namespace or trace context the dict additionally carries
        ``process`` (the namespace), ``trace`` (the serialized
        :class:`~repro.obs.live.TraceContext`), and ``wall0_epoch`` (the
        absolute wall-clock anchor of the spans' relative offsets) — the
        fields cross-process stitching needs. Standalone telemetry keeps
        the original two-key shape.
        """
        out: Dict[str, Any] = {
            "registry": self.registry.snapshot(),
            "spans": [dict(span) for span in self.spans],
        }
        if self.namespace is not None:
            out["process"] = self.namespace
            out["wall0_epoch"] = self._wall0_epoch
        if self.trace_context is not None:
            out["trace"] = self.trace_context.to_dict()
            out.setdefault("wall0_epoch", self._wall0_epoch)
        return out
