"""The metrics registry: named counters, gauges, and fixed-bucket histograms.

The paper's claims are counting claims — accepted/rejected alert totals
at the base station (§3.1), per-node alert/report counters, detection
events versus the wormhole detector's ``p_d`` (§2.2.1), and RTT samples
inside the calibrated ``[x_min, x_max]`` window (§2.2.2, Figure 4). The
:class:`MetricsRegistry` is the one mergeable store those counts flow
into, so a trial, a sweep, or a whole parallel Monte-Carlo run can be
summarized, exported (Prometheus text / JSON), and compared.

Determinism contract (what makes worker registries reducible):

- every instrument holds plain numbers; nothing here draws randomness
  or reads clocks, so enabling metrics never perturbs a simulation;
- :meth:`MetricsRegistry.snapshot` emits a canonical, sorted, JSON-ready
  dict — two registries with the same contents produce identical
  snapshots;
- :func:`merge_snapshots` reduces any number of snapshots
  order-insensitively: integer series sum exactly, float series sum via
  :func:`math.fsum` (exactly rounded, hence permutation-invariant),
  histogram bucket vectors add element-wise, and gauges whose name ends
  in ``_max`` (live-plane staleness gauges) reduce by max. Merging the per-trial
  snapshots of a parallel run therefore equals the serial run's merge
  bit for bit (property-tested in
  ``tests/experiments/test_runner_observe.py``).

Wall-clock data stays *out* of the registry by design: it is
nondeterministic, so it rides on spans (:mod:`repro.obs.spans`) instead.

Paper section: §3.1 (alert/report counters), §2.2.2 (RTT distributions)
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: Prometheus-compatible metric/label-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Canonical label encoding: sorted ``(name, value)`` string pairs.
LabelItems = Tuple[Tuple[str, str], ...]

Number = Union[int, float]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    """Normalize a label mapping to its canonical sorted tuple form."""
    items = []
    for key in sorted(labels):
        if not _NAME_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def format_series_key(
    name: str, labels: Union[LabelItems, Mapping[str, Any]]
) -> str:
    """The canonical series key, e.g. ``alerts_total{accepted="true"}``.

    This is exactly the Prometheus exposition spelling, so snapshot keys
    double as export lines. ``labels`` may be a mapping or the canonical
    sorted ``(name, value)`` tuple form.
    """
    if isinstance(labels, Mapping):
        labels = _label_items(labels)
    if not labels:
        return name
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return f"{name}{{{body}}}"


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` ascending bucket upper bounds: start, start+width, ...

    Fixed, data-independent bounds are what make histogram merges exact;
    never derive bounds from observed data.
    """
    if width <= 0 or count < 1:
        raise ConfigurationError(
            f"need width > 0 and count >= 1, got width={width}, count={count}"
        )
    return tuple(start + width * i for i in range(count))


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometrically growing bucket upper bounds."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ConfigurationError(
            "need start > 0, factor > 1, count >= 1, got "
            f"start={start}, factor={factor}, count={count}"
        )
    return tuple(start * factor**i for i in range(count))


class Counter:
    """A monotonically increasing value (int increments stay int)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (must be >= 0; counters never go down)."""
        if n < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A point-in-time value (merges across snapshots by summation)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (gauges may move both ways)."""
        self.value += n


class Histogram:
    """Fixed-bucket distribution: counts per upper bound plus sum/count.

    ``counts`` has ``len(bounds) + 1`` entries; the last one is the
    ``+Inf`` overflow bucket. Counts are *per bucket* (not cumulative);
    the Prometheus exporter cumulates on the way out.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram bounds must be non-empty and ascending, got {bounds}"
            )
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot entry for this histogram."""
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Labelled instruments, registered on first use.

    Usage::

        registry = MetricsRegistry()
        registry.counter("alerts_total", accepted="true").inc()
        registry.histogram("rtt_cycles", buckets=(1.0, 2.0), kind="exchange").observe(1.5)
        registry.snapshot()

    One metric *name* has one kind (and, for histograms, one bucket
    layout) — re-registering with a mismatch raises. Instrument handles
    are cheap to cache; hot paths should hold the handle rather than
    re-resolve labels per event.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelItems], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}

    def _get(self, kind: str, name: str, labels: Mapping[str, Any], factory) -> Any:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )
        key = (name, _label_items(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = factory()
            self._series[key] = instrument
            self._kinds[name] = kind
        return instrument

    def counter(self, name: str, /, **labels: Any) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, /, **labels: Any) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        /,
        *,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram series ``name{labels}``.

        ``buckets`` is required the first time a name is seen and must
        match (or be omitted) on later calls — one name, one layout, so
        merges stay well-defined.
        """
        known_bounds = self._bounds.get(name)
        if known_bounds is None:
            if buckets is None:
                raise ConfigurationError(
                    f"histogram {name!r} needs buckets on first registration"
                )
            self._bounds[name] = tuple(float(b) for b in buckets)
        elif buckets is not None and tuple(float(b) for b in buckets) != known_bounds:
            raise ConfigurationError(
                f"histogram {name!r} bucket mismatch: {known_bounds} vs {tuple(buckets)}"
            )
        bounds = self._bounds[name]
        return self._get("histogram", name, labels, lambda: Histogram(bounds))

    def clear_name(self, name: str) -> None:
        """Drop every series of metric ``name`` (and its registration)."""
        for key in [k for k in self._series if k[0] == name]:
            del self._series[key]
        self._kinds.pop(name, None)
        self._bounds.pop(name, None)

    def series(self) -> List[Tuple[str, LabelItems, Any]]:
        """All registered series, sorted by (name, labels)."""
        return [
            (name, labels, self._series[(name, labels)])
            for name, labels in sorted(self._series)
        ]

    def snapshot(self) -> Dict[str, Any]:
        """Canonical JSON-ready dump: sorted, deterministic, mergeable.

        Shape::

            {"counters": {series_key: value},
             "gauges": {series_key: value},
             "histograms": {series_key: {"buckets": [...], "counts": [...],
                                          "sum": s, "count": n}}}
        """
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, labels, instrument in self.series():
            key = format_series_key(name, labels)
            if instrument.kind == "histogram":
                out["histograms"][key] = instrument.to_dict()
            else:
                out[instrument.kind + "s"][key] = instrument.value
        return out


def _sum_values(values: Iterable[Number]) -> Number:
    """Order-insensitive sum: exact for ints, fsum-exact for floats."""
    values = list(values)
    if all(isinstance(v, int) for v in values):
        return sum(values)
    return math.fsum(values)


def _merge_gauge(key: str, values: List[Number]) -> Number:
    """Merge one gauge series: ``_max`` metrics take max, others sum."""
    name = key.partition("{")[0]
    if name.endswith("_max"):
        return max(values)
    return _sum_values(values)


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Reduce snapshots into one; the result is itself a snapshot.

    Counters sum per series; histogram bucket counts add element-wise
    (bucket layouts must match). Gauges sum, with one set-semantics
    exception: a gauge whose metric *name* ends in ``_max`` (e.g. the
    live plane's ``queue_heartbeat_age_seconds_max``) merges by
    :func:`max` — the only last-writer-style reduction that stays
    order-insensitive. The whole reduction is order-insensitive — any
    permutation of ``snapshots`` yields an identical result — which is
    what lets worker-process registries merge bit-identically to the
    serial run.

    Raises:
        ConfigurationError: two snapshots disagree on a histogram's
            bucket layout.
    """
    counters: Dict[str, List[Number]] = {}
    gauges: Dict[str, List[Number]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        for key, value in (snap.get("counters") or {}).items():
            counters.setdefault(key, []).append(value)
        for key, value in (snap.get("gauges") or {}).items():
            gauges.setdefault(key, []).append(value)
        for key, hist in (snap.get("histograms") or {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sums": [hist["sum"]],
                    "count": int(hist["count"]),
                }
                continue
            if merged["buckets"] != list(hist["buckets"]):
                raise ConfigurationError(
                    f"histogram {key!r}: bucket layouts differ across snapshots"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist["counts"])
            ]
            merged["sums"].append(hist["sum"])
            merged["count"] += int(hist["count"])
    return {
        "counters": {k: _sum_values(v) for k, v in sorted(counters.items())},
        "gauges": {k: _merge_gauge(k, v) for k, v in sorted(gauges.items())},
        "histograms": {
            k: {
                "buckets": h["buckets"],
                "counts": h["counts"],
                "sum": _sum_values(h["sums"]),
                "count": h["count"],
            }
            for k, h in sorted(histograms.items())
        },
    }
