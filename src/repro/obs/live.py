"""Live telemetry plane: trace propagation and scrapeable endpoints.

The batch observability layer (:mod:`repro.obs.metrics`,
:mod:`repro.obs.spans`) answers "what happened" after a run finishes —
per-worker snapshots merge into one deterministic registry. The paper's
§3 base station, however, is an *online* service: malicious-beacon
detection runs continuously, and an operator must be able to tell, while
it runs, whether the queue is draining, leases are being heartbeated,
and the revocation ledger is keeping up. This module adds that live
plane without touching the deterministic contract:

- :class:`TraceContext` — a ``trace_id`` plus remote parent span id,
  serialized into queue-backend task manifests and revocation replay
  batches so coordinator ``task:*`` spans, worker ``trial`` spans, and
  ``svc:flush`` spans stitch into one causally-linked trace
  (``tools/stitch_trace.py`` draws the cross-process edges);
- process-level span **namespace** and **trace context** accessors —
  a worker sets its namespace once (``set_process_span_namespace("w0")``)
  and every :class:`~repro.obs.spans.Observability` it creates mints
  globally unique string span ids (``"w0:1"``, ``"w0:2"``, ...);
- :class:`TelemetryServer` — a stdlib-only threaded HTTP server
  exposing ``/metrics`` (Prometheus text), ``/healthz`` (JSON), and
  ``/spans`` (recent-span ring buffer as JSON);
- liveness snapshot builders (:func:`queue_liveness_snapshot`) whose
  gauges follow the ``_max`` merge convention of
  :func:`repro.obs.metrics.merge_snapshots`, so scrapes from several
  processes reduce deterministically.

Everything here is wall-clock territory and therefore stays *out* of
the deterministic merged registries; nothing draws randomness, so
attaching a server (or propagating a trace context) leaves simulated
results bit-identical.

Paper section: §3 (the base station as an always-on, auditable service)
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.export import prometheus_text

#: Manifest / batch key under which a serialized trace context travels.
TRACE_KEY = "trace"

#: Default capacity of the /spans ring buffer.
SPAN_RING_CAPACITY = 256


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex).

    Uses :func:`uuid.uuid4` (``os.urandom`` underneath) — deliberately
    *not* the simulation's seeded RNG streams, so minting a trace id can
    never perturb a result.
    """
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """A cross-process trace reference: trace id + remote parent span.

    ``parent_span_id`` is the *string* id of the span in another process
    that causally precedes work done under this context (e.g. the
    coordinator's ``task:figure05:s7`` span for a worker's ``trial``
    span). Empty string means "root of the trace".
    """

    trace_id: str
    parent_span_id: str = ""

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready form, as embedded in task manifests."""
        return {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceContext":
        """Rebuild from :meth:`to_dict` output; validates the shape."""
        trace_id = data.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ConfigurationError(
                f"trace context needs a non-empty trace_id, got {data!r}"
            )
        return cls(
            trace_id=trace_id,
            parent_span_id=str(data.get("parent_span_id", "")),
        )


# --------------------------------------------------------------------------
# Process-level span namespace / trace context
# --------------------------------------------------------------------------

_process_state = threading.local()


def set_process_span_namespace(namespace: Optional[str]) -> None:
    """Set (or clear, with None) this process's span-id namespace.

    Once set, every newly created
    :class:`~repro.obs.spans.Observability` mints string span ids
    ``"{namespace}:{n}"`` — deterministic per process, globally unique
    across a worker fleet when each worker uses its worker id.
    """
    _process_state.namespace = namespace


def process_span_namespace() -> Optional[str]:
    """The current process span namespace (None = plain integer ids)."""
    return getattr(_process_state, "namespace", None)


def set_process_trace_context(context: Optional[TraceContext]) -> None:
    """Set (or clear, with None) the ambient cross-process trace context.

    While set, root spans of newly created ``Observability`` objects
    carry ``trace_id`` (and, when non-empty, ``remote_parent``) in their
    attrs — the hooks :mod:`tools.stitch_trace` uses to draw
    cross-process parent edges.
    """
    _process_state.trace_context = context


def process_trace_context() -> Optional[TraceContext]:
    """The ambient trace context set for this process (or None)."""
    return getattr(_process_state, "trace_context", None)


def namespace_counter(namespace: str) -> "itertools.count":
    """The shared span-serial counter for ``namespace`` in this process.

    Every :class:`~repro.obs.spans.Observability` created under the same
    namespace draws from one counter, so a worker that runs several
    trials never mints the same ``"w0:<n>"`` id twice — ids stay
    globally unique across a whole stitched trace, not just within one
    trial. Deterministic per process: the same sequence of span opens
    yields the same serials.
    """
    counters = getattr(_process_state, "counters", None)
    if counters is None:
        counters = {}
        _process_state.counters = counters
    counter = counters.get(namespace)
    if counter is None:
        counter = itertools.count(1)
        counters[namespace] = counter
    return counter


class SpanRing:
    """A bounded, thread-safe ring of recently completed span dicts."""

    def __init__(self, capacity: int = SPAN_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1, got {capacity}")
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, span: Mapping[str, Any]) -> None:
        """Record one completed span (oldest entries fall off)."""
        with self._lock:
            self._spans.append(dict(span))

    def extend(self, spans: Iterable[Mapping[str, Any]]) -> None:
        """Record several completed spans in order."""
        with self._lock:
            for span in spans:
                self._spans.append(dict(span))

    def recent(self) -> List[Dict[str, Any]]:
        """The buffered spans, oldest first (a copy)."""
        with self._lock:
            return [dict(span) for span in self._spans]


# --------------------------------------------------------------------------
# Scrapeable endpoints
# --------------------------------------------------------------------------


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, and /spans; 404 otherwise."""

    # Set by TelemetryServer on the server object; accessed via self.server.
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Serve one scrape."""
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                snapshot = self.server.telemetry_snapshot_fn()  # type: ignore[attr-defined]
                self._reply(
                    200, prometheus_text(snapshot), "text/plain; version=0.0.4"
                )
            elif path == "/healthz":
                health = self.server.telemetry_health_fn()  # type: ignore[attr-defined]
                status = 200 if health.get("status") == "ok" else 503
                self._reply(status, json.dumps(health, sort_keys=True), "application/json")
            elif path == "/spans":
                spans = self.server.telemetry_spans_fn()  # type: ignore[attr-defined]
                self._reply(
                    200,
                    json.dumps(spans, sort_keys=True, default=repr),
                    "application/json",
                )
            else:
                self._reply(404, json.dumps({"error": "not found"}), "application/json")
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, json.dumps({"error": repr(exc)}), "application/json")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are frequent)."""


class TelemetryServer:
    """A stdlib-only threaded HTTP server for live telemetry scrapes.

    Endpoints:

    - ``/metrics`` — ``snapshot_fn()`` rendered by
      :func:`repro.obs.export.prometheus_text`;
    - ``/healthz`` — ``health_fn()`` as JSON, HTTP 200 when its
      ``status`` is ``"ok"``, 503 otherwise;
    - ``/spans`` — ``spans_fn()`` (recent completed spans) as JSON.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`. The server runs on a daemon thread and is idle-cheap:
    snapshot callables are only invoked per scrape, never on the
    simulation hot path.
    """

    def __init__(
        self,
        snapshot_fn: Optional[Callable[[], Mapping[str, Any]]] = None,
        *,
        health_fn: Optional[Callable[[], Mapping[str, Any]]] = None,
        spans_fn: Optional[Callable[[], List[Dict[str, Any]]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._snapshot_fn = snapshot_fn or (
            lambda: {"counters": {}, "gauges": {}, "histograms": {}}
        )
        self._health_fn = health_fn or (lambda: {"status": "ok"})
        self._spans_fn = spans_fn or (lambda: [])
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (0 before :meth:`start`)."""
        return self._httpd.server_address[1] if self._httpd else 0

    @property
    def url(self) -> str:
        """Base URL of the running server (empty before start)."""
        return f"http://{self._host}:{self.port}" if self._httpd else ""

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self for chaining."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _TelemetryHandler
        )
        httpd.daemon_threads = True
        httpd.telemetry_snapshot_fn = self._snapshot_fn  # type: ignore[attr-defined]
        httpd.telemetry_health_fn = self._health_fn  # type: ignore[attr-defined]
        httpd.telemetry_spans_fn = self._spans_fn  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"telemetry:{httpd.server_address[1]}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        """Start on entry (context-manager form)."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Stop on exit."""
        self.stop()


# --------------------------------------------------------------------------
# Liveness snapshots (wall-clock; live plane only, never merged into the
# deterministic registries)
# --------------------------------------------------------------------------


def queue_liveness_snapshot(
    run_dir: os.PathLike,
    *,
    requeues: int = 0,
    steals: int = 0,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Liveness gauges for one file-queue run directory.

    Scans the PR 7 layout (``tasks/``, ``leases/``, ``results/``) and
    returns a registry-shaped snapshot:

    - ``queue_depth`` — tasks not yet completed;
    - ``queue_inflight_leases`` — lease files currently held;
    - ``queue_heartbeat_age_seconds_max`` — staleness of the oldest
      lease heartbeat (``_max`` suffix → merges by max across scrapes);
    - ``queue_tasks_total`` / ``queue_results_total`` counters;
    - ``queue_requeues_total`` / ``queue_steals_total`` counters (from
      the caller's run stats, when available).

    Safe to call while workers are mutating the directory: a task file
    vanishing mid-scan is treated as completed.
    """
    root = Path(run_dir)
    wall = time.time() if now is None else now
    tasks = {p.stem for p in (root / "tasks").glob("*.json")}
    results = {p.stem for p in (root / "results").glob("*.json")}
    lease_ages: List[float] = []
    for lease in (root / "leases").glob("*.lease"):
        try:
            lease_ages.append(max(0.0, wall - lease.stat().st_mtime))
        except OSError:
            continue  # released between glob and stat
    depth = len(tasks - results)
    return {
        "counters": {
            "queue_tasks_total": len(tasks),
            "queue_results_total": len(results),
            "queue_requeues_total": int(requeues),
            "queue_steals_total": int(steals),
        },
        "gauges": {
            "queue_depth": depth,
            "queue_inflight_leases": len(lease_ages),
            "queue_heartbeat_age_seconds_max": max(lease_ages, default=0.0),
        },
        "histograms": {},
    }


def span_event_lines(
    telemetry: Mapping[str, Any],
    *,
    trial: str,
    process: Optional[str] = None,
) -> List[str]:
    """Completed spans of one telemetry dict as stitchable JSONL lines.

    One ``{"kind": "span", ...}`` JSON object per completed span, each
    stamped with the trial key, the producing process name, absolute
    wall time (``t0_epoch_s``, anchored at the telemetry's
    ``wall0_epoch``), and — when present in the span attrs — the
    ``trace_id`` / ``remote_parent`` hooks ``tools/stitch_trace.py``
    uses to connect processes.
    """
    wall0 = float(telemetry.get("wall0_epoch") or 0.0)
    proc = process or str(telemetry.get("process") or "main")
    lines: List[str] = []
    for span in telemetry.get("spans") or []:
        attrs = dict(span.get("attrs") or {})
        record = {
            "kind": "span",
            "trial": trial,
            "process": proc,
            "span": span["name"],
            "id": span["id"],
            "parent": span.get("parent", 0),
            "depth": span.get("depth", 0),
            "t0_epoch_s": wall0 + float(span.get("t0_wall_s", 0.0)),
            "dur_s": float(span.get("dur_wall_s", 0.0)),
            "sim_t0": span.get("t0_sim"),
            "sim_t1": span.get("t1_sim"),
            "attrs": attrs,
        }
        if "trace_id" in attrs:
            record["trace_id"] = attrs["trace_id"]
        if "remote_parent" in attrs:
            record["remote_parent"] = attrs["remote_parent"]
        lines.append(json.dumps(record, sort_keys=True, default=repr))
    return lines


def append_event_lines(path: os.PathLike, lines: List[str]) -> None:
    """Append JSONL lines to ``path`` (parents created; no-op if empty)."""
    if not lines:
        return
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
