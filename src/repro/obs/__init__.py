"""Unified observability: metrics registry, tracing spans, exporters.

``repro.obs`` is the instrumentation spine of the reproduction. One
trial carries one :class:`Observability` context — a
:class:`MetricsRegistry` for the paper's counting claims (§3.1 alert and
report counters, §2.2.2 RTT distributions) plus a stack of hierarchical
spans recorded into the simulation's trace stream — and the experiment
runner merges per-trial registry snapshots order-insensitively, so a
parallel Monte-Carlo run reduces to exactly the serial run's totals.

Everything is stdlib-only and RNG-free: attaching observability to a
pipeline never changes a simulated result (bit-identical, asserted in
tests). Exporters serialize to Prometheus text, Chrome/Perfetto trace
JSON, and JSONL; see ``docs/OBSERVABILITY.md`` for schemas.

Paper section: §3.1, §2.2.2, §4 (the quantities the evaluation counts)
"""

from repro.obs.config import ObserveConfig, observe_config_from_dict
from repro.obs.live import (
    SpanRing,
    TelemetryServer,
    TraceContext,
    new_trace_id,
    process_span_namespace,
    process_trace_context,
    queue_liveness_snapshot,
    set_process_span_namespace,
    set_process_trace_context,
    span_event_lines,
)
from repro.obs.export import (
    chrome_trace,
    events_jsonl_lines,
    prometheus_text,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    format_series_key,
    linear_buckets,
    merge_snapshots,
)
from repro.obs.spans import (
    ACTIVE_SPAN_ATTR,
    SPAN_BEGIN,
    SPAN_END,
    Observability,
    active_span_of,
    tag_active_span,
)

__all__ = [
    "ACTIVE_SPAN_ATTR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObserveConfig",
    "SPAN_BEGIN",
    "SPAN_END",
    "SpanRing",
    "TelemetryServer",
    "TraceContext",
    "active_span_of",
    "chrome_trace",
    "events_jsonl_lines",
    "exponential_buckets",
    "format_series_key",
    "linear_buckets",
    "merge_snapshots",
    "new_trace_id",
    "observe_config_from_dict",
    "process_span_namespace",
    "process_trace_context",
    "prometheus_text",
    "queue_liveness_snapshot",
    "set_process_span_namespace",
    "set_process_trace_context",
    "span_event_lines",
    "tag_active_span",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_prometheus",
]
