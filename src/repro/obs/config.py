"""Observability feature switches (``PipelineConfig.observe``).

``observe=None`` — the default everywhere — means *no observability
object exists at all*: the pipeline takes the exact pre-observability
code paths, draws zero extra random numbers, and produces bit-identical
results (asserted in ``tests/core/test_pipeline_observe.py``). An
:class:`ObserveConfig` instance turns the layer on; its switches select
which signals are collected. Because collection never touches an RNG,
results stay bit-identical even with everything enabled — the knob
exists for overhead control, not correctness.

The config is a frozen dataclass of plain scalars, so it is hashable,
picklable (parallel workers), and JSON-round-trippable
(:func:`observe_config_from_dict`, used by the experiment manifests).

Paper section: §4 (what the evaluation instruments)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ObserveConfig:
    """Which observability signals a pipeline run collects.

    Attributes:
        spans: open hierarchical spans (trial + per-phase) and record
            their begin/end events into the trace stream.
        metrics: flush counters (network, ARQ channels, fault injector,
            base-station §3.1 alert/report counters, engine totals) into
            the metrics registry at end of trial.
        rtt_histograms: record every calibration and exchange RTT into
            fixed-bucket ``rtt_cycles`` histograms (Figure-4-style data).
        per_node_rtt: label exchange RTT histograms by requesting node
            (one series per node — detailed but wide; off by default).
        trace_events: include the full protocol event stream
            (deliveries, alerts, revocations) in exported telemetry, not
            just the span markers.
    """

    spans: bool = True
    metrics: bool = True
    rtt_histograms: bool = True
    per_node_rtt: bool = False
    trace_events: bool = False


def observe_config_from_dict(data: Mapping[str, Any]) -> ObserveConfig:
    """Rebuild an :class:`ObserveConfig`; unknown keys are rejected."""
    known = {f.name for f in dataclasses.fields(ObserveConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown observe config keys: {sorted(unknown)}"
        )
    return ObserveConfig(**{k: bool(v) for k, v in data.items()})
