"""repro — secure location discovery for wireless sensor networks.

A from-scratch Python reproduction of Liu, Ning & Du, *"Detecting
Malicious Beacon Nodes for Secure Location Discovery in Wireless Sensor
Networks"* (ICDCS 2005): the malicious-beacon-signal detector, the replay
filters (wormhole + round-trip-time), the base-station revocation scheme,
the closed-form analysis, and the full simulation evaluation — plus every
substrate they run on (discrete-event WSN simulator, key predistribution,
beacon-based localization, adversary models).

Typical entry points:

- :class:`repro.core.SecureLocalizationPipeline` — the end-to-end system;
- :mod:`repro.core.analysis` — the paper's closed forms (Figures 5-10);
- :mod:`repro.experiments.figures` — regenerate any evaluation figure;
- :class:`repro.core.MaliciousSignalDetector`,
  :class:`repro.core.BaseStation`, ... — the individual building blocks.
"""

from repro.core import (
    BaseStation,
    DetectingBeacon,
    LocalReplayDetector,
    MaliciousSignalDetector,
    PipelineConfig,
    PipelineResult,
    ReplayFilterCascade,
    RevocationConfig,
    RttCalibration,
    SecureLocalizationPipeline,
    analysis,
    calibrate_rtt,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BaseStation",
    "DetectingBeacon",
    "LocalReplayDetector",
    "MaliciousSignalDetector",
    "PipelineConfig",
    "PipelineResult",
    "ReplayFilterCascade",
    "RevocationConfig",
    "RttCalibration",
    "SecureLocalizationPipeline",
    "analysis",
    "calibrate_rtt",
    "ReproError",
    "__version__",
]
