"""Localization substrate: measurement models and position solvers.

The paper's detection techniques sit *on top of* beacon-based localization;
this package provides that base layer, including the baselines the paper's
related-work section cites:

- :mod:`repro.localization.measurement` — RSSI / ToA / AoA ranging models
  with the bounded-error property the detector relies on;
- :mod:`repro.localization.references` — the ``location reference``
  abstraction (beacon location + measurement);
- :mod:`repro.localization.multilateration` — MMSE multilateration (the
  paper's "mathematical solution that satisfies these constraints with
  minimum estimation error");
- :mod:`repro.localization.centroid` — Bulusu–Heidemann–Estrin centroid;
- :mod:`repro.localization.dvhop` — Niculescu–Nath DV-Hop;
- :mod:`repro.localization.atomic` — AHLoS-style atomic/iterative
  multilateration (Savvides et al.);
- :mod:`repro.localization.beacon` — beacon service / non-beacon agent
  protocol roles over the simulator.
"""

from repro.localization.measurement import (
    AoaModel,
    RangingModel,
    RssiModel,
    TdoaModel,
    ToaModel,
)
from repro.localization.references import LocationReference
from repro.localization.multilateration import mmse_multilaterate
from repro.localization.robust import robust_multilaterate
from repro.localization.centroid import centroid_localize
from repro.localization.dvhop import DvHopLocalizer
from repro.localization.atomic import iterative_multilateration
from repro.localization.serloc import SerLocLocator, serloc_localize
from repro.localization.beacon import BeaconService, NonBeaconAgent

__all__ = [
    "RangingModel",
    "RssiModel",
    "ToaModel",
    "TdoaModel",
    "AoaModel",
    "LocationReference",
    "mmse_multilaterate",
    "robust_multilaterate",
    "centroid_localize",
    "DvHopLocalizer",
    "iterative_multilateration",
    "SerLocLocator",
    "serloc_localize",
    "BeaconService",
    "NonBeaconAgent",
]
