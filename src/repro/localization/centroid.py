"""Centroid localization (Bulusu, Heidemann & Estrin, 2000).

The coarse-grained baseline the paper cites: a node estimates its position
as the centroid of the locations declared by all beacons it can hear. No
ranging needed — and no robustness to lying beacons, which is the paper's
point.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InsufficientReferencesError
from repro.localization.references import LocationReference
from repro.utils.geometry import Point


def centroid_localize(references: Sequence[LocationReference]) -> Point:
    """Average the declared beacon locations.

    Raises:
        InsufficientReferencesError: when no references were heard.
    """
    if not references:
        raise InsufficientReferencesError("centroid needs at least one reference")
    x = sum(r.beacon_location.x for r in references) / len(references)
    y = sum(r.beacon_location.y for r in references) / len(references)
    return Point(x, y)
