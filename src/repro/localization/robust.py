"""Attack-resistant location estimation (solver-level defence).

The paper's detection/revocation suite removes malicious beacons from the
*network*; a complementary, purely local defence hardens the *solver*: a
node with redundant references can search for the largest subset whose
ranges are mutually consistent and solve from that subset only. This is
the approach of the authors' companion work on attack-resistant location
estimation (Liu, Ning & Du 2005) — reproduced here both as a baseline for
the ablation benches and because a production localization stack would
ship both layers.

Algorithm (greedy MMSE with residual gating):

1. Solve MMSE over the current reference set.
2. If the mean-square residual is within the tolerance implied by the
   ranging error bound, accept.
3. Otherwise drop the reference with the largest absolute residual and
   repeat, down to the 3-reference minimum.

A benign reference's residual at the true position is bounded by the
ranging error, so with enough honest references the malicious ones are
exactly the ones this loop peels off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import InsufficientReferencesError
from repro.localization.multilateration import MIN_REFERENCES, mmse_multilaterate
from repro.localization.references import LocationReference
from repro.utils.geometry import Point
from repro.utils.validation import check_non_negative


@dataclass
class RobustResult:
    """Outcome of an attack-resistant solve.

    Attributes:
        position: the final estimate.
        used: references the final solution was computed from.
        rejected: references discarded as inconsistent, in rejection order.
        rounds: how many solve/peel iterations ran.
        rms_residual_ft: residual of the final solution.
    """

    position: Point
    used: List[LocationReference] = field(default_factory=list)
    rejected: List[LocationReference] = field(default_factory=list)
    rounds: int = 0
    rms_residual_ft: float = 0.0


def residual_tolerance_ft(max_error_ft: float, *, slack: float = 1.5) -> float:
    """Acceptable RMS residual for an all-honest reference set.

    Honest per-reference residuals are bounded by ``max_error_ft`` at the
    true position; the solver's least-squares fit can only shrink the RMS.
    ``slack`` absorbs the difference between the true position and the
    noisy fit.
    """
    check_non_negative(max_error_ft, "max_error_ft")
    check_non_negative(slack, "slack")
    return slack * max_error_ft


def robust_multilaterate(
    references: Sequence[LocationReference],
    *,
    max_error_ft: float = 10.0,
    slack: float = 1.5,
) -> RobustResult:
    """Solve for a position while peeling off inconsistent references.

    Raises:
        InsufficientReferencesError: fewer than 3 references remain before
            a consistent subset is found.
    """
    remaining = list(references)
    rejected: List[LocationReference] = []
    tolerance = residual_tolerance_ft(max_error_ft, slack=slack)
    rounds = 0

    while True:
        rounds += 1
        solution = mmse_multilaterate(remaining)
        if solution.rms_residual_ft <= tolerance or len(remaining) == MIN_REFERENCES:
            if (
                solution.rms_residual_ft > tolerance
                and len(remaining) == MIN_REFERENCES
            ):
                # No consistent subset of sufficient size exists.
                raise InsufficientReferencesError(
                    "no consistent subset of >= 3 references "
                    f"(best RMS {solution.rms_residual_ft:.1f} ft > "
                    f"tolerance {tolerance:.1f} ft)"
                )
            return RobustResult(
                position=solution.position,
                used=remaining,
                rejected=rejected,
                rounds=rounds,
                rms_residual_ft=solution.rms_residual_ft,
            )
        worst_index = _worst_residual_index(remaining, solution.position)
        rejected.append(remaining.pop(worst_index))


def _worst_residual_index(
    references: Sequence[LocationReference], position: Point
) -> int:
    worst = 0
    worst_value = -1.0
    for index, ref in enumerate(references):
        value = abs(ref.residual_at(position))
        if value > worst_value:
            worst_value = value
            worst = index
    return worst


def consistency_vote(
    references: Sequence[LocationReference],
    *,
    max_error_ft: float = 10.0,
    slack: float = 1.5,
) -> List[Tuple[LocationReference, bool]]:
    """Label each reference consistent/inconsistent with the robust fit.

    Convenience for diagnostics and for feeding *local* suspicion into the
    reporting pipeline (a non-beacon node cannot run the §2.1 detector —
    it has no trusted position — but it can flag references its own robust
    solve rejected).
    """
    result = robust_multilaterate(
        references, max_error_ft=max_error_ft, slack=slack
    )
    rejected_ids = {id(r) for r in result.rejected}
    return [(ref, id(ref) not in rejected_ids) for ref in references]
