"""DV-Hop localization (Niculescu & Nath, 2001/2003).

The range-free baseline the paper cites: beacons flood hop counts; each
beacon computes an *average hop size* from its known distances to the other
beacons; non-beacon nodes convert their hop counts into distance estimates
(hops x hop size) and multilaterate.

Built over ``networkx`` shortest paths on the connectivity graph induced by
the radio range.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.errors import InsufficientReferencesError, LocalizationError
from repro.localization.multilateration import mmse_multilaterate
from repro.localization.references import LocationReference
from repro.sim.network import Network
from repro.sim.node import Node
from repro.utils.geometry import Point, distance


class DvHopLocalizer:
    """Runs the three DV-Hop phases over a simulated network snapshot.

    Args:
        network: the deployed network (positions + radio range define the
            connectivity graph).
        beacon_locations: optional override of each beacon's *declared*
            location — lets attack experiments inject lies without touching
            physical positions.
    """

    def __init__(
        self,
        network: Network,
        *,
        beacon_locations: Optional[Dict[int, Point]] = None,
    ) -> None:
        self.network = network
        declared = beacon_locations or {}
        self._declared = {
            b.node_id: declared.get(b.node_id, b.position)
            for b in network.beacon_nodes()
        }
        self._graph = self._build_graph()
        self._hops = self._flood_hop_counts()
        self._hop_sizes = self._compute_hop_sizes()

    # ------------------------------------------------------------------
    # Phase 1: connectivity + hop-count flood
    # ------------------------------------------------------------------
    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        nodes = self.network.nodes()
        for node in nodes:
            graph.add_node(node.node_id)
        comm_range = self.network.radio.comm_range_ft
        for node in nodes:
            for neighbor in self.network.neighbors_of(node):
                if node.node_id < neighbor.node_id:
                    graph.add_edge(node.node_id, neighbor.node_id)
        return graph

    def _flood_hop_counts(self) -> Dict[int, Dict[int, int]]:
        """hops[beacon_id][node_id] = hop count (only reachable nodes)."""
        hops: Dict[int, Dict[int, int]] = {}
        for beacon_id in self._declared:
            hops[beacon_id] = dict(
                nx.single_source_shortest_path_length(self._graph, beacon_id)
            )
        return hops

    # ------------------------------------------------------------------
    # Phase 2: average hop size per beacon
    # ------------------------------------------------------------------
    def _compute_hop_sizes(self) -> Dict[int, float]:
        sizes: Dict[int, float] = {}
        beacon_ids = sorted(self._declared)
        for bid in beacon_ids:
            total_dist = 0.0
            total_hops = 0
            for other in beacon_ids:
                if other == bid:
                    continue
                hop = self._hops[bid].get(other)
                if hop is None or hop == 0:
                    continue
                total_dist += distance(self._declared[bid], self._declared[other])
                total_hops += hop
            if total_hops > 0:
                sizes[bid] = total_dist / total_hops
        if not sizes:
            raise LocalizationError(
                "DV-Hop hop-size computation failed: no beacon pair is connected"
            )
        return sizes

    def hop_size_of(self, beacon_id: int) -> float:
        """The average hop size beacon ``beacon_id`` floods (phase 2)."""
        try:
            return self._hop_sizes[beacon_id]
        except KeyError:
            raise LocalizationError(
                f"beacon {beacon_id} could not compute a hop size"
            ) from None

    # ------------------------------------------------------------------
    # Phase 3: per-node distance estimates + multilateration
    # ------------------------------------------------------------------
    def references_for(self, node: Node) -> List[LocationReference]:
        """DV-Hop distance estimates (hops x hop size) for ``node``."""
        refs: List[LocationReference] = []
        for bid, declared in sorted(self._declared.items()):
            hop = self._hops[bid].get(node.node_id)
            if hop is None or hop == 0:
                continue
            hop_size = self._hop_sizes.get(bid)
            if hop_size is None:
                continue
            refs.append(
                LocationReference(
                    beacon_id=bid,
                    beacon_location=declared,
                    measured_distance_ft=hop * hop_size,
                )
            )
        return refs

    def localize(self, node: Node) -> Point:
        """Estimate ``node``'s position from its DV-Hop references.

        Raises:
            InsufficientReferencesError: the node hears < 3 beacons.
        """
        refs = self.references_for(node)
        if len(refs) < 3:
            raise InsufficientReferencesError(
                f"node {node.node_id} reaches only {len(refs)} beacons"
            )
        return mmse_multilaterate(refs).position

    def localize_all(self) -> Dict[int, Point]:
        """Estimate every non-beacon node that has enough references."""
        out: Dict[int, Point] = {}
        for node in self.network.non_beacon_nodes():
            try:
                out[node.node_id] = self.localize(node)
            except InsufficientReferencesError:
                continue
        return out
