"""Protocol roles over the simulator: beacon service and non-beacon agent.

These implement the paper's two-stage location discovery (Section 1):
stage 1, non-beacon nodes request and receive beacon signals and derive
location references; stage 2, they solve for their own position.

The secure pipeline in :mod:`repro.core.pipeline` composes replay filters
and detection on top of these roles; attack nodes in :mod:`repro.attacks`
subclass :class:`BeaconService` to misbehave.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.manager import KeyManager
from repro.errors import InsufficientReferencesError
from repro.localization.multilateration import MultilaterationResult, mmse_multilaterate
from repro.localization.references import LocationReference
from repro.sim.messages import BeaconPacket, BeaconRequest, RevocationNotice
from repro.sim.node import Node
from repro.sim.radio import Reception
from repro.utils.geometry import Point


class BeaconService(Node):
    """A location-aware beacon node answering beacon requests.

    Args:
        node_id: primary beacon identity.
        position: physical (and, for benign beacons, declared) location.
        key_manager: signs outgoing beacon packets per the paper's
            "every beacon packet is authenticated ... with the pairwise key".
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        *,
        declared_location: Optional[Point] = None,
    ) -> None:
        super().__init__(node_id, position, is_beacon=True)
        self.key_manager = key_manager
        self.declared_location = (
            declared_location if declared_location is not None else position
        )
        self._sequence = 0
        self.requests_served = 0
        self.on(BeaconRequest, type(self)._serve_request)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _serve_request(self, reception: Reception) -> None:
        request = reception.packet
        if not self.key_manager.verify(request):
            return  # forged request: no shared key, drop silently
        self.respond_to(request)

    def respond_to(self, request: BeaconRequest) -> None:
        """Send the beacon packet this node answers ``request`` with.

        Benign behaviour: declare the true location, no signal games.
        Subclasses (malicious beacons) override this.
        """
        self.requests_served += 1
        self._sequence += 1
        reply = BeaconPacket(
            src_id=self.node_id,
            dst_id=request.src_id,
            claimed_location=(self.declared_location.x, self.declared_location.y),
            nonce=request.nonce,
            sequence=self._sequence,
        )
        self.send(self.key_manager.sign(reply))


class NonBeaconAgent(Node):
    """A regular sensor node discovering its own location.

    Collects authenticated beacon packets into location references and
    solves with MMSE multilateration. Honors revocation notices: references
    from revoked beacons are discarded (paper Section 3.2 assumes "a
    malicious beacon signal will not be used ... if the corresponding beacon
    node is revoked").
    """

    def __init__(self, node_id: int, position: Point, key_manager: KeyManager) -> None:
        super().__init__(node_id, position, is_beacon=False)
        self.key_manager = key_manager
        self.references: List[LocationReference] = []
        self.revoked_beacons: set[int] = set()
        self._next_nonce = 1
        self.estimated_position: Optional[Point] = None
        self.on(BeaconPacket, type(self)._collect_reference)
        self.on(RevocationNotice, type(self)._apply_revocation)

    # ------------------------------------------------------------------
    # Stage 1: gather references
    # ------------------------------------------------------------------
    def request_beacon(self, beacon_id: int) -> None:
        """Unicast a beacon request to ``beacon_id``."""
        request = BeaconRequest(
            src_id=self.node_id, dst_id=beacon_id, nonce=self._next_nonce
        )
        self._next_nonce += 1
        self.send(self.key_manager.sign(request))

    def _collect_reference(self, reception: Reception) -> None:
        packet = reception.packet
        if not self.key_manager.verify(packet):
            return
        if packet.src_id in self.revoked_beacons:
            return
        if self.accepts(reception):
            self.references.append(self.reference_from(reception))

    def accepts(self, reception: Reception) -> bool:
        """Hook for replay filters; base agent accepts everything valid."""
        return True

    def reference_from(self, reception: Reception) -> LocationReference:
        """Build the location reference for an accepted beacon packet."""
        packet = reception.packet
        return LocationReference(
            beacon_id=packet.src_id,
            beacon_location=packet.claimed_point,
            measured_distance_ft=reception.measured_distance_ft,
            received_at=reception.arrival_time,
        )

    def _apply_revocation(self, reception: Reception) -> None:
        notice = reception.packet
        self.revoked_beacons.add(notice.revoked_id)
        self.references = [
            r for r in self.references if r.beacon_id != notice.revoked_id
        ]

    # ------------------------------------------------------------------
    # Stage 2: solve
    # ------------------------------------------------------------------
    def estimate_position(self) -> MultilaterationResult:
        """Solve for this node's position from the collected references.

        Raises:
            InsufficientReferencesError: fewer than 3 usable references.
        """
        distinct: Dict[int, LocationReference] = {}
        for ref in self.references:
            distinct[ref.beacon_id] = ref  # keep the latest per beacon
        refs = [distinct[k] for k in sorted(distinct)]
        if len(refs) < 3:
            raise InsufficientReferencesError(
                f"node {self.node_id} holds {len(refs)} usable references"
            )
        result = mmse_multilaterate(refs)
        self.estimated_position = result.position
        return result

    def location_error_ft(self) -> float:
        """Distance between the estimate and the ground-truth position."""
        if self.estimated_position is None:
            raise InsufficientReferencesError(
                f"node {self.node_id} has no position estimate yet"
            )
        return self.estimated_position.distance_to(self.position)
