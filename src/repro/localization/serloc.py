"""SeRLoc: secure range-independent localization (Lazos & Poovendran 2004).

The related-work baseline the paper contrasts itself against: beacons
("locators") carry **sectored antennas**; each transmission covers one
angular sector of the locator's range. A sensor that hears a set of
(locator position, sector) pairs knows it lies in the **intersection** of
those sectors and estimates its position as the intersection's center of
gravity — no ranging at all, hence robust to signal-strength games.

The paper's point stands reproduced here: SeRLoc localizes securely
against *external* attackers, but "it cannot detect and remove compromised
beacon nodes" — a lying locator shifts the region and nothing in the
scheme notices (see the baseline tests and the comparison bench).

Geometry is evaluated by grid sampling (the original paper does the same),
with the grid step a parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError, InsufficientReferencesError
from repro.utils.geometry import Point, distance
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Sector:
    """One antenna sector: a wedge of the locator's communication disk.

    Attributes:
        origin: the locator's (declared) position.
        bearing_rad: the wedge's center direction.
        width_rad: angular width of the wedge.
        range_ft: the locator's communication range.
    """

    origin: Point
    bearing_rad: float
    width_rad: float
    range_ft: float

    def __post_init__(self) -> None:
        check_positive(self.range_ft, "range_ft")
        if not 0 < self.width_rad <= 2 * math.pi:
            raise ConfigurationError(
                f"width_rad must be in (0, 2*pi], got {self.width_rad}"
            )

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside the wedge (inclusive)."""
        if distance(self.origin, point) > self.range_ft:
            return False
        if self.width_rad >= 2 * math.pi - 1e-12:
            return True
        angle = math.atan2(point.y - self.origin.y, point.x - self.origin.x)
        delta = (angle - self.bearing_rad + math.pi) % (2 * math.pi) - math.pi
        return abs(delta) <= self.width_rad / 2 + 1e-12


class SerLocLocator:
    """A sectored-antenna beacon.

    Args:
        locator_id: identity.
        position: physical position.
        n_sectors: antenna count (sector width = 2*pi / n_sectors).
        range_ft: transmission range.
        declared_position: the position it *advertises* (a compromised
            locator lies here).
    """

    def __init__(
        self,
        locator_id: int,
        position: Point,
        *,
        n_sectors: int = 8,
        range_ft: float = 150.0,
        declared_position: Point | None = None,
    ) -> None:
        if n_sectors < 1:
            raise ConfigurationError(f"n_sectors must be >= 1, got {n_sectors}")
        self.locator_id = locator_id
        self.position = position
        self.n_sectors = n_sectors
        self.range_ft = range_ft
        self.declared_position = (
            declared_position if declared_position is not None else position
        )

    def sector_width_rad(self) -> float:
        """Angular width of one sector."""
        return 2 * math.pi / self.n_sectors

    def sector_index_for(self, receiver: Point) -> int:
        """Which antenna's sector physically covers ``receiver``."""
        angle = math.atan2(
            receiver.y - self.position.y, receiver.x - self.position.x
        ) % (2 * math.pi)
        return int(angle // self.sector_width_rad()) % self.n_sectors

    def heard_sector(self, receiver: Point) -> Sector | None:
        """The sector a receiver at ``receiver`` hears, or None.

        The sector's geometry is expressed from the *declared* position —
        which is how a lying locator corrupts the sensor's region — while
        audibility and the transmitting antenna are physical.
        """
        if distance(self.position, receiver) > self.range_ft:
            return None
        index = self.sector_index_for(receiver)
        width = self.sector_width_rad()
        return Sector(
            origin=self.declared_position,
            bearing_rad=(index + 0.5) * width,
            width_rad=width,
            range_ft=self.range_ft,
        )


def serloc_localize(
    sectors: Sequence[Sector], *, grid_step_ft: float = 5.0
) -> Point:
    """Center of gravity of the intersection of ``sectors``.

    Raises:
        InsufficientReferencesError: no sectors, or empty intersection at
            the sampling resolution (inconsistent — possibly attacked —
            information).
    """
    if not sectors:
        raise InsufficientReferencesError("SeRLoc needs at least one sector")
    check_positive(grid_step_ft, "grid_step_ft")

    x_lo = max(s.origin.x - s.range_ft for s in sectors)
    x_hi = min(s.origin.x + s.range_ft for s in sectors)
    y_lo = max(s.origin.y - s.range_ft for s in sectors)
    y_hi = min(s.origin.y + s.range_ft for s in sectors)
    if x_hi < x_lo or y_hi < y_lo:
        raise InsufficientReferencesError(
            "sector bounding boxes are disjoint (inconsistent beacons?)"
        )

    sum_x = 0.0
    sum_y = 0.0
    count = 0
    steps_x = int((x_hi - x_lo) / grid_step_ft) + 1
    steps_y = int((y_hi - y_lo) / grid_step_ft) + 1
    for i in range(steps_x):
        x = x_lo + i * grid_step_ft
        for j in range(steps_y):
            y = y_lo + j * grid_step_ft
            p = Point(x, y)
            if all(s.contains(p) for s in sectors):
                sum_x += x
                sum_y += y
                count += 1
    if count == 0:
        raise InsufficientReferencesError(
            "sector intersection is empty at this resolution "
            "(inconsistent beacons?)"
        )
    return Point(sum_x / count, sum_y / count)


def localize_with(
    locators: Sequence[SerLocLocator],
    receiver: Point,
    *,
    grid_step_ft: float = 5.0,
) -> Point:
    """Full SeRLoc round: collect heard sectors, intersect, estimate."""
    sectors: List[Sector] = []
    for locator in locators:
        sector = locator.heard_sector(receiver)
        if sector is not None:
            sectors.append(sector)
    return serloc_localize(sectors, grid_step_ft=grid_step_ft)
