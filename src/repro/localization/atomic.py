"""AHLoS-style atomic / iterative multilateration (Savvides et al., 2001).

Atomic multilateration solves one node from >= 3 beacon ranges; *iterative*
multilateration then promotes solved nodes to beacon status so their
neighbours gain references, sweeping until no further node can be solved.

The paper's Section 2.3 remarks that error accumulates as non-beacon nodes
turn into beacons — this module is what the corresponding ablation bench
measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import InsufficientReferencesError, SolverError
from repro.localization.measurement import RangingModel, RssiModel
from repro.localization.multilateration import mmse_multilaterate
from repro.localization.references import LocationReference
from repro.sim.network import Network
from repro.utils.geometry import Point, distance


@dataclass
class IterativeResult:
    """Outcome of an iterative-multilateration sweep.

    Attributes:
        positions: node_id -> estimated position (non-beacons solved).
        rounds: number of promotion rounds performed.
        promoted: node ids that became beacons round by round.
        unsolved: non-beacon ids that never collected 3 references.
    """

    positions: Dict[int, Point] = field(default_factory=dict)
    rounds: int = 0
    promoted: List[List[int]] = field(default_factory=list)
    unsolved: Set[int] = field(default_factory=set)


def iterative_multilateration(
    network: Network,
    rng: random.Random,
    *,
    ranging: Optional[RangingModel] = None,
    max_rounds: int = 20,
    residual_gate_ft: Optional[float] = None,
) -> IterativeResult:
    """Run atomic multilateration sweeps, promoting solved nodes to beacons.

    Args:
        network: the deployed network; ranging happens between physical
            positions with the supplied model's noise.
        rng: measurement-noise stream.
        ranging: measurement model (default RSSI with the network's bound).
        max_rounds: hard cap on promotion rounds.
        residual_gate_ft: if set, a solution whose RMS residual exceeds the
            gate is rejected (not promoted) — a quality guard against error
            accumulation.

    Returns:
        An :class:`IterativeResult`; promoted nodes use their *estimated*
        positions as their declared locations, so error accumulates exactly
        as the paper warns.
    """
    model = ranging if ranging is not None else RssiModel(
        max_error_ft=network.max_ranging_error_ft
    )
    comm_range = network.radio.comm_range_ft

    # Anchor set: (declared position, ground-truth physical position).
    anchors: Dict[int, tuple] = {
        b.node_id: (b.position, b.position) for b in network.beacon_nodes()
    }
    pending = {n.node_id: n for n in network.non_beacon_nodes()}
    result = IterativeResult()

    for _ in range(max_rounds):
        solved_this_round: List[int] = []
        for node_id in sorted(pending):
            node = pending[node_id]
            refs: List[LocationReference] = []
            for anchor_id, (declared, physical) in sorted(anchors.items()):
                true_dist = distance(node.position, physical)
                if true_dist > comm_range:
                    continue
                measured = model.measure_distance(true_dist, rng)
                refs.append(
                    LocationReference(
                        beacon_id=anchor_id,
                        beacon_location=declared,
                        measured_distance_ft=measured,
                    )
                )
            if len(refs) < 3:
                continue
            try:
                solution = mmse_multilaterate(refs)
            except (InsufficientReferencesError, SolverError):
                continue
            if (
                residual_gate_ft is not None
                and solution.rms_residual_ft > residual_gate_ft
            ):
                continue
            result.positions[node_id] = solution.position
            solved_this_round.append(node_id)

        if not solved_this_round:
            break
        result.rounds += 1
        result.promoted.append(solved_this_round)
        for node_id in solved_this_round:
            node = pending.pop(node_id)
            # Promoted nodes *declare* their estimate but range from truth.
            anchors[node_id] = (result.positions[node_id], node.position)

    result.unsolved = set(pending)
    return result
