"""The ``location reference`` abstraction.

Per the paper's introduction: "We refer to such a measurement and the
location of the corresponding beacon node collectively as a location
reference."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.geometry import Point


@dataclass(frozen=True)
class LocationReference:
    """One beacon's contribution to a node's position estimate.

    Attributes:
        beacon_id: the (claimed) source beacon identity.
        beacon_location: the location declared in the beacon packet.
        measured_distance_ft: the ranging estimate derived from the signal.
        measured_angle_rad: bearing estimate, for AoA-based solvers.
        received_at: simulation time of reception (cycles).
    """

    beacon_id: int
    beacon_location: Point
    measured_distance_ft: float
    measured_angle_rad: Optional[float] = None
    received_at: float = 0.0

    def residual_at(self, position: Point) -> float:
        """Measured minus calculated distance if the node were at ``position``.

        The malicious-signal detector's core quantity: for a benign beacon
        and a correct position this is bounded by the maximum ranging error.
        """
        return self.measured_distance_ft - position.distance_to(self.beacon_location)
