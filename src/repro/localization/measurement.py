"""Ranging measurement models: RSSI, ToA, AoA.

Each model maps a *true* geometry (distance or bearing) to a noisy
measurement and exposes ``max_error`` — the bound the paper's detector uses
as its decision threshold ("if the difference ... is larger than the maximum
distance error, the ... beacon signal must be malicious").

The RSSI model goes through an explicit log-distance path-loss channel
(signal strength in dBm -> inverted distance estimate) so that adversarial
transmit-power games have a physically meaningful hook; ToA adds timing
noise; AoA measures bearings. All models clamp so the *resulting distance
error* stays within ``max_error_ft``, preserving the paper's bounded-error
assumption.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.geometry import Point, clamp


class RangingModel(ABC):
    """Interface: produce a distance measurement from true geometry."""

    #: Bound on |measured - true| distance; the detector's threshold.
    max_error_ft: float

    #: Whether the ranging feature is as protected as the packet data.
    #: True for RSSI/ToA (manipulating the feature requires transmitting,
    #: i.e. being the authenticated sender); False for ultrasound TDoA,
    #: where an external attacker can inject/advance the ultrasound pulse
    #: without holding any keys — the paper's §2.3 caveat.
    protects_ranging_feature: bool = True

    @abstractmethod
    def measure_distance(
        self, true_distance_ft: float, rng: random.Random, *, bias_ft: float = 0.0
    ) -> float:
        """A noisy distance estimate.

        Args:
            true_distance_ft: the physical distance.
            rng: randomness source for measurement noise.
            bias_ft: adversarial manipulation (e.g. power games); applied
                *after* noise and NOT clamped — attacks may exceed the
                honest error bound, which is exactly what gets detected.
        """


@dataclass
class RssiModel(RangingModel):
    """Received-signal-strength ranging via log-distance path loss.

    ``P_rx = P_tx - PL0 - 10 n log10(d / d0) + X`` where ``X`` is shadowing
    noise. Distance is recovered by inverting the deterministic part. The
    shadowing sigma is chosen from ``max_error_ft`` so honest errors stay
    within the bound (noise is truncated at the equivalent dB bound).

    Attributes:
        max_error_ft: bound on the honest distance error (paper: 10 ft).
        path_loss_exponent: environment exponent ``n`` (2 = free space).
        reference_loss_db: path loss at the reference distance ``d0``.
        reference_distance_ft: ``d0``.
        tx_power_dbm: nominal transmit power.
    """

    max_error_ft: float = 10.0
    path_loss_exponent: float = 2.5
    reference_loss_db: float = 40.0
    reference_distance_ft: float = 3.0
    tx_power_dbm: float = 0.0

    def __post_init__(self) -> None:
        if self.max_error_ft < 0:
            raise ConfigurationError(
                f"max_error_ft must be >= 0, got {self.max_error_ft}"
            )
        if self.path_loss_exponent <= 0:
            raise ConfigurationError(
                f"path_loss_exponent must be > 0, got {self.path_loss_exponent}"
            )

    # ------------------------------------------------------------------
    # Channel
    # ------------------------------------------------------------------
    def rssi_at(self, true_distance_ft: float, *, tx_power_dbm: float | None = None) -> float:
        """Deterministic received power (dBm) at ``true_distance_ft``."""
        if true_distance_ft < 0:
            raise ConfigurationError(
                f"distance must be >= 0, got {true_distance_ft}"
            )
        d = max(true_distance_ft, self.reference_distance_ft)
        power = self.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        return (
            power
            - self.reference_loss_db
            - 10.0 * self.path_loss_exponent * math.log10(d / self.reference_distance_ft)
        )

    def distance_from_rssi(self, rssi_dbm: float, *, assumed_tx_power_dbm: float | None = None) -> float:
        """Invert :meth:`rssi_at` assuming the nominal transmit power."""
        power = self.tx_power_dbm if assumed_tx_power_dbm is None else assumed_tx_power_dbm
        exponent = (power - self.reference_loss_db - rssi_dbm) / (
            10.0 * self.path_loss_exponent
        )
        return self.reference_distance_ft * (10.0**exponent)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_distance(
        self, true_distance_ft: float, rng: random.Random, *, bias_ft: float = 0.0
    ) -> float:
        noise = rng.uniform(-self.max_error_ft, self.max_error_ft)
        estimate = true_distance_ft + noise
        # Honest estimates stay inside the bound; adversarial bias does not.
        estimate = clamp(
            estimate,
            max(0.0, true_distance_ft - self.max_error_ft),
            true_distance_ft + self.max_error_ft,
        )
        return max(0.0, estimate + bias_ft)


@dataclass
class ToaModel(RangingModel):
    """Time-of-arrival ranging: distance = (arrival - departure) * v.

    Timing jitter of ``timing_jitter_cycles`` CPU cycles translates to a
    distance error; the model exposes the resulting ``max_error_ft``.
    """

    timing_jitter_cycles: float = 0.055
    signal_speed_ft_per_cycle: float = 133.4  # speed of light per CPU cycle

    def __post_init__(self) -> None:
        if self.timing_jitter_cycles < 0:
            raise ConfigurationError(
                f"timing_jitter_cycles must be >= 0, got {self.timing_jitter_cycles}"
            )
        self.max_error_ft = self.timing_jitter_cycles * self.signal_speed_ft_per_cycle

    def measure_distance(
        self, true_distance_ft: float, rng: random.Random, *, bias_ft: float = 0.0
    ) -> float:
        jitter = rng.uniform(-self.timing_jitter_cycles, self.timing_jitter_cycles)
        estimate = true_distance_ft + jitter * self.signal_speed_ft_per_cycle
        return max(0.0, estimate + bias_ft)


@dataclass
class TdoaModel(RangingModel):
    """Time-difference-of-arrival ranging (RF + ultrasound, AHLoS/Cricket).

    Distance is the RF/ultrasound arrival gap times the speed of sound.
    Precision is excellent (``max_error_ft`` defaults to 2 ft), but the
    paper's Section 2.3 warns the technique is the *hardest to protect*:
    ultrasound pulses cannot carry authenticated data, so an external
    attacker near the link can inject an early pulse or echo and bias a
    **benign** beacon's measurement without compromising any keys — which
    turns the consistency detector's alarms into false accusations.
    ``protects_ranging_feature`` is therefore False; the TDoA ablation
    bench drives an external-manipulation attack through this hook.
    """

    max_error_ft: float = 2.0
    sound_speed_ft_per_s: float = 1_125.0

    protects_ranging_feature: bool = False

    def __post_init__(self) -> None:
        if self.max_error_ft < 0:
            raise ConfigurationError(
                f"max_error_ft must be >= 0, got {self.max_error_ft}"
            )
        if self.sound_speed_ft_per_s <= 0:
            raise ConfigurationError(
                f"sound_speed_ft_per_s must be > 0, got {self.sound_speed_ft_per_s}"
            )

    def arrival_gap_s(self, true_distance_ft: float) -> float:
        """RF-vs-ultrasound arrival gap for a given distance.

        RF arrives effectively instantly at these ranges; the gap is the
        acoustic travel time.
        """
        if true_distance_ft < 0:
            raise ConfigurationError(
                f"distance must be >= 0, got {true_distance_ft}"
            )
        return true_distance_ft / self.sound_speed_ft_per_s

    def distance_from_gap(self, gap_s: float) -> float:
        """Invert :meth:`arrival_gap_s`."""
        return max(0.0, gap_s * self.sound_speed_ft_per_s)

    def measure_distance(
        self, true_distance_ft: float, rng: random.Random, *, bias_ft: float = 0.0
    ) -> float:
        gap = self.arrival_gap_s(true_distance_ft)
        jitter_s = rng.uniform(
            -self.max_error_ft / self.sound_speed_ft_per_s,
            self.max_error_ft / self.sound_speed_ft_per_s,
        )
        return max(0.0, self.distance_from_gap(gap + jitter_s) + bias_ft)


@dataclass
class AoaModel:
    """Angle-of-arrival bearing measurement (for the AoA baselines).

    Not a :class:`RangingModel` — it measures bearings, not distances — but
    shares the bounded-error contract via ``max_error_rad``.
    """

    max_error_rad: float = math.radians(5.0)

    def __post_init__(self) -> None:
        if self.max_error_rad < 0:
            raise ConfigurationError(
                f"max_error_rad must be >= 0, got {self.max_error_rad}"
            )

    def measure_bearing(
        self,
        receiver: Point,
        transmitter: Point,
        rng: random.Random,
        *,
        bias_rad: float = 0.0,
    ) -> float:
        """Noisy bearing (radians, in (-pi, pi]) from receiver to transmitter."""
        true_bearing = math.atan2(
            transmitter.y - receiver.y, transmitter.x - receiver.x
        )
        noise = rng.uniform(-self.max_error_rad, self.max_error_rad)
        bearing = true_bearing + noise + bias_rad
        # Normalize into (-pi, pi].
        while bearing <= -math.pi:
            bearing += 2 * math.pi
        while bearing > math.pi:
            bearing -= 2 * math.pi
        return bearing
