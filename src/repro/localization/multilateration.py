"""Minimum-mean-square-error multilateration.

The paper's stage-2 solver: "consider the location references as constraints
a sensor node's location must satisfy, and estimate it by finding a
mathematical solution that satisfies these constraints with minimum
estimation error."

Implementation: a linearized least-squares seed (subtracting the last
range equation turns the system linear) refined by Gauss–Newton iterations
on the true nonlinear residual ``||x - b_i|| - d_i``. Both stages solve
their 2-unknown normal equations in closed form (Cramer's rule on the
2x2 system) rather than through LAPACK: every floating-point operation
is then an elementwise ufunc or a contiguous 1-D ``np.sum``, which the
batched solver in :mod:`repro.vec.localization` reproduces bit-for-bit
across whole agent populations at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InsufficientReferencesError, SolverError
from repro.localization.references import LocationReference
from repro.utils.geometry import Point

#: Minimum references for an unambiguous 2-D fix.
MIN_REFERENCES = 3

#: Safety factor on the machine-epsilon degeneracy threshold below.
_DEGENERACY_FACTOR = 64.0

#: Keep candidate-anchor distances away from exact zero.
_MIN_DISTANCE_FT = 1e-9


@dataclass(frozen=True)
class MultilaterationResult:
    """A solved position with residual diagnostics.

    Attributes:
        position: the MMSE location estimate.
        rms_residual_ft: root-mean-square range residual at the solution;
            large values signal inconsistent (possibly malicious) references.
        iterations: Gauss–Newton iterations used.
    """

    position: Point
    rms_residual_ft: float
    iterations: int


def mmse_multilaterate(
    references: Sequence[LocationReference],
    *,
    max_iterations: int = 50,
    tolerance_ft: float = 1e-6,
) -> MultilaterationResult:
    """Solve for the position that best satisfies the range constraints.

    Args:
        references: at least :data:`MIN_REFERENCES` location references from
            *distinct* beacon locations.
        max_iterations: Gauss–Newton iteration cap.
        tolerance_ft: convergence threshold on the position update norm.

    Raises:
        InsufficientReferencesError: fewer than 3 references, or the beacon
            locations are (numerically) collinear/duplicated.
        SolverError: the iteration diverged.
    """
    if len(references) < MIN_REFERENCES:
        raise InsufficientReferencesError(
            f"need >= {MIN_REFERENCES} references, got {len(references)}"
        )

    anchors = np.array(
        [[r.beacon_location.x, r.beacon_location.y] for r in references], dtype=float
    )
    ranges = np.array([r.measured_distance_ft for r in references], dtype=float)

    seed = _linearized_seed(anchors, ranges)
    x = float(seed[0])
    y = float(seed[1])
    ax = anchors[:, 0]
    ay = anchors[:, 1]

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dx = x - ax
        dy = y - ay
        dists = np.sqrt(dx * dx + dy * dy)
        # Guard against a candidate landing exactly on an anchor.
        dists = np.maximum(dists, _MIN_DISTANCE_FT)
        residuals = dists - ranges
        jx = dx / dists  # d residual / d position, columnwise
        jy = dy / dists
        # Normal equations (J^T J) u = -J^T r for the 2-vector update u,
        # solved by Cramer's rule.
        a = float(np.sum(jx * jx))
        b = float(np.sum(jx * jy))
        c = float(np.sum(jy * jy))
        gx = float(np.sum(jx * residuals))
        gy = float(np.sum(jy * residuals))
        det = a * c - b * b
        if not (det > 0.0 and math.isfinite(det)):
            # Numerically singular normal matrix: every anchor points the
            # same way from the iterate (far-field divergence on mutually
            # inconsistent ranges). No descent direction is recoverable —
            # return the iterate and let the residual diagnostics flag it.
            break
        ux = (b * gy - c * gx) / det
        uy = (b * gx - a * gy) / det
        x = x + ux
        y = y + uy
        if not (math.isfinite(x) and math.isfinite(y)):
            raise SolverError("Gauss-Newton diverged to non-finite position")
        if math.sqrt(ux * ux + uy * uy) < tolerance_ft:
            break

    dx = x - ax
    dy = y - ay
    dists = np.maximum(np.sqrt(dx * dx + dy * dy), _MIN_DISTANCE_FT)
    rms = float(np.sqrt(np.mean((dists - ranges) ** 2)))
    return MultilaterationResult(
        position=Point(x, y),
        rms_residual_ft=rms,
        iterations=iterations,
    )


def _linearized_seed(anchors: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """Classic linearization: subtract the last equation from the others.

    ``||x - b_i||^2 - ||x - b_n||^2 = d_i^2 - d_n^2`` is linear in x.
    The 2-unknown least-squares system is solved through its normal
    equations in closed form; rank deficiency (collinear or duplicated
    anchors) is detected on the normal-matrix determinant against a
    trace-scaled machine-epsilon threshold, which flags exact and
    near-exact degeneracy with orders-of-magnitude margin while leaving
    well-spread geometries untouched.
    """
    lx = anchors[-1, 0]
    ly = anchors[-1, 1]
    d_last = ranges[-1]
    mx = 2.0 * (lx - anchors[:-1, 0])
    my = 2.0 * (ly - anchors[:-1, 1])
    b_rows = (
        ranges[:-1] ** 2
        - d_last**2
        - (anchors[:-1, 0] ** 2 + anchors[:-1, 1] ** 2)
        + (lx**2 + ly**2)
    )
    p = float(np.sum(mx * mx))
    q = float(np.sum(mx * my))
    r = float(np.sum(my * my))
    det = p * r - q * q
    trace = p + r
    rows = max(anchors.shape[0] - 1, 2)
    threshold = trace * trace * rows * float(np.finfo(float).eps) * _DEGENERACY_FACTOR
    if det <= threshold:
        raise InsufficientReferencesError(
            "beacon locations are collinear or duplicated; 2-D fix is ambiguous"
        )
    tx = float(np.sum(mx * b_rows))
    ty = float(np.sum(my * b_rows))
    return np.array([(r * tx - q * ty) / det, (p * ty - q * tx) / det])


def location_error_ft(estimate: Point, truth: Point) -> float:
    """Euclidean localization error — the evaluation's quality metric."""
    return estimate.distance_to(truth)
