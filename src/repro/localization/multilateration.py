"""Minimum-mean-square-error multilateration.

The paper's stage-2 solver: "consider the location references as constraints
a sensor node's location must satisfy, and estimate it by finding a
mathematical solution that satisfies these constraints with minimum
estimation error."

Implementation: a linearized least-squares seed (subtracting the last
range equation turns the system linear) refined by Gauss–Newton iterations
on the true nonlinear residual ``||x - b_i|| - d_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InsufficientReferencesError, SolverError
from repro.localization.references import LocationReference
from repro.utils.geometry import Point

#: Minimum references for an unambiguous 2-D fix.
MIN_REFERENCES = 3


@dataclass(frozen=True)
class MultilaterationResult:
    """A solved position with residual diagnostics.

    Attributes:
        position: the MMSE location estimate.
        rms_residual_ft: root-mean-square range residual at the solution;
            large values signal inconsistent (possibly malicious) references.
        iterations: Gauss–Newton iterations used.
    """

    position: Point
    rms_residual_ft: float
    iterations: int


def mmse_multilaterate(
    references: Sequence[LocationReference],
    *,
    max_iterations: int = 50,
    tolerance_ft: float = 1e-6,
) -> MultilaterationResult:
    """Solve for the position that best satisfies the range constraints.

    Args:
        references: at least :data:`MIN_REFERENCES` location references from
            *distinct* beacon locations.
        max_iterations: Gauss–Newton iteration cap.
        tolerance_ft: convergence threshold on the position update norm.

    Raises:
        InsufficientReferencesError: fewer than 3 references, or the beacon
            locations are (numerically) collinear/duplicated.
        SolverError: the iteration diverged.
    """
    if len(references) < MIN_REFERENCES:
        raise InsufficientReferencesError(
            f"need >= {MIN_REFERENCES} references, got {len(references)}"
        )

    anchors = np.array(
        [[r.beacon_location.x, r.beacon_location.y] for r in references], dtype=float
    )
    ranges = np.array([r.measured_distance_ft for r in references], dtype=float)

    seed = _linearized_seed(anchors, ranges)
    position = seed.copy()

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        deltas = position - anchors  # (n, 2)
        dists = np.linalg.norm(deltas, axis=1)
        # Guard against a candidate landing exactly on an anchor.
        dists = np.maximum(dists, 1e-9)
        residuals = dists - ranges
        jacobian = deltas / dists[:, None]  # d residual / d position
        update, *_ = np.linalg.lstsq(jacobian, -residuals, rcond=None)
        position = position + update
        if not np.all(np.isfinite(position)):
            raise SolverError("Gauss-Newton diverged to non-finite position")
        if float(np.linalg.norm(update)) < tolerance_ft:
            break

    deltas = position - anchors
    dists = np.maximum(np.linalg.norm(deltas, axis=1), 1e-9)
    rms = float(np.sqrt(np.mean((dists - ranges) ** 2)))
    return MultilaterationResult(
        position=Point(float(position[0]), float(position[1])),
        rms_residual_ft=rms,
        iterations=iterations,
    )


def _linearized_seed(anchors: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """Classic linearization: subtract the last equation from the others.

    ``||x - b_i||^2 - ||x - b_n||^2 = d_i^2 - d_n^2`` is linear in x.
    """
    last = anchors[-1]
    d_last = ranges[-1]
    a_rows = 2.0 * (last - anchors[:-1])
    b_rows = (
        ranges[:-1] ** 2
        - d_last**2
        - np.sum(anchors[:-1] ** 2, axis=1)
        + np.sum(last**2)
    )
    if np.linalg.matrix_rank(a_rows) < 2:
        raise InsufficientReferencesError(
            "beacon locations are collinear or duplicated; 2-D fix is ambiguous"
        )
    seed, *_ = np.linalg.lstsq(a_rows, b_rows, rcond=None)
    return seed


def location_error_ft(estimate: Point, truth: Point) -> float:
    """Euclidean localization error — the evaluation's quality metric."""
    return estimate.distance_to(truth)
