"""Batched pairwise geometry kernels.

Distances and range masks over whole node populations. The subtlety is
exactness: the scalar substrate decides membership with
``math.hypot(dx, dy) <= radius`` and ``math.hypot`` is correctly
rounded, while ``sqrt(dx*dx + dy*dy)`` in NumPy accumulates up to a few
ulps of error — enough to flip a node sitting on the range boundary.
:func:`within_range_mask` therefore classifies with a guard band:
points whose vectorized distance is clearly inside or clearly outside
(beyond a relative margin much wider than the kernel's worst-case
rounding) are decided in bulk, and only the vanishing boundary band is
re-checked with scalar ``math.hypot``. The mask is bit-identical to the
scalar predicate for every input.

Paper section: §4 (reachability geometry of the evaluation field)
"""

from __future__ import annotations

import math

import numpy as np

#: Relative half-width of the boundary band that gets the exact scalar
#: re-check. The vectorized distance is within ~3 ulps (~7e-16 relative)
#: of the true value, so 1e-12 is > 3 orders of magnitude of safety
#: margin while keeping the band practically empty for random layouts.
_GUARD_REL = 1e-12


def pairwise_distances(
    xs: np.ndarray, ys: np.ndarray, cx: float, cy: float
) -> np.ndarray:
    """Euclidean distances from ``(cx, cy)`` to each ``(xs, ys)`` point.

    Uses ``np.hypot`` — accurate to a few ulps, suitable wherever the
    consumer tolerates float rounding (delays, diagnostics). Exact
    in/out decisions against a radius must go through
    :func:`within_range_mask` instead.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    return np.hypot(xs - cx, ys - cy)


def within_range_mask(
    xs: np.ndarray, ys: np.ndarray, cx: float, cy: float, radius_ft: float
) -> np.ndarray:
    """Boolean mask: ``math.hypot(x - cx, y - cy) <= radius_ft``, exactly.

    Clear cases are decided vectorized; points inside the relative
    guard band around ``radius_ft`` are re-checked one by one with the
    correctly rounded scalar ``math.hypot``, so the mask agrees with
    the scalar membership test bit for bit.

    Args:
        xs: ``(n,)`` x coordinates.
        ys: ``(n,)`` y coordinates.
        cx: query-center x.
        cy: query-center y.
        radius_ft: the range threshold (must be finite and >= 0 for a
            meaningful band; NaN radius yields an all-False mask, as
            the scalar comparison would).

    Returns:
        ``(n,)`` bool array.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    approx = np.hypot(xs - cx, ys - cy)
    band = abs(radius_ft) * _GUARD_REL
    mask = approx <= radius_ft - band
    boundary = np.flatnonzero(
        ~mask & (approx <= radius_ft + band) & np.isfinite(approx)
    )
    for i in boundary:
        if math.hypot(float(xs[i]) - cx, float(ys[i]) - cy) <= radius_ft:
            mask[i] = True
    return mask


def within_range_matrix(
    xs: np.ndarray,
    ys: np.ndarray,
    cxs: np.ndarray,
    cys: np.ndarray,
    radius_ft: float,
) -> np.ndarray:
    """All-pairs range mask, exact: one row per query center.

    ``result[i, j]`` is ``math.hypot(xs[j] - cxs[i], ys[j] - cys[i])
    <= radius_ft`` decided exactly — the same guard-band construction
    as :func:`within_range_mask`, applied to the full (m, n) matrix so
    a whole population of queriers resolves in one kernel call.

    Args:
        xs: ``(n,)`` candidate x coordinates.
        ys: ``(n,)`` candidate y coordinates.
        cxs: ``(m,)`` query-center x coordinates.
        cys: ``(m,)`` query-center y coordinates.
        radius_ft: the range threshold.

    Returns:
        ``(m, n)`` bool array.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    cxs = np.asarray(cxs, dtype=np.float64)
    cys = np.asarray(cys, dtype=np.float64)
    approx = np.hypot(xs[None, :] - cxs[:, None], ys[None, :] - cys[:, None])
    band = abs(radius_ft) * _GUARD_REL
    mask = approx <= radius_ft - band
    boundary = np.argwhere(
        ~mask & (approx <= radius_ft + band) & np.isfinite(approx)
    )
    for i, j in boundary:
        exact = math.hypot(
            float(xs[j]) - float(cxs[i]), float(ys[j]) - float(cys[i])
        )
        if exact <= radius_ft:
            mask[i, j] = True
    return mask


def count_within_range(
    xs: np.ndarray,
    ys: np.ndarray,
    cx: float,
    cy: float,
    radius_ft: float,
    *,
    exclude: np.ndarray = None,
) -> int:
    """Number of points within ``radius_ft`` of ``(cx, cy)``.

    Args:
        xs: ``(n,)`` x coordinates.
        ys: ``(n,)`` y coordinates.
        cx: query-center x.
        cy: query-center y.
        radius_ft: the range threshold.
        exclude: optional ``(n,)`` bool mask of points that never count
            (e.g. the malicious-beacon rows of an N' query).

    Returns:
        The exact count the scalar membership scan would produce.
    """
    mask = within_range_mask(xs, ys, cx, cy, radius_ft)
    if exclude is not None:
        mask &= ~np.asarray(exclude, dtype=bool)
    return int(np.count_nonzero(mask))
