"""Struct-of-arrays views of network topology state.

The event-driven substrate stores nodes as Python objects; the batch
kernels want columnar ``float64`` arrays. :func:`topology_arrays`
derives them once and caches the result on the network, keyed by
:attr:`repro.sim.network.Network.topology_version` — node additions,
moves, and wormhole installs bump the version, so a stale view is
rebuilt on the next query instead of being invalidated eagerly.

Paper section: §4 (deployment geometry behind the batch kernels)
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import List, Set

import numpy as np

from repro.vec.geometry import count_within_range

#: Attribute under which the cached view lives on the Network instance.
_CACHE_ATTR = "_vec_topology_arrays"


@dataclass(frozen=True)
class TopologyArrays:
    """Columnar snapshot of the deployed node population.

    Rows are sorted by ``node_id`` (the same order
    ``Network.nodes()`` returns), so row ``i`` of every column
    describes the same node.

    Attributes:
        version: the ``topology_version`` this view was derived at.
        node_ids: ``(n,)`` int64 primary identities.
        xs: ``(n,)`` float64 x coordinates (feet).
        ys: ``(n,)`` float64 y coordinates (feet).
        is_beacon: ``(n,)`` bool beacon-role flags.
    """

    version: int
    node_ids: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    is_beacon: np.ndarray

    @property
    def count(self) -> int:
        """Number of nodes in the snapshot."""
        return int(self.node_ids.shape[0])


def topology_arrays(network) -> TopologyArrays:
    """The cached SoA view of ``network``, rebuilt when topology moved.

    Args:
        network: a :class:`repro.sim.network.Network`.

    Returns:
        The current :class:`TopologyArrays`; identical object on
        repeated calls while ``network.topology_version`` is unchanged.
    """
    version = network.topology_version
    cached = getattr(network, _CACHE_ATTR, None)
    if cached is not None and cached.version == version:
        return cached
    nodes = network.nodes()
    view = TopologyArrays(
        version=version,
        node_ids=np.array([n.node_id for n in nodes], dtype=np.int64),
        xs=np.array([n.position.x for n in nodes], dtype=np.float64),
        ys=np.array([n.position.y for n in nodes], dtype=np.float64),
        is_beacon=np.array([n.is_beacon for n in nodes], dtype=bool),
    )
    setattr(network, _CACHE_ATTR, view)
    return view


def requester_counts_vectorized(
    network,
    malicious_beacons,
    malicious_ids: Set[int],
    comm_range_ft: float,
) -> List[int]:
    """The N' spatial scan as one masked range-count per malicious beacon.

    Matches the scalar ``_requester_counts`` exactly: for each malicious
    beacon, count every deployed node within ``comm_range_ft`` of it
    whose identity is not malicious (membership decided by the
    guard-banded exact mask, so boundary nodes agree with the scalar
    ``distance(...) <= comm_range_ft`` predicate bit for bit).
    """
    view = topology_arrays(network)
    exclude = np.isin(
        view.node_ids, np.array(sorted(malicious_ids), dtype=np.int64)
    )
    return [
        count_within_range(
            view.xs,
            view.ys,
            beacon.position.x,
            beacon.position.y,
            comm_range_ft,
            exclude=exclude,
        )
        for beacon in malicious_beacons
    ]
