"""Batched localization phase and Gauss-Newton multilateration.

The request/reply exchange mirrors the scalar
``run_localization``/``NonBeaconAgent`` flow through the replay engine
(revoked-beacon filtering first — it precedes the RTT draw in the
scalar handler — then one batched RTT draw over the surviving replies
in reply order, then the real filter cascade per reply). Position
solving groups agents by reference count and runs every group through
one batched Gauss-Newton: because the scalar solver in
:mod:`repro.localization.multilateration` does all of its linear
algebra in closed form (elementwise ufuncs plus contiguous 1-D sums),
each batched iterate is the *bit-identical* float sequence of the
scalar per-agent iterate, and every estimate — converged, cap-limited,
or stalled — matches the reference path exactly. Only a row that
diverges to a non-finite position leaves the batch: it is re-run
through the scalar solver so the identical ``SolverError`` surfaces.

Paper section: §4 (stage-2 localization over the batch substrate)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.replay_filter import FilterDecision
from repro.localization.multilateration import (
    _DEGENERACY_FACTOR,
    _MIN_DISTANCE_FT,
    mmse_multilaterate,
)
from repro.sim.messages import BeaconRequest
from repro.utils.geometry import Point
from repro.utils.geometry import distance
from repro.vec.measurement import batched_rtt
from repro.vec.replay import PhaseReplay

#: Gauss-Newton iteration cap (matches the scalar solver's default).
_MAX_ITERATIONS = 50
#: Convergence threshold on the position-update norm (scalar default).
_TOLERANCE_FT = 1e-6


def run_localization_vectorized(pipeline) -> None:
    """Drop-in replacement for ``run_localization`` on the batch path.

    Gathers references with exact draw parity; estimation itself is
    deferred to :func:`batched_estimate_errors`, which the pipeline's
    metrics phase calls (as the scalar path does via
    ``estimate_position``). Fault-free configurations take the fully
    array-built turbo tier; everything else replays per delivery.
    """
    from repro.vec.turbo import run_localization_turbo, turbo_supported

    if turbo_supported(pipeline):
        run_localization_turbo(pipeline)
        return
    replay = PhaseReplay(pipeline)
    t0 = pipeline.engine.now()
    for agent in pipeline.agents:
        if pipeline._initiator_down(agent):
            continue
        for beacon in pipeline._reachable_beacons(agent):
            request = BeaconRequest(
                src_id=agent.node_id,
                dst_id=beacon.node_id,
                nonce=agent._next_nonce,
            )
            agent._next_nonce += 1
            replay.unicast(agent, request, t0)
    for entry, reception in replay.deliver(replay.close_wave()):
        replay.serve_request(entry.dst, reception.packet, entry.time)
    delivered = list(replay.deliver(replay.close_wave()))
    # Revocation filtering precedes the RTT draw in the scalar handler,
    # and no new revocations occur during localization (only detecting
    # beacons alert), so filtering the whole batch up front is exact.
    kept = [
        (entry, reception)
        for entry, reception in delivered
        if reception.packet.src_id not in entry.dst.revoked_beacons
    ]
    network = pipeline.network
    injector = network.fault_injector
    rtts = batched_rtt(
        network.rngs.stream("rtt"),
        network.rtt_model,
        [
            distance(entry.dst.position, reception.transmission.tx_origin)
            for entry, reception in kept
        ],
        [reception.transmission.extra_delay_cycles for _, reception in kept],
        [entry.time for entry, _ in kept],
    )
    pipeline._vec_bump("rtt_batched", len(kept))
    perturbs = injector is not None and injector.perturbs_rtt()
    for index, (entry, reception) in enumerate(kept):
        agent = entry.dst
        rtt = float(rtts[index])
        if perturbs:
            rtt = injector.perturb_rtt(rtt, observer_id=agent.node_id)
        if network.rtt_observer is not None:
            network.rtt_observer(rtt, agent)
        decision = agent.filter_cascade.evaluate(
            reception, agent.position, rtt, receiver_knows_location=False
        )
        if decision is not FilterDecision.ACCEPT:
            agent.rejected_replays += 1
            continue
        agent.references.append(agent.reference_from(reception))
    replay.finish()


def batched_estimate_errors(agents) -> List[float]:
    """Solve every solvable agent's position; return errors in agent order.

    Mirrors the metrics-phase loop: agents with fewer than three
    distinct references (or a rank-deficient linear seed) are skipped
    exactly as the scalar ``InsufficientReferencesError`` path skips
    them; every solved agent gets ``estimated_position`` set and
    contributes ``location_error_ft()``, bit-identical to the scalar
    solver. Agents whose batched iterate goes non-finite are re-run
    through the scalar solver so divergence surfaces as the same
    ``SolverError``.
    """
    prepared: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
    for agent in agents:
        prepared.append(_prepare(agent))
    solutions = _solve_groups(agents, prepared)
    errors: List[float] = []
    for agent, solution in zip(agents, solutions):
        if solution is None:
            continue
        agent.estimated_position = solution
        errors.append(agent.location_error_ft())
    return errors


def _prepare(agent) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Distinct-reference anchor columns/ranges for one agent, or None.

    Reference dedup (latest per beacon id, sorted by id) and the
    minimum-count check reproduce ``NonBeaconAgent.estimate_position``.
    """
    distinct: Dict[int, object] = {}
    for ref in agent.references:
        distinct[ref.beacon_id] = ref
    refs = [distinct[k] for k in sorted(distinct)]
    if len(refs) < 3:
        return None
    ax = np.array([r.beacon_location.x for r in refs], dtype=float)
    ay = np.array([r.beacon_location.y for r in refs], dtype=float)
    ranges = np.array([r.measured_distance_ft for r in refs], dtype=float)
    return ax, ay, ranges


def _solve_groups(agents, prepared) -> List[Optional[Point]]:
    """Batched closed-form Gauss-Newton over agents grouped by count."""
    solutions: List[Optional[Point]] = [None] * len(agents)
    groups: Dict[int, List[int]] = {}
    for index, prep in enumerate(prepared):
        if prep is None:
            continue
        groups.setdefault(prep[0].shape[0], []).append(index)
    for count, members in sorted(groups.items()):
        axs = np.stack([prepared[i][0] for i in members])  # (g, n)
        ays = np.stack([prepared[i][1] for i in members])  # (g, n)
        ranges = np.stack([prepared[i][2] for i in members])  # (g, n)
        xs, ys, seeded = _batched_seed(axs, ays, ranges)
        keep = np.flatnonzero(seeded)
        if keep.size == 0:
            continue
        xs, ys, broken = _gauss_newton(
            xs[keep], ys[keep], axs[keep], ays[keep], ranges[keep]
        )
        for row, keep_row in enumerate(keep):
            index = members[int(keep_row)]
            if broken[row]:
                # Divergence to a non-finite iterate: reproduce the
                # scalar outcome — its SolverError — with the
                # reference solver on the identical reference set.
                result = mmse_multilaterate(
                    [
                        r
                        for _, r in sorted(
                            {
                                ref.beacon_id: ref
                                for ref in agents[index].references
                            }.items()
                        )
                    ]
                )
                solutions[index] = result.position
                continue
            solutions[index] = Point(float(xs[row]), float(ys[row]))
    return solutions


def _batched_seed(
    axs: np.ndarray, ays: np.ndarray, ranges: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Every row's linearized seed at once — ``_linearized_seed`` batched.

    Elementwise ops and per-row contiguous sums replicate the scalar
    seed (formulas, degeneracy test, and Cramer solve) bit for bit.

    Returns:
        ``(x, y, seeded)`` — seed coordinates per row, and a mask that
        is False exactly where the scalar path raises
        ``InsufficientReferencesError`` (collinear/duplicated anchors).
    """
    lx = axs[:, -1]
    ly = ays[:, -1]
    d_last = ranges[:, -1]
    mx = 2.0 * (lx[:, None] - axs[:, :-1])
    my = 2.0 * (ly[:, None] - ays[:, :-1])
    b_rows = (
        ranges[:, :-1] ** 2
        - (d_last**2)[:, None]
        - (axs[:, :-1] ** 2 + ays[:, :-1] ** 2)
        + (lx**2 + ly**2)[:, None]
    )
    p = np.sum(mx * mx, axis=1)
    q = np.sum(mx * my, axis=1)
    r = np.sum(my * my, axis=1)
    det = p * r - q * q
    trace = p + r
    rows = max(axs.shape[1] - 1, 2)
    threshold = (
        trace * trace * rows * float(np.finfo(float).eps) * _DEGENERACY_FACTOR
    )
    seeded = ~(det <= threshold)
    tx = np.sum(mx * b_rows, axis=1)
    ty = np.sum(my * b_rows, axis=1)
    with np.errstate(all="ignore"):
        x = (r * tx - q * ty) / det
        y = (p * ty - q * tx) / det
    return x, y, seeded


def _gauss_newton(
    xs: np.ndarray,
    ys: np.ndarray,
    axs: np.ndarray,
    ays: np.ndarray,
    ranges: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Iterate all systems of one size together, bit-exact per row.

    Each iteration gathers the still-active rows and evaluates the
    scalar solver's step — distances, residuals, Jacobian columns,
    closed-form normal equations — as fresh elementwise arrays, so
    per-row reductions are the same contiguous 1-D sums the scalar
    loop performs. Rows leave the active set exactly when the scalar
    loop would leave its iteration: on convergence (update norm below
    tolerance, after applying the update), on a stalled normal matrix
    (non-positive or non-finite determinant, before applying), or at
    the iteration cap.

    Returns:
        ``(xs, ys, broken)`` — final positions per row, plus a mask of
        rows whose iterate went non-finite (the scalar ``SolverError``
        path); the caller re-runs those through the scalar solver.
    """
    count = xs.shape[0]
    broken = np.zeros(count, dtype=bool)
    active = np.arange(count)
    for _ in range(_MAX_ITERATIONS):
        cx = xs[active]
        cy = ys[active]
        dx = cx[:, None] - axs[active]
        dy = cy[:, None] - ays[active]
        dists = np.sqrt(dx * dx + dy * dy)
        dists = np.maximum(dists, _MIN_DISTANCE_FT)
        residuals = dists - ranges[active]
        jx = dx / dists
        jy = dy / dists
        a = np.sum(jx * jx, axis=1)
        b = np.sum(jx * jy, axis=1)
        c = np.sum(jy * jy, axis=1)
        gx = np.sum(jx * residuals, axis=1)
        gy = np.sum(jy * residuals, axis=1)
        det = a * c - b * b
        live = (det > 0.0) & np.isfinite(det)
        with np.errstate(all="ignore"):
            ux = (b * gy - c * gx) / det
            uy = (b * gx - a * gy) / det
            nx = cx + ux
            ny = cy + uy
            converged = np.sqrt(ux * ux + uy * uy) < _TOLERANCE_FT
        applied = active[live]
        xs[applied] = nx[live]
        ys[applied] = ny[live]
        finite = np.isfinite(nx) & np.isfinite(ny)
        broken[active[live & ~finite]] = True
        active = active[live & finite & ~converged]
        if active.size == 0:
            break
    return xs, ys, broken
