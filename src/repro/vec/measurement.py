"""Batched measurement-model kernels with exact RNG-stream parity.

Each kernel consumes raw draws from the *same* named ``random.Random``
stream the scalar path uses, in the same order, and reproduces the
scalar arithmetic operation for operation:

- CPython's ``rng.uniform(a, b)`` is ``a + (b - a) * rng.random()``;
  :func:`batched_uniform` pulls ``n`` raw ``random()`` values and
  applies the identical expression elementwise, so every element is
  bit-identical to the corresponding scalar call.
- :class:`~repro.sim.timing.RttModel` draws five uniforms per sample
  (``d1..d4`` then the receiver processing time) and combines them with
  a fixed left-associated chain; :func:`batched_rtt` pulls ``5 * n``
  raws, reshapes, and evaluates the same chain elementwise —
  bit-identical again, because IEEE-754 addition/multiplication of
  identical operands is deterministic.

The §2.1 discrepancy check and the §2.2.2 window test are pure
comparisons of already-computed floats, so their mask kernels are
trivially exact.

Paper section: §2.1, §2.2.2 (measurement models behind the checks)
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.timing import _SPEED_OF_LIGHT_FT_PER_CYCLE, RttModel


def raw_uniforms(rng: random.Random, n: int) -> np.ndarray:
    """``n`` sequential ``rng.random()`` draws as a float64 array.

    The draws advance ``rng`` exactly as ``n`` scalar calls would —
    this is the primitive every stream-parity kernel builds on.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if n == 0:
        return np.empty(0, dtype=np.float64)
    # iter(rng.random, None) never hits its sentinel; fromiter's count
    # stops it after exactly n calls — same draws, no list round trip.
    return np.fromiter(iter(rng.random, None), dtype=np.float64, count=n)


def batched_uniform(
    rng: random.Random, n: int, low: float, high: float
) -> np.ndarray:
    """``n`` draws bit-identical to ``[rng.uniform(low, high)] * n``.

    Mirrors CPython's ``uniform``: ``low + (high - low) * random()``,
    evaluated elementwise over the raw draws.
    """
    raws = raw_uniforms(rng, n)
    return low + (high - low) * raws


def batched_rtt(
    rng: random.Random,
    model: RttModel,
    distances_ft: np.ndarray,
    extra_delay_cycles: np.ndarray,
    start_times: np.ndarray,
) -> np.ndarray:
    """``n`` register-level RTTs bit-identical to scalar ``model.sample``.

    Consumes ``5 * n`` raw draws from ``rng`` in scalar order (per
    sample: d1, d2, d3, d4, processing) and evaluates the scalar
    timestamp chain ``t2 = t1 + d1 + flight + d2``,
    ``t3 = t2 + processing``,
    ``t4 = t3 + d3 + flight + d4 + extra``, returning
    ``(t4 - t1) - (t3 - t2)`` elementwise.

    Args:
        rng: the shared ``"rtt"`` stream.
        model: the (frozen) hardware-delay model.
        distances_ft: ``(n,)`` requester-responder distances.
        extra_delay_cycles: ``(n,)`` replay/tunnel delays.
        start_times: ``(n,)`` absolute t1 cycles per exchange.

    Raises:
        ConfigurationError: any distance or extra delay is negative
            (the scalar sampler's validation, applied batch-wide).
    """
    dists = np.asarray(distances_ft, dtype=np.float64)
    extras = np.asarray(extra_delay_cycles, dtype=np.float64)
    starts = np.asarray(start_times, dtype=np.float64)
    if dists.shape != extras.shape or dists.shape != starts.shape:
        raise ConfigurationError(
            f"shape mismatch: {dists.shape}, {extras.shape}, {starts.shape}"
        )
    if np.any(dists < 0):
        raise ConfigurationError("distance_ft must be >= 0")
    if np.any(extras < 0):
        raise ConfigurationError("extra_delay_cycles must be >= 0")
    n = dists.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)
    raws = raw_uniforms(rng, 5 * n).reshape(n, 5)
    base = model.base_delay_cycles
    jitter = model.jitter_cycles
    # delay() is base + uniform(0, jitter); 0.0 + jitter*u == jitter*u
    # bitwise for u >= 0, so the scalar expression reduces to this.
    d1 = base + jitter * raws[:, 0]
    d2 = base + jitter * raws[:, 1]
    d3 = base + jitter * raws[:, 2]
    d4 = base + jitter * raws[:, 3]
    processing = 1e4 + (1e6 - 1e4) * raws[:, 4]
    flight = dists / _SPEED_OF_LIGHT_FT_PER_CYCLE
    t1 = starts
    t2 = t1 + d1 + flight + d2
    t3 = t2 + processing
    t4 = t3 + d3 + flight + d4 + extras
    return (t4 - t1) - (t3 - t2)


def batched_calibration_rtts(
    model: RttModel, rng: random.Random, samples: int, distance_ft: float
) -> list:
    """The calibration phase's RTT draws as one array kernel.

    Bit-identical to ``model.sample_rtts(rng, samples,
    distance_ft=distance_ft)`` — the scalar loop behind
    :func:`repro.core.rtt.calibrate_rtt` — and leaves ``rng`` in the
    identical state (exactly ``5 * samples`` raw draws, in scalar
    order). Calibration is attack-free by construction, so every sample
    shares one distance, zero extra delay, and a zero start time; the
    general :func:`batched_rtt` chain reduces to a constant-operand
    evaluation over the raw draws.

    Returns a plain list of floats so the result drops into
    :func:`repro.core.rtt.calibration_from_samples` (and the perturb/
    observe hooks) exactly like the scalar sampler's output.
    """
    if samples <= 0:
        raise ConfigurationError(f"n must be > 0, got {samples}")
    n = int(samples)
    rtts = batched_rtt(
        rng,
        model,
        np.full(n, float(distance_ft), dtype=np.float64),
        np.zeros(n, dtype=np.float64),
        np.zeros(n, dtype=np.float64),
    )
    return rtts.tolist()


def discrepancy_mask(
    calculated_ft: np.ndarray,
    measured_ft: np.ndarray,
    threshold_ft,
) -> np.ndarray:
    """The §2.1 check as a mask: ``|calculated - measured| > threshold``.

    ``True`` marks a malicious beacon signal. Both inputs are floats
    the caller already computed (calculated distances via the correctly
    rounded scalar ``math.hypot``), so subtraction/abs/compare here are
    the exact scalar operations, elementwise.

    Args:
        calculated_ft: ``(n,)`` own-to-declared-location distances.
        measured_ft: ``(n,)`` ranging estimates from the signals.
        threshold_ft: scalar or ``(n,)`` maximum-measurement-error
            bound(s).
    """
    calc = np.asarray(calculated_ft, dtype=np.float64)
    meas = np.asarray(measured_ft, dtype=np.float64)
    return np.abs(calc - meas) > threshold_ft


def rtt_exceeds_mask(rtt_cycles: np.ndarray, x_max_cycles: float) -> np.ndarray:
    """The §2.2.2 local-replay test as a mask: ``rtt > x_max``.

    ``True`` marks an exchange the calibrated window rejects as a
    local replay.
    """
    return np.asarray(rtt_cycles, dtype=np.float64) > x_max_cycles
