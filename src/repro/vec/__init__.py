"""Vectorized batch simulation core.

``repro.vec`` processes whole probe rounds as NumPy arrays instead of
driving every packet through the per-event calendar queue: pairwise
geometry (distances, reachability masks against ``comm_range_ft``),
measurement models (ranging-noise sampling on the same derived RNG
streams the scalar path uses), batched RTT sampling against the
calibrated window, the discrepancy check
``|estimated - derived| > threshold``, and a batched Gauss-Newton
multilateration solver.

The scalar event-driven pipeline remains the reference oracle;
:func:`vectorized_core_supported` gates the configurations the batch
path reproduces draw-for-draw (see ``docs/PERFORMANCE.md`` for the
parity rules, and ``repro.verify.differential_vectorized_core`` for the
oracle that asserts tolerance-identical outcomes). When NumPy is not
importable the package degrades gracefully: the predicate returns False
and the pipeline silently stays on the scalar path.

Paper section: §2.1, §2.2.2, §4 (batched kernels for the paper's hot math)
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every vec test
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is a declared dependency
    HAVE_NUMPY = False


def vectorized_core_supported(config) -> bool:
    """True when the batch core reproduces ``config`` draw-for-draw.

    The replay engine covers the paper's evaluation matrix — wormholes,
    collusion, network loss, the full fault-injection surface, spatial
    index on/off — but not configurations whose control flow interleaves
    extra events with deliveries:

    - ARQ channels (``alert_loss_rate``/``request_loss_rate`` > 0)
      schedule timer events between deliveries;
    - flooded revocation dissemination relays notices during phases;
    - an ``max_events`` budget needs per-event accounting to stop
      mid-phase;
    - rival detectors (``config.detector != "paper"``) make per-exchange
      decisions the batch kernels do not model — they replay only the
      paper's §2.1+§2.2 suite.

    Those run on the scalar oracle path unchanged. The predicate is
    duck-typed on the config attributes so it never imports the
    pipeline module.
    """
    return (
        HAVE_NUMPY
        and config.alert_loss_rate == 0.0
        and config.request_loss_rate == 0.0
        and config.revocation_dissemination == "oracle"
        and config.max_events is None
        and getattr(config, "detector", "paper") == "paper"
    )
