"""Array-built delivery waves for fault-free configurations.

:class:`~repro.vec.replay.PhaseReplay` removes the event queue but
still walks every delivery in Python. In the *fault-free* envelope —
no loss model, no fault injector — every per-copy draw it performs at
scheduling time disappears, and a whole wave collapses into pure
array arithmetic: exact pairwise geometry picks the copies (direct
plus tunnelled, in the scalar ``unicast`` order), one elementwise
expression computes every arrival time, one stable argsort recovers
the engine's ``(time, seq)`` delivery order, and the ranging-noise /
RTT batches consume their streams exactly as the scalar loop would.

Python survives only where the scalar path is genuinely stateful per
item, and each of those loops runs over a small subset in delivery
order: malicious responders (sticky strategy draws), first-seen
wormhole pair verdicts (sticky detector coin flips), probe-outcome and
alert recording, and accepted reference construction. All distances
that feed protocol decisions or measurements are computed with the
correctly rounded scalar ``math.hypot``, so every float matches the
scalar run bit for bit.

One deliberate fidelity cut, documented in ``docs/PERFORMANCE.md``:
this tier does not record per-delivery ``"deliver"`` trace events
(no protocol logic, invariant check, or metric consumes them; the
scalar and replay tiers keep them). The profiling counters
(``stats.distance_evals``, ``stats.spatial_queries``) are credited
with the batch kernels' actual work, which differs from the scalar
grid-walk counts. Configs that need full per-event traces must run
with ``use_vectorized_core=False``.

Paper section: §4 (simulation substrate for the batched pipeline)
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import ResponseKind
from repro.core.detecting import ProbeOutcome
from repro.localization.references import LocationReference
from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.radio import SPEED_OF_LIGHT_FT_PER_CYCLE
from repro.sim.timing import packet_transmission_cycles
from repro.utils.geometry import Point
from repro.vec.arrays import topology_arrays
from repro.vec.geometry import within_range_matrix
from repro.vec.measurement import (
    batched_rtt,
    batched_uniform,
    discrepancy_mask,
)
from repro.wormhole.detector import ProbabilisticWormholeDetector


def turbo_supported(pipeline) -> bool:
    """True when the fully array-built wave path applies.

    Requirements on top of :func:`repro.vec.vectorized_core_supported`:
    no link-loss model and no fault injector (scheduling then draws no
    randomness per copy and nothing ever crashes mid-phase), the
    default bounded-uniform ranging model (recognizable by its
    ``max_error_ft`` tag), out-of-range unicasts configured to drop
    rather than raise, and the stock probabilistic wormhole detector.
    A positive false-alarm rate is supported: the verdict kernel then
    walks the evaluated batch in delivery order so the per-clean-copy
    coins interleave with the sticky tunnel coins exactly as the scalar
    loop draws them (guarded by ``repro-verify --only vectorized_core``).
    Anything else falls back to the per-delivery replay engine, which
    handles the general envelope.
    """
    network = pipeline.network
    if network is None:
        return False
    if network.loss_model is not None or network.fault_injector is not None:
        return False
    if not network.drop_out_of_range:
        return False
    if getattr(network.ranging_error, "max_error_ft", None) is None:
        return False
    if pipeline.benign_beacons:
        cascade = pipeline.benign_beacons[0].filter_cascade
    elif pipeline.agents:
        cascade = pipeline.agents[0].filter_cascade
    else:
        return False
    return isinstance(cascade.wormhole_detector, ProbabilisticWormholeDetector)


def _exact_distances(ax, ay, bx, by) -> np.ndarray:
    """Correctly rounded elementwise distances (scalar ``math.hypot``).

    The subtractions are exact IEEE arithmetic either way; routing the
    hypotenuse through ``math.hypot`` keeps every distance bit-equal to
    the scalar substrate's :func:`repro.utils.geometry.distance`
    (``np.hypot`` can differ by a few ulps — enough to flip a range
    comparison or desynchronize a measured distance).
    """
    dx = np.asarray(ax, dtype=np.float64) - bx
    dy = np.asarray(ay, dtype=np.float64) - by
    return np.array(
        list(map(math.hypot, dx.tolist(), dy.tolist())), dtype=np.float64
    )


class _Field:
    """Per-phase geometric context shared by both waves.

    Holds the SoA topology view, node-id -> row resolution, and exact
    per-node distances to every wormhole endpoint (scalar ``hypot``,
    so every endpoint-range predicate — ``far_end``'s first-match
    selection and ``wormhole_reachable_beacon_ids``'s union — matches
    the scalar :class:`~repro.sim.network.Network` bit for bit).
    """

    def __init__(self, pipeline) -> None:
        network = pipeline.network
        self.pipeline = pipeline
        self.network = network
        self.engine = pipeline.engine
        self.trace = network.trace
        self.radio = network.radio
        self.comm_range_ft = network.radio.comm_range_ft
        self.view = topology_arrays(network)
        self.nodes = network.nodes()
        self.beacon_rows = np.flatnonzero(self.view.is_beacon)
        r = self.comm_range_ft
        #: Per link: (near_a, near_b, latency) over all node rows.
        self.links: List[Tuple[np.ndarray, np.ndarray, float]] = []
        for link in network.wormholes:
            da = _exact_distances(
                self.view.xs, self.view.ys, link.end_a.x, link.end_a.y
            )
            db = _exact_distances(
                self.view.xs, self.view.ys, link.end_b.x, link.end_b.y
            )
            self.links.append((da <= r, db <= r, link.latency_cycles))
        network.stats.distance_evals += 2 * self.view.count * len(self.links)
        self._row_of = {
            int(node_id): row
            for row, node_id in enumerate(self.view.node_ids)
        }
        self._reach = None

    def row(self, node_id: int) -> int:
        """Topology row of a (canonical) node id."""
        return self._row_of[node_id]

    def reachable_beacon_rows(self, row: int) -> np.ndarray:
        """Rows of beacons reachable from node ``row``, sorted by id.

        The exact ``pipeline._reachable_beacons`` membership: directly
        in range, or within range of one tunnel endpoint while the
        beacon is within range of the other (both directions union, as
        in ``wormhole_reachable_beacon_ids``) — self excluded. Row
        order is node-id order, matching the scalar target ordering.
        """
        if self._reach is None:
            view = self.view
            rows = self.beacon_rows
            mask = within_range_matrix(
                view.xs[rows], view.ys[rows], view.xs, view.ys,
                self.comm_range_ft,
            )
            for near_a, near_b, _ in self.links:
                mask |= near_a[:, None] & near_b[rows][None, :]
                mask |= near_b[:, None] & near_a[rows][None, :]
            mask[rows, np.arange(rows.size)] = False
            self.network.stats.distance_evals += int(mask.size)
            self._reach = mask
        self.network.stats.spatial_queries += 1
        return self.beacon_rows[self._reach[row]]


class _Wave:
    """One wave of scheduled copies, expanded and sorted in bulk.

    The constructor performs what ``unicast`` + ``_schedule_delivery``
    + ``close_wave`` do for every packet of a wave: copy expansion in
    scheduling order (direct first, then one tunnelled copy per
    wormhole, packet-major), exact delays, the wave's ranging-noise
    batch, and the stable ``(time, seq)`` delivery sort.

    Attributes (all per *copy*, in scheduling order):
        packet: index into the wave's logical-packet arrays.
        dst_row: receiving node row.
        dist: physical emitter-to-receiver distance (exact; for a
            tunnelled copy, from the exit endpoint — the reception's
            ``tx_origin``).
        extra: accumulated extra delay (reply masking + tunnel latency).
        via_wormhole: tunnelled-copy flag.
        time: arrival cycle.
        measured: receiver ranging estimate (noise batch applied).
        order: indices sorting copies into delivery order.
        undelivered: packet indices that produced no copy at all (the
            scalar ``drop.out_of_range`` case).
    """

    def __init__(
        self,
        field: _Field,
        packet_cls,
        now: np.ndarray,
        origin_rows: np.ndarray,
        dst_rows: np.ndarray,
        direct_dist: np.ndarray,
        extras: np.ndarray,
        biases: np.ndarray,
    ) -> None:
        view = field.view
        count = origin_rows.shape[0]
        slots = 1 + len(field.links)
        valid = np.zeros((count, slots), dtype=bool)
        dists = np.zeros((count, slots), dtype=np.float64)
        extra_m = np.zeros((count, slots), dtype=np.float64)
        valid[:, 0] = direct_dist <= field.comm_range_ft
        dists[:, 0] = direct_dist
        extra_m[:, 0] = extras
        for index, (near_a, near_b, latency) in enumerate(
            field.links, start=1
        ):
            # far_end checks end_a first: a sender near end_a exits at
            # end_b even when it is near both endpoints. The exit
            # distance is the *destination's* distance to that exit.
            sender_near_a = near_a[origin_rows]
            dst_near_exit = np.where(
                sender_near_a, near_b[dst_rows], near_a[dst_rows]
            )
            valid[:, index] = (
                (sender_near_a | near_b[origin_rows]) & dst_near_exit
            )
            exit_x = np.where(
                sender_near_a,
                field.network.wormholes[index - 1].end_b.x,
                field.network.wormholes[index - 1].end_a.x,
            )
            exit_y = np.where(
                sender_near_a,
                field.network.wormholes[index - 1].end_b.y,
                field.network.wormholes[index - 1].end_a.y,
            )
            dists[:, index] = _exact_distances(
                view.xs[dst_rows], view.ys[dst_rows], exit_x, exit_y
            )
            extra_m[:, index] = extras + latency
        field.network.stats.distance_evals += count * len(field.links)
        flat = valid.ravel()
        self.packet = np.repeat(np.arange(count), slots)[flat]
        self.via_wormhole = np.tile(np.arange(slots) > 0, count)[flat]
        self.dst_row = dst_rows[self.packet]
        self.dist = dists.ravel()[flat]
        self.extra = extra_m.ravel()[flat]
        self.undelivered = np.flatnonzero(~valid.any(axis=1))
        # Scalar delay chain, elementwise: packet_time = airtime +
        # dist / c; delay = packet_time + extra; time = now + delay.
        airtime = field.radio.airtime_cycles(packet_cls(src_id=0, dst_id=0))
        packet_time = airtime + self.dist / SPEED_OF_LIGHT_FT_PER_CYCLE
        self.time = now[self.packet] + (packet_time + self.extra)
        # The wave's ranging-noise batch, in scheduling order; measured
        # is the scalar max(0, dist + noise + bias) elementwise.
        model = field.network.ranging_error
        stream = field.network.rngs.stream("ranging")
        noise = batched_uniform(
            stream, self.dist.shape[0], -model.max_error_ft,
            model.max_error_ft,
        )
        self.measured = np.maximum(
            0.0, (self.dist + noise) + biases[self.packet]
        )
        self.order = np.argsort(self.time, kind="stable")
        pipeline = field.pipeline
        pipeline._vec_bump("deliveries", self.count)
        pipeline._vec_bump("noise_batched", self.count)
        pipeline._vec_bump("waves", 1)

    @property
    def count(self) -> int:
        """Number of scheduled (= delivered) copies."""
        return int(self.dist.shape[0])


class _TurboPhase:
    """Shared bookkeeping for one turbo phase (two waves + finish)."""

    def __init__(self, pipeline) -> None:
        self.field = _Field(pipeline)
        self.pipeline = pipeline
        self.total_events = 0
        self.max_time = pipeline.engine.now()
        self._received = np.zeros(self.field.view.count, dtype=np.int64)

    def account(self, wave: _Wave) -> None:
        """Fold one wave's deliveries into engine/network bookkeeping."""
        self.total_events += wave.count
        if wave.count:
            self.max_time = max(self.max_time, float(wave.time.max()))
        self.field.network.stats.deliveries += wave.count
        self._received += np.bincount(
            wave.dst_row, minlength=self._received.shape[0]
        )

    def record_undelivered(
        self, wave: _Wave, now: np.ndarray, src_ids: np.ndarray,
        dst_rows: np.ndarray, kind: str,
    ) -> None:
        """Mirror the scalar ``drop.out_of_range`` trace per dead packet."""
        for index in wave.undelivered:
            self.field.trace.record(
                float(now[index]),
                "drop.out_of_range",
                src=int(src_ids[index]),
                dst=int(self.field.view.node_ids[dst_rows[index]]),
                packet_kind=kind,
            )

    def finish(self) -> None:
        """Fold event count, clock, and received counters into the sim."""
        nodes = self.field.nodes
        for row in np.flatnonzero(self._received):
            nodes[row].received_count += int(self._received[row])
        self.pipeline.engine.absorb_batch(self.total_events, self.max_time)


def _serve_wave(
    phase: _TurboPhase,
    request_wave: _Wave,
    req_src_ids: np.ndarray,
    req_origin_rows: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Serve every delivered request copy; build the reply packet arrays.

    Walks the request wave in delivery order. Benign responders are
    served arithmetically (``requests_served``/``_sequence`` advanced
    by count — the per-reply ``sequence`` field feeds no protocol
    decision, so only the final counters must match); malicious
    responders run their real sticky strategy in a Python loop at the
    exact positions they occupy in that order, so their RNG
    consumption is scalar-exact.

    Returns reply logical-packet arrays, one row per served request
    copy in delivery order: responder row, requester row, reply src id,
    reply dst id (the requester identity echoed from the request),
    claimed x/y, ranging bias, extra reply delay, fake-wormhole-symptom
    flag, and the reply's scheduling time (= request arrival).
    """
    field = phase.field
    order = request_wave.order
    packet = request_wave.packet[order]
    responder_rows = request_wave.dst_row[order]
    times = request_wave.time[order]
    src_ids = req_src_ids[packet]
    requester_rows = req_origin_rows[packet]
    nodes = field.nodes
    view = field.view
    count = packet.shape[0]

    reply_src = view.node_ids[responder_rows]
    biases = np.zeros(count, dtype=np.float64)
    extras = np.zeros(count, dtype=np.float64)
    fakes = np.zeros(count, dtype=bool)

    decl_x = view.xs.copy()
    decl_y = view.ys.copy()
    malicious_mask = np.zeros(view.count, dtype=bool)
    for row in field.beacon_rows:
        node = nodes[row]
        decl_x[row] = node.declared_location.x
        decl_y[row] = node.declared_location.y
        if isinstance(node, MaliciousBeacon):
            malicious_mask[row] = True
    claimed_x = decl_x[responder_rows]
    claimed_y = decl_y[responder_rows]
    is_malicious = malicious_mask[responder_rows]

    # Real sticky adversary decisions, at their delivery-order slots.
    responder_list = responder_rows.tolist()
    src_id_list = src_ids.tolist()
    for position in np.flatnonzero(is_malicious).tolist():
        beacon = nodes[responder_list[position]]
        requester = src_id_list[position]
        decision = beacon.strategy.decide(requester)
        beacon.responses_by_kind[decision] += 1
        if decision is ResponseKind.NORMAL:
            point = beacon.position
        elif decision is ResponseKind.MALICIOUS:
            point = beacon.lie_location_for(requester)
            biases[position] = beacon.strategy.ranging_bias_ft
        elif decision is ResponseKind.MASK_WORMHOLE:
            point = beacon._far_location_for(requester)
            fakes[position] = True
        else:  # ResponseKind.MASK_LOCAL_REPLAY
            point = beacon.lie_location_for(requester)
            reply_bits = BeaconPacket(
                src_id=beacon.node_id, dst_id=0
            ).size_bits
            extras[position] = packet_transmission_cycles(reply_bits)
        claimed_x[position] = point.x
        claimed_y[position] = point.y

    # Per-responder protocol counters, by count.
    served = np.bincount(responder_rows, minlength=view.count)
    for row in np.flatnonzero(served):
        node = nodes[row]
        node.requests_served += int(served[row])
        node._sequence += int(served[row])

    return (
        responder_rows,
        requester_rows,
        reply_src,
        src_ids,
        claimed_x,
        claimed_y,
        biases,
        extras,
        fakes,
        times,
    )


def _wormhole_verdicts(
    detector: ProbabilisticWormholeDetector,
    evaluated: np.ndarray,
    fakes: np.ndarray,
    via_wormhole: np.ndarray,
    requester_ids: np.ndarray,
    src_ids: np.ndarray,
) -> np.ndarray:
    """Batched ``detector.detect`` over one reply batch, draw-exact.

    ``evaluated`` marks the copies the cascade actually hands to the
    detector (the §2.2.1 range check short-circuits the rest).
    ``checks``/``flags`` are bulk-incremented. RNG parity follows the
    scalar branch structure: faked symptoms flag without a draw; a
    genuinely tunnelled copy flips one ``p_d`` coin per first-seen
    (requester, target) pair against the live sticky verdict table; a
    clean copy draws a false-alarm coin only when ``false_alarm_rate``
    is positive. With a zero false-alarm rate (the paper's model) clean
    copies draw nothing, so the tunnel coins are the only draws and the
    sparse loop below visits just those; with a positive rate every
    evaluated copy may draw, so one ordered loop walks the whole batch
    — either way each coin lands exactly where the scalar loop flips
    it, because both loops run in delivery order.
    """
    flagged = np.zeros(evaluated.shape[0], dtype=bool)
    verdicts = detector._verdicts
    rng = detector._rng
    requester_list = requester_ids.tolist()
    src_list = src_ids.tolist()
    if detector.false_alarm_rate > 0.0:
        fakes_list = fakes.tolist()
        via_list = via_wormhole.tolist()
        rate = detector.false_alarm_rate
        for index in np.flatnonzero(evaluated).tolist():
            if fakes_list[index]:
                flagged[index] = True
            elif via_list[index]:
                key = (requester_list[index], src_list[index])
                verdict = verdicts.get(key)
                if verdict is None:
                    verdict = rng.random() < detector.p_d
                    verdicts[key] = verdict
                flagged[index] = verdict
            else:
                flagged[index] = rng.random() < rate
    else:
        flagged[evaluated & fakes] = True
        for index in np.flatnonzero(evaluated & via_wormhole & ~fakes).tolist():
            key = (requester_list[index], src_list[index])
            verdict = verdicts.get(key)
            if verdict is None:
                verdict = rng.random() < detector.p_d
                verdicts[key] = verdict
            flagged[index] = verdict
    detector.checks += int(np.count_nonzero(evaluated))
    detector.flags += int(np.count_nonzero(flagged))
    return flagged


def run_detection_turbo(pipeline) -> None:
    """The detection phase (§2.1-§2.2, §3.1) as two array-built waves."""
    phase = _TurboPhase(pipeline)
    field = phase.field
    t0 = pipeline.engine.now()
    view = field.view

    # ------------------------------------------------------------------
    # Probe fan-out (scalar build order: prober, target, detecting id).
    # ------------------------------------------------------------------
    src_chunks: List[np.ndarray] = []
    dst_chunks: List[np.ndarray] = []
    prober_chunks: List[np.ndarray] = []
    nonce_chunks: List[np.ndarray] = []
    bias_chunks: List[np.ndarray] = []
    for beacon in pipeline.benign_beacons:
        row = field.row(beacon.node_id)
        targets = field.reachable_beacon_rows(row)
        m = len(beacon.detecting_ids)
        probes = targets.shape[0] * m
        if probes == 0:
            continue
        src_chunks.append(
            np.tile(
                np.array(beacon.detecting_ids, dtype=np.int64),
                targets.shape[0],
            )
        )
        dst_chunks.append(np.repeat(targets, m))
        prober_chunks.append(np.full(probes, row, dtype=np.int64))
        nonce_chunks.append(beacon._next_nonce + np.arange(probes))
        beacon._next_nonce += probes
        if beacon.probe_power_randomization_ft > 0.0:
            bias_chunks.append(
                batched_uniform(
                    pipeline.network.rngs.stream("probe-power"),
                    probes,
                    -beacon.probe_power_randomization_ft,
                    beacon.probe_power_randomization_ft,
                )
            )
        else:
            bias_chunks.append(np.zeros(probes, dtype=np.float64))
        pipeline._probes_sent += probes

    if not src_chunks:
        phase.finish()
        return
    req_src = np.concatenate(src_chunks)
    req_dst_rows = np.concatenate(dst_chunks)
    req_origin_rows = np.concatenate(prober_chunks)
    req_biases = np.concatenate(bias_chunks)
    req_dists = _exact_distances(
        view.xs[req_origin_rows],
        view.ys[req_origin_rows],
        view.xs[req_dst_rows],
        view.ys[req_dst_rows],
    )
    field.network.stats.distance_evals += int(req_dists.shape[0])
    req_now = np.full(req_src.shape[0], t0, dtype=np.float64)
    request_wave = _Wave(
        field, BeaconRequest, req_now, req_origin_rows, req_dst_rows,
        req_dists, np.zeros(req_src.shape[0]), req_biases,
    )
    phase.record_undelivered(
        request_wave, req_now, view.node_ids[req_origin_rows],
        req_dst_rows, "BeaconRequest",
    )
    phase.account(request_wave)

    # ------------------------------------------------------------------
    # Serve requests; build and deliver the reply wave.
    # ------------------------------------------------------------------
    (
        resp_rows, prober_rows, reply_src, reply_dst, claimed_x, claimed_y,
        biases, extras, fakes, reply_now,
    ) = _serve_wave(phase, request_wave, req_src, req_origin_rows)
    # Reply direct distance = request direct distance (|dx|, |dy| are
    # identical either way, and hypot is sign-symmetric).
    reply_direct = req_dists[request_wave.packet[request_wave.order]]
    reply_wave = _Wave(
        field, BeaconPacket, reply_now, resp_rows, prober_rows,
        reply_direct, extras, biases,
    )
    phase.record_undelivered(
        reply_wave, reply_now, reply_src, prober_rows, "BeaconPacket",
    )
    phase.account(reply_wave)

    # ------------------------------------------------------------------
    # Process probe replies in delivery order (§2.1, §2.2, §3.1).
    # ------------------------------------------------------------------
    order = reply_wave.order
    rep = reply_wave.packet[order]
    times = reply_wave.time[order]
    measured = reply_wave.measured[order]
    d_prober_rows = prober_rows[rep]
    calculated = _exact_distances(
        view.xs[d_prober_rows], view.ys[d_prober_rows],
        claimed_x[rep], claimed_y[rep],
    )
    field.network.stats.distance_evals += int(calculated.shape[0])
    thresholds = np.array(
        [
            field.nodes[row].signal_detector.max_error_ft
            for row in d_prober_rows
        ],
        dtype=np.float64,
    )
    inconsistent = discrepancy_mask(calculated, measured, thresholds)

    bad = np.flatnonzero(inconsistent)
    rtts = batched_rtt(
        field.network.rngs.stream("rtt"),
        field.network.rtt_model,
        reply_wave.dist[order][bad],
        reply_wave.extra[order][bad],
        times[bad],
    )
    pipeline._vec_bump("rtt_batched", int(bad.shape[0]))
    # Hot Python loops below index these thousands of times; plain
    # lists hold the identical values without per-access conversion.
    rtts_list = rtts.tolist()
    prober_bad = d_prober_rows[bad].tolist()
    observer = field.network.rtt_observer
    if observer is not None:
        for position in range(len(prober_bad)):
            observer(rtts_list[position], field.nodes[prober_bad[position]])

    # The cascade over the inconsistent subset, knows_location=True:
    # the §2.2.1 range check is decisive on its own (no detector call).
    range_flagged = calculated[bad] > field.comm_range_ft
    detector_flagged = _wormhole_verdicts(
        pipeline.benign_beacons[0].filter_cascade.wormhole_detector,
        ~range_flagged,
        fakes[rep][bad],
        reply_wave.via_wormhole[order][bad],
        view.node_ids[d_prober_rows[bad]],
        reply_src[rep][bad],
    )
    wormhole_flagged = range_flagged | detector_flagged
    local_flagged = np.zeros(bad.shape[0], dtype=bool)
    for position in np.flatnonzero(~wormhole_flagged).tolist():
        prober = field.nodes[prober_bad[position]]
        local_flagged[position] = (
            prober.filter_cascade.local_replay_detector.is_replayed(
                rtts_list[position]
            )
        )
    decisions = np.where(
        wormhole_flagged,
        "replayed_wormhole",
        np.where(local_flagged, "replayed_local", "alert"),
    )

    # Outcome/trace/alert recording, in delivery order.
    trace = field.trace
    nodes = field.nodes
    src_list = reply_src[rep].tolist()
    dst_list = reply_dst[rep].tolist()
    times_list = times.tolist()
    prober_list = d_prober_rows.tolist()
    decision_list = ["consistent"] * rep.shape[0]
    for position, index in enumerate(bad.tolist()):
        decision_list[index] = str(decisions[position])
    for index in range(len(decision_list)):
        prober = nodes[prober_list[index]]
        decision = decision_list[index]
        prober.probe_outcomes.append(
            ProbeOutcome(
                detecting_id=dst_list[index],
                target_id=src_list[index],
                decision=decision,
            )
        )
        trace.record(
            times_list[index],
            "probe",
            detector=prober.node_id,
            detecting_id=dst_list[index],
            target=src_list[index],
            decision=decision,
            signal_consistent=decision == "consistent",
        )
        if decision == "alert":
            prober.report_alert(src_list[index], time=times_list[index])

    phase.finish()


def run_localization_turbo(pipeline) -> None:
    """The localization phase (§4 stage 1) as two array-built waves."""
    phase = _TurboPhase(pipeline)
    field = phase.field
    t0 = pipeline.engine.now()
    view = field.view

    # ------------------------------------------------------------------
    # Beacon requests (scalar build order: agent, then target id order).
    # ------------------------------------------------------------------
    src_chunks: List[np.ndarray] = []
    dst_chunks: List[np.ndarray] = []
    agent_chunks: List[np.ndarray] = []
    for agent in pipeline.agents:
        row = field.row(agent.node_id)
        targets = field.reachable_beacon_rows(row)
        k = targets.shape[0]
        if k == 0:
            continue
        src_chunks.append(np.full(k, agent.node_id, dtype=np.int64))
        dst_chunks.append(targets)
        agent_chunks.append(np.full(k, row, dtype=np.int64))
        agent._next_nonce += k

    if not src_chunks:
        phase.finish()
        return
    req_src = np.concatenate(src_chunks)
    req_dst_rows = np.concatenate(dst_chunks)
    req_origin_rows = np.concatenate(agent_chunks)
    req_dists = _exact_distances(
        view.xs[req_origin_rows],
        view.ys[req_origin_rows],
        view.xs[req_dst_rows],
        view.ys[req_dst_rows],
    )
    field.network.stats.distance_evals += int(req_dists.shape[0])
    req_now = np.full(req_src.shape[0], t0, dtype=np.float64)
    request_wave = _Wave(
        field, BeaconRequest, req_now, req_origin_rows, req_dst_rows,
        req_dists, np.zeros(req_src.shape[0]), np.zeros(req_src.shape[0]),
    )
    phase.record_undelivered(
        request_wave, req_now, req_src, req_dst_rows, "BeaconRequest",
    )
    phase.account(request_wave)

    (
        resp_rows, agent_req_rows, reply_src, _reply_dst, claimed_x,
        claimed_y, biases, extras, fakes, reply_now,
    ) = _serve_wave(phase, request_wave, req_src, req_origin_rows)
    reply_direct = req_dists[request_wave.packet[request_wave.order]]
    reply_wave = _Wave(
        field, BeaconPacket, reply_now, resp_rows, agent_req_rows,
        reply_direct, extras, biases,
    )
    phase.record_undelivered(
        reply_wave, reply_now, reply_src, agent_req_rows, "BeaconPacket",
    )
    phase.account(reply_wave)

    # ------------------------------------------------------------------
    # Reference collection in delivery order (§2.2 filters, then §4).
    # ------------------------------------------------------------------
    order = reply_wave.order
    rep = reply_wave.packet[order]
    times = reply_wave.time[order]
    measured = reply_wave.measured[order]
    d_agent_rows = agent_req_rows[rep]
    src_all = reply_src[rep]

    # Revocation filtering precedes the RTT draw in the scalar handler,
    # and no new revocations occur during localization (only detecting
    # beacons alert), so filtering the whole batch up front is exact —
    # the same argument the replay tier relies on.
    agents_by_row = {
        field.row(agent.node_id): agent for agent in pipeline.agents
    }
    src_list = src_all.tolist()
    agent_rows_list = d_agent_rows.tolist()
    kept = np.flatnonzero(
        np.array(
            [
                src_list[i]
                not in agents_by_row[agent_rows_list[i]].revoked_beacons
                for i in range(len(src_list))
            ],
            dtype=bool,
        )
    )
    rtts = batched_rtt(
        field.network.rngs.stream("rtt"),
        field.network.rtt_model,
        reply_wave.dist[order][kept],
        reply_wave.extra[order][kept],
        times[kept],
    )
    pipeline._vec_bump("rtt_batched", int(kept.shape[0]))
    rtts_list = rtts.tolist()
    agent_kept = [agents_by_row[agent_rows_list[i]] for i in kept.tolist()]
    observer = field.network.rtt_observer
    if observer is not None:
        for position in range(len(agent_kept)):
            observer(rtts_list[position], agent_kept[position])

    # Cascade, knows_location=False: every kept copy reaches the
    # wormhole detector; survivors face the per-agent RTT filter.
    wormhole_flagged = _wormhole_verdicts(
        pipeline.agents[0].filter_cascade.wormhole_detector,
        np.ones(kept.shape[0], dtype=bool),
        fakes[rep][kept],
        reply_wave.via_wormhole[order][kept],
        view.node_ids[d_agent_rows[kept]],
        src_all[kept],
    )
    local_flagged = np.zeros(kept.shape[0], dtype=bool)
    for position in np.flatnonzero(~wormhole_flagged).tolist():
        agent = agent_kept[position]
        local_flagged[position] = (
            agent.filter_cascade.local_replay_detector.is_replayed(
                rtts_list[position]
            )
        )
    rejected = wormhole_flagged | local_flagged

    counts = np.bincount(d_agent_rows[kept[rejected]], minlength=view.count)
    for row in np.flatnonzero(counts):
        agents_by_row[int(row)].rejected_replays += int(counts[row])

    claimed_kept_x = claimed_x[rep][kept].tolist()
    claimed_kept_y = claimed_y[rep][kept].tolist()
    measured_kept = measured[kept].tolist()
    times_kept = times[kept].tolist()
    src_kept = src_all[kept].tolist()
    for position in np.flatnonzero(~rejected).tolist():
        agent_kept[position].references.append(
            LocationReference(
                beacon_id=src_kept[position],
                beacon_location=Point(
                    claimed_kept_x[position],
                    claimed_kept_y[position],
                ),
                measured_distance_ft=measured_kept[position],
                received_at=times_kept[position],
            )
        )

    phase.finish()
