"""Batched detection phase (paper §2.1-§2.2 over whole probe rounds).

Stage A emulates every benign beacon's probe fan-out (m detecting IDs x
reachable beacons) into one request wave; request deliveries drive the
real (benign or adversarial) responder logic; the reply wave is then
processed with batched kernels:

- calculated distances per reply via the correctly rounded scalar
  ``math.hypot`` (they are decision inputs and must be bit-exact),
  compared against the measured distances with one §2.1
  :func:`~repro.vec.measurement.discrepancy_mask`;
- one :func:`~repro.vec.measurement.batched_rtt` call over exactly the
  inconsistent replies, in reply order — the same draws the scalar
  path's per-reply ``measure_rtt`` would make;
- the replay-filter cascade, fault RTT perturbation, alert reporting,
  and base-station revocation run on the *real* objects, per reply, in
  the scalar order, so every probabilistic detector draw and every
  revocation stays bit-identical.

Paper section: §2.1-§2.2, §3.1 (the detection round, batched)
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.detecting import DetectingBeacon, ProbeOutcome
from repro.core.replay_filter import FilterDecision
from repro.sim.messages import BeaconRequest
from repro.sim.radio import Reception
from repro.utils.geometry import distance
from repro.vec.measurement import batched_rtt, discrepancy_mask
from repro.vec.replay import Delivery, PhaseReplay


def run_detection_vectorized(pipeline) -> None:
    """Drop-in replacement for ``SecureLocalizationPipeline.run_detection``.

    Produces the same probe outcomes, alerts, revocations, traces, and
    stream states as the scalar phase (exactly — see the parity rules
    in ``docs/PERFORMANCE.md``), without materializing engine events.
    Fault-free configurations take the fully array-built turbo tier;
    everything else replays per delivery.
    """
    from repro.vec.turbo import run_detection_turbo, turbo_supported

    if turbo_supported(pipeline):
        run_detection_turbo(pipeline)
        return
    replay = PhaseReplay(pipeline)
    t0 = pipeline.engine.now()
    for beacon in pipeline.benign_beacons:
        if pipeline._initiator_down(beacon):
            continue
        for target in pipeline._reachable_beacons(beacon):
            for detecting_id in beacon.detecting_ids:
                request = BeaconRequest(
                    src_id=detecting_id,
                    dst_id=target.node_id,
                    nonce=beacon._next_nonce,
                )
                beacon._next_nonce += 1
                bias = 0.0
                if beacon.probe_power_randomization_ft > 0.0:
                    bias = pipeline.network.rngs.stream("probe-power").uniform(
                        -beacon.probe_power_randomization_ft,
                        beacon.probe_power_randomization_ft,
                    )
                replay.unicast(beacon, request, t0, ranging_bias_ft=bias)
            pipeline._probes_sent += len(beacon.detecting_ids)
    for entry, reception in replay.deliver(replay.close_wave()):
        replay.serve_request(entry.dst, reception.packet, entry.time)
    delivered = list(replay.deliver(replay.close_wave()))
    _process_probe_replies(pipeline, delivered)
    replay.finish()


def _process_probe_replies(
    pipeline, delivered: List[Tuple[Delivery, Reception]]
) -> None:
    """Emulate ``DetectingBeacon._handle_probe_reply`` over one batch."""
    if not delivered:
        return
    network = pipeline.network
    injector = network.fault_injector
    trace = network.trace
    calculated = [
        distance(entry.dst.position, reception.packet.claimed_point)
        for entry, reception in delivered
    ]
    measured = [
        reception.measured_distance_ft for _, reception in delivered
    ]
    thresholds = [
        entry.dst.signal_detector.max_error_ft for entry, _ in delivered
    ]
    malicious_mask = discrepancy_mask(calculated, measured, thresholds)
    inconsistent = [
        pair for pair, bad in zip(delivered, malicious_mask) if bad
    ]
    rtts = batched_rtt(
        network.rngs.stream("rtt"),
        network.rtt_model,
        [
            distance(entry.dst.position, reception.transmission.tx_origin)
            for entry, reception in inconsistent
        ],
        [
            reception.transmission.extra_delay_cycles
            for _, reception in inconsistent
        ],
        [entry.time for entry, _ in inconsistent],
    )
    pipeline._vec_bump("rtt_batched", len(inconsistent))
    perturbs = injector is not None and injector.perturbs_rtt()
    next_rtt = 0
    for index, (entry, reception) in enumerate(delivered):
        beacon = entry.dst
        packet = reception.packet
        if not malicious_mask[index]:
            _record(
                trace, beacon, packet.dst_id, packet.src_id,
                "consistent", True, entry.time,
            )
            continue
        rtt = float(rtts[next_rtt])
        next_rtt += 1
        if perturbs:
            rtt = injector.perturb_rtt(rtt, observer_id=beacon.node_id)
        if network.rtt_observer is not None:
            network.rtt_observer(rtt, beacon)
        decision = beacon.filter_cascade.evaluate(
            reception, beacon.position, rtt, receiver_knows_location=True
        )
        if decision is FilterDecision.REPLAYED_WORMHOLE:
            _record(
                trace, beacon, packet.dst_id, packet.src_id,
                "replayed_wormhole", False, entry.time,
            )
        elif decision is FilterDecision.REPLAYED_LOCAL:
            _record(
                trace, beacon, packet.dst_id, packet.src_id,
                "replayed_local", False, entry.time,
            )
        else:
            _record(
                trace, beacon, packet.dst_id, packet.src_id,
                "alert", False, entry.time,
            )
            beacon.report_alert(packet.src_id, time=entry.time)


def _record(
    trace,
    beacon: DetectingBeacon,
    detecting_id: int,
    target_id: int,
    decision: str,
    signal_consistent: bool,
    time: float,
) -> None:
    """Mirror ``DetectingBeacon._record`` at the emulated arrival time."""
    beacon.probe_outcomes.append(
        ProbeOutcome(
            detecting_id=detecting_id,
            target_id=target_id,
            decision=decision,
        )
    )
    trace.record(
        time,
        "probe",
        detector=beacon.node_id,
        detecting_id=detecting_id,
        target=target_id,
        decision=decision,
        signal_consistent=signal_consistent,
    )
