"""Event-free replay of the delivery substrate for whole phases.

The scalar pipeline pushes every packet through the calendar queue: one
closure-carrying :class:`~repro.sim.engine.Event` per delivery, one
MAC sign/verify per packet, one RNG call per noise or jitter draw. The
replay engine produces the identical protocol outcome without any of
that machinery, by exploiting two structural facts of the supported
configurations (see ``docs/PERFORMANCE.md`` for the full argument):

1. **Two-wave structure.** A phase schedules all its requests at one
   instant; request deliveries schedule replies; reply handlers never
   transmit. So a phase is exactly two delivery waves, and processing
   wave 1 fully before wave 2 — each internally sorted by the engine's
   ``(time, seq)`` order — visits every delivery.
2. **Disjoint stream sets.** Scheduling-time streams ("network-loss",
   fault loss/duplication/delay, "ranging") are only touched while
   transmissions are being scheduled; reply-time streams ("rtt", fault
   RTT/drift, "wormhole-detector") only while reply receptions are
   processed. Even when a delayed request would, in global event order,
   arrive after an early reply, the grouped processing consumes every
   stream in the scalar order — so all protocol-relevant draws are
   bit-identical.

Everything stateful stays real: loss models, fault injector hooks,
adversary strategies, filter cascades, the base station. Only the event
objects, the per-packet crypto (every enrolled key verifies, so the
sign/verify round trip is a no-op), and the per-draw RNG calls are
replaced — the latter by batched kernels from
:mod:`repro.vec.measurement` with exact stream parity.

Paper section: §4 (simulation substrate for the batched pipeline)
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import ResponseKind
from repro.errors import DeliveryError
from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.node import Node
from repro.sim.radio import Reception, Transmission
from repro.sim.timing import packet_transmission_cycles
from repro.utils.geometry import distance
from repro.vec.measurement import batched_uniform


@dataclass
class Delivery:
    """One scheduled packet arrival — the replay's analogue of an Event.

    Attributes:
        time: emulated arrival cycle (schedule time + delay).
        seq: monotone ticket breaking same-time ties, assigned in the
            scalar engine's scheduling order.
        transmission: the real in-flight metadata object (shared with
            the Reception handed to protocol code).
        dst: the receiving node (aliases already resolved).
        dist: physical emitter-to-receiver distance (feet).
        noise_slot: index into the wave's ranging-noise batch, or -1
            when the packet carries no ranging signal.
        measured: the receiver's ranging estimate; patched in by
            :meth:`PhaseReplay.close_wave` once the noise batch is
            drawn.
    """

    time: float
    seq: int
    transmission: Transmission
    dst: Node
    dist: float
    noise_slot: int
    measured: float = field(default=0.0)


class PhaseReplay:
    """Mirror of ``Network.unicast``/``_schedule_delivery`` minus events.

    One instance drives one pipeline phase. Usage is two rounds of
    *schedule -> close_wave -> deliver*: the caller emulates the
    phase's initiating transmissions, closes the wave (which draws the
    wave's ranging-noise batch and sorts deliveries into engine event
    order), feeds request deliveries through :meth:`serve_request`
    (scheduling the reply wave), closes again, and processes replies.
    :meth:`finish` folds the emulated event count and clock into the
    engine, so ``events_processed`` and ``now()`` read exactly as if
    the calendar queue had run the schedule.
    """

    def __init__(self, pipeline) -> None:
        """Bind to the pipeline's live network/engine/fault objects."""
        network = pipeline.network
        self.pipeline = pipeline
        self.network = network
        self.engine = pipeline.engine
        self.radio = network.radio
        self.trace = network.trace
        self.loss_model = network.loss_model
        self.injector = network.fault_injector
        self.comm_range_ft = network.radio.comm_range_ft
        self.wormholes = network.wormholes
        self._tickets = itertools.count()
        self._entries: List[Delivery] = []
        self._noise_dists: List[float] = []
        #: Total deliveries scheduled across all waves (the scalar
        #: engine would have executed exactly this many events).
        self.total_events = 0
        #: Latest emulated delivery timestamp seen so far.
        self.max_time = self.engine.now()

    # ------------------------------------------------------------------
    # Scheduling (mirrors Network.unicast / _tunnel / _schedule_delivery)
    # ------------------------------------------------------------------
    def unicast(
        self,
        sender: Node,
        packet,
        now: float,
        *,
        ranging_bias_ft: float = 0.0,
        extra_delay_cycles: float = 0.0,
        fake_wormhole_symptoms: bool = False,
    ) -> bool:
        """Emulate ``Network.unicast`` at emulated time ``now``.

        Same draw sequence, trace records, and copy semantics (direct
        plus one tunnelled copy per wormhole in range) as the scalar
        method; deliveries land in the current wave instead of the
        engine queue.
        """
        network = self.network
        dst = network.node(packet.dst_id)
        injector = self.injector
        if injector is not None and injector.is_crashed(sender.node_id, now):
            self.trace.record(now, "drop.crashed_sender", src=sender.node_id)
            return False
        origin = sender.position
        transmission = Transmission(
            packet=packet,
            tx_origin=origin,
            departure_time=now,
            ranging_bias_ft=ranging_bias_ft,
            replayed_by=None,
            via_wormhole=False,
            extra_delay_cycles=extra_delay_cycles,
            tx_node_id=sender.node_id,
            fake_wormhole_symptoms=fake_wormhole_symptoms,
        )
        delivered = False
        true_dist = distance(origin, dst.position)
        if true_dist <= self.comm_range_ft:
            self._schedule(transmission, dst, true_dist, now)
            delivered = True
        for link in self.wormholes:
            far = link.far_end(origin, self.comm_range_ft)
            if far is None:
                continue
            exit_dist = distance(far, dst.position)
            if exit_dist > self.comm_range_ft:
                continue
            replayed = Transmission(
                packet=packet,
                tx_origin=far,
                departure_time=now,
                ranging_bias_ft=ranging_bias_ft,
                replayed_by=None,
                via_wormhole=True,
                extra_delay_cycles=extra_delay_cycles + link.latency_cycles,
                tx_node_id=sender.node_id,
                fake_wormhole_symptoms=fake_wormhole_symptoms,
            )
            self._schedule(replayed, dst, exit_dist, now)
            delivered = True
        if not delivered:
            self.trace.record(
                now,
                "drop.out_of_range",
                src=sender.node_id,
                dst=dst.node_id,
                packet_kind=packet.kind(),
            )
            if not network.drop_out_of_range:
                raise DeliveryError(
                    f"node {dst.node_id} out of range of {origin} "
                    f"(d={true_dist:.1f} ft > {self.comm_range_ft} ft)"
                )
        return delivered

    def _schedule(
        self, transmission: Transmission, dst: Node, physical_dist: float,
        now: float,
    ) -> None:
        """Mirror ``Network._schedule_delivery``, deferring the noise draw.

        Loss, fault-drop, duplication, and fault-delay draws happen
        here, per copy, in the scalar order (the recursive duplicate
        precedes the original's delay/noise draws, exactly as in the
        scalar method). The ranging-noise draw is *deferred*: the
        entry records its position in the wave's draw order and
        :meth:`close_wave` performs the whole batch at once — "ranging"
        is only consumed at scheduling time, so the batch sees the
        scalar order.
        """
        if self.loss_model is not None and not self.loss_model.attempt_succeeds():
            self.trace.record(
                now,
                "drop.loss",
                src=transmission.packet.src_id,
                dst=dst.node_id,
                packet_kind=transmission.packet.kind(),
            )
            return
        injector = self.injector
        if injector is not None:
            if injector.drop_delivery():
                self.trace.record(
                    now,
                    "drop.fault",
                    src=transmission.packet.src_id,
                    dst=dst.node_id,
                    packet_kind=transmission.packet.kind(),
                )
                return
            dup_delay = injector.duplicate_delay()
            if dup_delay is not None and not transmission.duplicated:
                duplicate = dataclasses.replace(
                    transmission,
                    duplicated=True,
                    extra_delay_cycles=transmission.extra_delay_cycles
                    + dup_delay,
                )
                self._schedule(duplicate, dst, physical_dist, now)
        delay = (
            self.radio.packet_time_cycles(transmission.packet, physical_dist)
            + transmission.extra_delay_cycles
        )
        if injector is not None:
            delay += injector.delivery_delay()
        if transmission.packet.carries_ranging_signal:
            noise_slot = len(self._noise_dists)
            self._noise_dists.append(physical_dist)
        else:
            noise_slot = -1
        self._entries.append(
            Delivery(
                time=now + delay,
                seq=next(self._tickets),
                transmission=transmission,
                dst=dst,
                dist=physical_dist,
                noise_slot=noise_slot,
            )
        )

    # ------------------------------------------------------------------
    # Wave processing
    # ------------------------------------------------------------------
    def close_wave(self) -> List[Delivery]:
        """Finalize the current wave: noise batch, measured distances, sort.

        Draws the wave's ranging noise in one batch from the shared
        ``"ranging"`` stream (bit-identical to the per-copy scalar
        draws when the network uses the default bounded-uniform model;
        a custom model is called per copy at the same point in stream
        order), computes each delivery's measured distance with the
        scalar expression, and returns the deliveries sorted by the
        engine's ``(time, seq)`` event order.
        """
        entries = self._entries
        dists = self._noise_dists
        self._entries = []
        self._noise_dists = []
        if dists:
            model = self.network.ranging_error
            stream = self.network.rngs.stream("ranging")
            max_error_ft = getattr(model, "max_error_ft", None)
            if max_error_ft is not None:
                noise = batched_uniform(
                    stream, len(dists), -max_error_ft, max_error_ft
                )
            else:
                noise = [model(d, stream) for d in dists]
        else:
            noise = ()
        for entry in entries:
            drawn = (
                float(noise[entry.noise_slot]) if entry.noise_slot >= 0 else 0.0
            )
            entry.measured = max(
                0.0,
                entry.dist + drawn + entry.transmission.ranging_bias_ft,
            )
        entries.sort(key=lambda e: (e.time, e.seq))
        self.total_events += len(entries)
        self.pipeline._vec_bump("deliveries", len(entries))
        self.pipeline._vec_bump("noise_batched", len(dists))
        self.pipeline._vec_bump("waves", 1)
        return entries

    def deliver(
        self, entries: List[Delivery]
    ) -> Iterator[Tuple[Delivery, Reception]]:
        """Yield surviving deliveries with traces/stats/counters mirrored.

        Per entry, in event order: advance the emulated clock, apply
        the receiver-crash check at arrival time, then count the
        delivery, build the real :class:`Reception`, record the
        ``deliver`` trace, and bump the receiver's ``received_count``
        exactly as ``Node.handle`` would before dispatching.
        """
        stats = self.network.stats
        injector = self.injector
        for entry in entries:
            if entry.time > self.max_time:
                self.max_time = entry.time
            transmission = entry.transmission
            packet = transmission.packet
            if injector is not None and injector.is_crashed(
                entry.dst.node_id, entry.time
            ):
                self.trace.record(
                    entry.time,
                    "drop.crashed",
                    src=packet.src_id,
                    dst=entry.dst.node_id,
                    packet_kind=packet.kind(),
                )
                continue
            stats.deliveries += 1
            reception = Reception(
                packet=packet,
                arrival_time=entry.time,
                measured_distance_ft=entry.measured,
                transmission=transmission,
            )
            self.trace.record(
                entry.time,
                "deliver",
                src=packet.src_id,
                dst=entry.dst.node_id,
                packet_kind=packet.kind(),
                wormhole=transmission.via_wormhole,
                replayed=transmission.is_replayed(),
            )
            entry.dst.received_count += 1
            yield entry, reception

    def finish(self) -> None:
        """Fold the emulated batch into the engine (count + clock)."""
        self.engine.absorb_batch(self.total_events, self.max_time)

    # ------------------------------------------------------------------
    # Protocol emulation (mirrors BeaconService / MaliciousBeacon)
    # ------------------------------------------------------------------
    def serve_request(
        self, beacon: Node, request: BeaconRequest, now: float
    ) -> None:
        """Emulate ``_serve_request``/``respond_to`` for one request.

        Every enrolled key verifies, so the scalar path's MAC
        verify/sign round trip is a provable no-op and is skipped;
        the protocol state mutations (``requests_served``, the
        sequence counter, the sticky strategy decision and its
        per-kind counter) hit the *real* node objects in the scalar
        order.
        """
        beacon.requests_served += 1
        beacon._sequence += 1
        if isinstance(beacon, MaliciousBeacon):
            decision = beacon.strategy.decide(request.src_id)
            beacon.responses_by_kind[decision] += 1
            if decision is ResponseKind.NORMAL:
                self._reply(beacon, request, beacon.position, now)
            elif decision is ResponseKind.MALICIOUS:
                self._reply(
                    beacon,
                    request,
                    beacon.lie_location_for(request.src_id),
                    now,
                    ranging_bias_ft=beacon.strategy.ranging_bias_ft,
                )
            elif decision is ResponseKind.MASK_WORMHOLE:
                self._reply(
                    beacon,
                    request,
                    beacon._far_location_for(request.src_id),
                    now,
                    fake_wormhole_symptoms=True,
                )
            else:  # ResponseKind.MASK_LOCAL_REPLAY
                reply_bits = BeaconPacket(
                    src_id=beacon.node_id, dst_id=0
                ).size_bits
                self._reply(
                    beacon,
                    request,
                    beacon.lie_location_for(request.src_id),
                    now,
                    extra_delay_cycles=packet_transmission_cycles(reply_bits),
                )
            return
        self._reply(beacon, request, beacon.declared_location, now)

    def _reply(
        self,
        beacon: Node,
        request: BeaconRequest,
        declared,
        now: float,
        *,
        ranging_bias_ft: float = 0.0,
        extra_delay_cycles: float = 0.0,
        fake_wormhole_symptoms: bool = False,
    ) -> None:
        """Build and emit one beacon reply (scalar ``_reply`` shape)."""
        reply = BeaconPacket(
            src_id=beacon.node_id,
            dst_id=request.src_id,
            claimed_location=(declared.x, declared.y),
            nonce=request.nonce,
            sequence=beacon._sequence,
        )
        self.unicast(
            beacon,
            reply,
            now,
            ranging_bias_ft=ranging_bias_ft,
            extra_delay_cycles=extra_delay_cycles,
            fake_wormhole_symptoms=fake_wormhole_symptoms,
        )
