"""Revocation as a service: asyncio alert ingestion over sharded counters.

The paper's §3.1 base station is a sequential counter machine. This
module promotes it to a long-running, auditable trust service without
changing a single decision:

- an **ingestion front-end** accepts alert submissions, buffers them into
  batches (``batch_size``), and owns the per-detector report quotas;
- a **wave scheduler** level-orders each batch: an alert's wave is one
  past the latest wave of any earlier alert sharing its detector or its
  target. Alerts inside one wave touch pairwise-disjoint counters, so
  shards may process a wave in any order and the outcome still equals
  sequential §3.1 processing (proved by the dependency argument in
  ``docs/REVOCATION.md`` and asserted against :class:`BaseStation` in
  tests);
- **per-target shards** (``shard = target_id % n_shards``) each own the
  alert counters and revoked flags of their targets and run
  :func:`repro.core.revocation.apply_target` — the same committed
  transition the in-process base station composes;
- an **append-only decision ledger** records every processed alert's
  fate in sequence order; batches land durably (see
  :mod:`repro.revocation.persistence`) before any decision future
  resolves, and periodic snapshots bound replay time. A restarted
  service reconverges bit-identically — even under a *different* shard
  count, because shard placement is derived, not stored.

Shard/front-end telemetry is merged with the order-insensitive
:func:`repro.obs.merge_snapshots` reduction, so the merged §3.1 registry
of a sharded run equals the single base station's registry bit for bit.

Paper section: §3.1 (alert quotas, suspiciousness counters, revocation)
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.revocation import (
    AlertRecord,
    BaseStation,
    CounterState,
    RevocationConfig,
    apply_target,
    evaluate_alert,
)
from repro.errors import ConfigurationError, RevocationError
from repro.obs import (
    MetricsRegistry,
    Observability,
    ObserveConfig,
    exponential_buckets,
    merge_snapshots,
)
from repro.revocation.persistence import (
    LEDGER_SCHEMA_VERSION,
    MemoryBackend,
    PersistenceBackend,
)


@dataclass(frozen=True)
class AlertSubmission:
    """One alert on its way into the service (submission order = seq)."""

    detector_id: int
    target_id: int
    time: float = 0.0
    tag: Optional[bytes] = None
    verify: bool = False


@dataclass
class _PendingAlert:
    """A buffered submission awaiting its batch: payload + result future."""

    seq: int
    submission: AlertSubmission
    future: "asyncio.Future[AlertRecord]"


def partition_waves(
    items: Sequence[Tuple[int, int]]
) -> List[List[int]]:
    """Level-schedule a batch of ``(detector_id, target_id)`` pairs.

    Returns wave lists of *indices* into ``items``. An item's wave is one
    past the highest wave of any earlier item sharing its detector or its
    target, so within a wave all detectors are distinct and all targets
    are distinct. Two alerts that share neither counter commute — their
    §3.1 decisions read and write disjoint state — hence processing wave
    ``k`` completely before wave ``k+1`` reproduces sequential order
    exactly, while everything inside a wave may run shard-parallel.
    """
    last_detector: Dict[int, int] = {}
    last_target: Dict[int, int] = {}
    waves: List[List[int]] = []
    for index, (detector_id, target_id) in enumerate(items):
        level = (
            max(
                last_detector.get(detector_id, -1),
                last_target.get(target_id, -1),
            )
            + 1
        )
        if level == len(waves):
            waves.append([])
        waves[level].append(index)
        last_detector[detector_id] = level
        last_target[target_id] = level
    return waves


class _Shard:
    """One per-target shard: its counter slice, queue, and registry."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.state = CounterState()
        self.queue: "asyncio.Queue[Optional[Tuple[List[Tuple[int, int]], asyncio.Future]]]" = (
            asyncio.Queue()
        )
        self.task: Optional[asyncio.Task] = None
        self.alerts_processed = 0

    def metric_snapshot(self) -> Dict[str, Any]:
        """This shard's slice of the §3.1 registry (mergeable snapshot).

        Emits ``bs_alert_counter{target=...}`` gauges for its targets and
        its share of ``revocations_total``; shards own disjoint targets,
        so :func:`repro.obs.merge_snapshots` over all shards (plus the
        front-end's snapshot) reproduces the single base station's
        registry exactly.
        """
        registry = MetricsRegistry()
        registry.counter("revocations_total").inc(len(self.state.revoked))
        for target_id, count in self.state.alert_counters.items():
            registry.gauge("bs_alert_counter", target=target_id).set(count)
        return registry.snapshot()


class RevocationService:
    """Sharded, persistent, asyncio front-end for §3.1 revocation.

    Args:
        config: the two thresholds (``tau_report`` / ``tau_alert``).
        n_shards: per-target shard workers (``target_id % n_shards``).
            Any count yields identical decisions; more shards spread the
            per-wave work.
        backend: persistence (ledger + snapshots); defaults to a fresh
            :class:`repro.revocation.persistence.MemoryBackend`. The
            caller owns the backend's lifetime (close it after
            :meth:`stop`).
        batch_size: submissions buffered before an automatic flush;
            :meth:`flush` forces one earlier.
        snapshot_every: write a state snapshot after this many committed
            alerts (None = only on explicit :meth:`snapshot` calls).
        key_manager: verifies alert MACs for ``verify=True`` submissions.
        on_revoke: callback invoked (in ledger order) with each newly
            revoked beacon id, after the revoking batch has committed.
        observe: optional :class:`repro.obs.ObserveConfig` for service
            operational metrics and flush spans; None (default) builds
            no observability object at all.
        telemetry_port: serve live ``/metrics`` / ``/healthz`` /
            ``/spans`` scrapes on this port (0 = ephemeral; read the
            bound port from ``telemetry_server.port`` after
            :meth:`start`). ``/metrics`` is the union of the §3.1
            registry (:meth:`registry_snapshot`), the ``svc_*``
            operational counters, a wall-clock
            ``svc_flush_latency_seconds`` histogram, and liveness
            gauges (``svc_ledger_seq_lag``, ``svc_pending_alerts``,
            per-shard ``svc_shard_pending_alerts``). The live plane
            never feeds back into the deterministic registries.

    Lifecycle: ``await start()`` (recovers from the backend's snapshot +
    ledger tail, then spawns shard workers), ``await submit(...)`` /
    ``await ingest(...)``, ``await stop()``. :meth:`crash` simulates a
    hard failure for recovery tests.
    """

    def __init__(
        self,
        config: Optional[RevocationConfig] = None,
        *,
        n_shards: int = 4,
        backend: Optional[PersistenceBackend] = None,
        batch_size: int = 256,
        snapshot_every: Optional[int] = None,
        key_manager=None,
        on_revoke: Optional[Callable[[int], None]] = None,
        observe: Optional[ObserveConfig] = None,
        telemetry_port: Optional[int] = None,
    ) -> None:
        if not isinstance(n_shards, int) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be an int >= 1, got {n_shards!r}"
            )
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be an int >= 1, got {batch_size!r}"
            )
        if snapshot_every is not None and (
            not isinstance(snapshot_every, int) or snapshot_every < 1
        ):
            raise ConfigurationError(
                f"snapshot_every must be an int >= 1 or None, got {snapshot_every!r}"
            )
        self.config = config if config is not None else RevocationConfig()
        self.n_shards = n_shards
        self.backend = backend if backend is not None else MemoryBackend()
        self.batch_size = batch_size
        self.snapshot_every = snapshot_every
        self.key_manager = key_manager
        self.on_revoke = on_revoke
        self.shards = [_Shard(i) for i in range(n_shards)]
        #: Front-end state: detector report quotas (the other §3.1 map).
        self.report_counters: Dict[int, int] = {}
        #: Committed decision log in sequence order (rebuilt on recovery).
        self.decisions: List[AlertRecord] = []
        #: Highest committed (durable) sequence number.
        self.last_seq = 0
        self._snapshot_seq = 0
        self._pending: List[_PendingAlert] = []
        self._next_seq = 0
        self._flush_lock = asyncio.Lock()
        self._started = False
        self._crashed = False
        self.obs: Optional[Observability] = None
        if observe is not None:
            self.obs = Observability(observe, sim_clock=lambda: 0.0)
        self._telemetry_port = telemetry_port
        self.telemetry_server = None
        #: Wall-clock live-plane registry (flush latency); only exists
        #: when a telemetry server is requested, and never merges into
        #: the deterministic §3.1 / svc_* registries.
        self._live_registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if telemetry_port is not None else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "RevocationService":
        """Recover state from the backend and spawn the shard workers."""
        self._check_alive()
        if self._started:
            return self
        self._recover()
        for shard in self.shards:
            shard.task = asyncio.create_task(self._shard_worker(shard))
        self._started = True
        if self._telemetry_port is not None and self.telemetry_server is None:
            from repro.obs import TelemetryServer

            self.telemetry_server = TelemetryServer(
                self.live_snapshot,
                health_fn=self._health,
                spans_fn=self._recent_spans,
                port=self._telemetry_port,
            ).start()
        return self

    async def stop(self) -> None:
        """Flush pending submissions and stop the shard workers.

        The backend stays open (the caller owns it); call
        :meth:`snapshot` first when a final snapshot is wanted.
        """
        if not self._started or self._crashed:
            return
        await self.flush()
        for shard in self.shards:
            await shard.queue.put(None)
        for shard in self.shards:
            if shard.task is not None:
                await shard.task
                shard.task = None
        self._started = False
        if self.telemetry_server is not None:
            self.telemetry_server.stop()
            self.telemetry_server = None

    def crash(self) -> None:
        """Simulate a hard crash: drop every in-memory structure.

        Pending (unflushed) submissions are lost — their futures are
        cancelled — and the service object becomes unusable. Recovery is
        a *new* service on the same backend: only what the ledger had
        committed survives, which is exactly the guarantee the recovery
        tests pin down.
        """
        for shard in self.shards:
            if shard.task is not None:
                shard.task.cancel()
                shard.task = None
            shard.state = CounterState()
        for pending in self._pending:
            if not pending.future.done():
                pending.future.cancel()
        self._pending = []
        self.report_counters = {}
        self.decisions = []
        self._crashed = True
        self._started = False
        if self.telemetry_server is not None:
            self.telemetry_server.stop()
            self.telemetry_server = None

    def _check_alive(self) -> None:
        if self._crashed:
            raise RevocationError(
                "service has crashed; recover by starting a new instance "
                "on the same backend"
            )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    async def submit(
        self,
        detector_id: int,
        target_id: int,
        *,
        tag: Optional[bytes] = None,
        verify: bool = False,
        time: float = 0.0,
    ) -> "asyncio.Future[AlertRecord]":
        """Buffer one alert; returns a future resolved with its record.

        The future resolves when the alert's batch commits (durably in
        the ledger). A full buffer triggers an automatic :meth:`flush`.
        """
        self._check_alive()
        if not self._started:
            raise RevocationError("service not started; await start() first")
        self._next_seq += 1
        pending = _PendingAlert(
            seq=self._next_seq,
            submission=AlertSubmission(
                detector_id=detector_id,
                target_id=target_id,
                time=time,
                tag=tag,
                verify=verify,
            ),
            future=asyncio.get_running_loop().create_future(),
        )
        self._pending.append(pending)
        future = pending.future
        if len(self._pending) >= self.batch_size:
            await self.flush()
        return future

    async def ingest(
        self, alerts: Iterable[Tuple[int, int, float]]
    ) -> List[AlertRecord]:
        """Submit a ``(detector, target, time)`` stream and flush it.

        Returns the committed records in submission order — the bulk
        entry point replay and the benches use.
        """
        futures = [
            await self.submit(detector_id, target_id, time=time)
            for detector_id, target_id, time in alerts
        ]
        await self.flush()
        return [future.result() for future in futures]

    async def flush(self) -> None:
        """Process the buffered batch: waves, shards, ledger, futures."""
        self._check_alive()
        async with self._flush_lock:
            batch, self._pending = self._pending, []
            if not batch:
                return
            t0 = time.perf_counter() if self._live_registry is not None else 0.0
            if self.obs is not None and self.obs.config.spans:
                with self.obs.span("svc:flush", batch=len(batch)):
                    await self._process_batch(batch)
            else:
                await self._process_batch(batch)
            if self._live_registry is not None:
                self._live_registry.histogram(
                    "svc_flush_latency_seconds",
                    buckets=exponential_buckets(0.0001, 4.0, 8),
                ).observe(time.perf_counter() - t0)

    async def _process_batch(self, batch: List[_PendingAlert]) -> None:
        """Decide one batch and commit it to the ledger in seq order."""
        outcomes: Dict[int, Tuple[bool, str, bool]] = {}
        eligible: List[_PendingAlert] = []
        for pending in batch:
            sub = pending.submission
            if sub.verify and not self._verify_tag(sub):
                outcomes[pending.seq] = (False, "bad-auth", False)
                if self.obs is not None and self.obs.config.metrics:
                    self.obs.registry.counter("svc_auth_failures_total").inc()
                continue
            eligible.append(pending)

        waves = partition_waves(
            [
                (p.submission.detector_id, p.submission.target_id)
                for p in eligible
            ]
        )
        for wave_indices in waves:
            await self._process_wave([eligible[i] for i in wave_indices], outcomes)

        records: List[Dict[str, Any]] = []
        revoked_now: List[int] = []
        for pending in batch:
            accepted, reason, revokes = outcomes[pending.seq]
            records.append(
                {
                    "schema": LEDGER_SCHEMA_VERSION,
                    "seq": pending.seq,
                    "detector": pending.submission.detector_id,
                    "target": pending.submission.target_id,
                    "accepted": accepted,
                    "reason": reason,
                    "revokes": revokes,
                    "time": pending.submission.time,
                }
            )
            if revokes:
                revoked_now.append(pending.submission.target_id)
        # Durability point: the batch is visible to recovery exactly when
        # this append returns; futures resolve only after it.
        self.backend.append_records(records)
        self.last_seq = batch[-1].seq
        for pending in batch:
            accepted, reason, _ = outcomes[pending.seq]
            record = AlertRecord(
                detector_id=pending.submission.detector_id,
                target_id=pending.submission.target_id,
                accepted=accepted,
                reason=reason,
                time=pending.submission.time,
            )
            self.decisions.append(record)
            if not pending.future.done():
                pending.future.set_result(record)
        if self.obs is not None and self.obs.config.metrics:
            registry = self.obs.registry
            registry.counter("svc_batches_total").inc()
            registry.counter("svc_waves_total").inc(len(waves))
            registry.counter("svc_alerts_ingested_total").inc(len(batch))
        for target_id in revoked_now:
            if self.on_revoke is not None:
                self.on_revoke(target_id)
        if (
            self.snapshot_every is not None
            and self.last_seq - self._snapshot_seq >= self.snapshot_every
        ):
            await self.snapshot()

    async def _process_wave(
        self,
        wave: List[_PendingAlert],
        outcomes: Dict[int, Tuple[bool, str, bool]],
    ) -> None:
        """Quota-gate one wave, fan it out to shards, fold results back."""
        by_shard: Dict[int, List[Tuple[int, int]]] = {}
        for pending in wave:
            sub = pending.submission
            if (
                self.report_counters.get(sub.detector_id, 0)
                > self.config.tau_report
            ):
                outcomes[pending.seq] = (False, "quota-exceeded", False)
                continue
            by_shard.setdefault(sub.target_id % self.n_shards, []).append(
                (pending.seq, sub.target_id)
            )
        if not by_shard:
            return
        loop = asyncio.get_running_loop()
        replies = []
        for shard_id, items in sorted(by_shard.items()):
            reply: asyncio.Future = loop.create_future()
            await self.shards[shard_id].queue.put((items, reply))
            replies.append(reply)
            if self.obs is not None and self.obs.config.metrics:
                self.obs.registry.counter(
                    "svc_shard_dispatch_total", shard=shard_id
                ).inc(len(items))
        shard_results: Dict[int, Tuple[bool, str, bool]] = {}
        for reply in replies:
            for seq, accepted, reason, revokes in await reply:
                shard_results[seq] = (accepted, reason, revokes)
        # Fold shard decisions back front-end side: accepted alerts spend
        # one unit of their detector's report quota (each detector occurs
        # at most once per wave, so this is race-free by construction).
        for pending in wave:
            if pending.seq not in shard_results:
                continue
            accepted, reason, revokes = shard_results[pending.seq]
            outcomes[pending.seq] = (accepted, reason, revokes)
            if accepted:
                detector_id = pending.submission.detector_id
                self.report_counters[detector_id] = (
                    self.report_counters.get(detector_id, 0) + 1
                )

    async def _shard_worker(self, shard: _Shard) -> None:
        """One shard's loop: apply the target-side transition per item."""
        while True:
            item = await shard.queue.get()
            if item is None:
                return
            items, reply = item
            results = []
            for seq, target_id in items:
                decision = apply_target(shard.state, self.config, target_id)
                results.append(
                    (seq, decision.accepted, decision.reason, decision.revokes_target)
                )
            shard.alerts_processed += len(items)
            if not reply.done():
                reply.set_result(results)

    def _verify_tag(self, sub: AlertSubmission) -> bool:
        """Check the per-beacon base-station MAC on one submission."""
        if self.key_manager is None:
            return False
        payload = BaseStation.alert_payload(sub.detector_id, sub.target_id)
        return sub.tag is not None and self.key_manager.verify_alert_payload(
            sub.detector_id, payload, sub.tag
        )

    # ------------------------------------------------------------------
    # Snapshot / recovery
    # ------------------------------------------------------------------
    async def snapshot(self) -> Dict[str, Any]:
        """Write (and return) a snapshot of the committed state."""
        self._check_alive()
        document = {
            "schema": LEDGER_SCHEMA_VERSION,
            "seq": self.last_seq,
            "tau_report": self.config.tau_report,
            "tau_alert": self.config.tau_alert,
            "state": self.counter_state().to_dict(),
        }
        self.backend.write_snapshot(document)
        self._snapshot_seq = self.last_seq
        if self.obs is not None and self.obs.config.metrics:
            self.obs.registry.counter("svc_snapshots_total").inc()
        return document

    def _recover(self) -> None:
        """Rebuild committed state from snapshot + ledger tail.

        Every replayed (non-``bad-auth``) record is *recomputed* through
        :func:`repro.core.revocation.evaluate_alert` and must match its
        recorded fate — a corrupted or reordered ledger fails loudly
        instead of silently diverging. Shard placement is re-derived, so
        recovery works under any ``n_shards``.
        """
        state = CounterState()
        after_seq = 0
        snapshot = self.backend.load_snapshot()
        if snapshot is not None:
            if (
                snapshot.get("tau_report") != self.config.tau_report
                or snapshot.get("tau_alert") != self.config.tau_alert
            ):
                raise ConfigurationError(
                    "snapshot thresholds "
                    f"({snapshot.get('tau_report')}, {snapshot.get('tau_alert')}) "
                    f"do not match service config ({self.config.tau_report}, "
                    f"{self.config.tau_alert})"
                )
            state = CounterState.from_dict(snapshot.get("state") or {})
            after_seq = int(snapshot.get("seq", 0))
        replayed = 0
        last_seq = 0
        # Read the whole ledger to rebuild the decision log; state is
        # only recomputed past the snapshot's sequence number.
        for record in self.backend.read_records(0):
            seq = int(record["seq"])
            if seq != last_seq + 1:
                raise RevocationError(
                    f"ledger gap: expected seq {last_seq + 1}, found {seq}"
                )
            last_seq = seq
            detector_id = int(record["detector"])
            target_id = int(record["target"])
            if seq > after_seq and record["reason"] != "bad-auth":
                decision = evaluate_alert(
                    state, self.config, detector_id, target_id
                )
                recorded = (
                    bool(record["accepted"]),
                    str(record["reason"]),
                    bool(record.get("revokes", False)),
                )
                if recorded != (
                    decision.accepted,
                    decision.reason,
                    decision.revokes_target,
                ):
                    raise RevocationError(
                        f"ledger record seq {seq} disagrees with the §3.1 "
                        f"counter machine: recorded {recorded}, recomputed "
                        f"{(decision.accepted, decision.reason, decision.revokes_target)}"
                    )
                if decision.accepted:
                    state.alert_counters[target_id] = (
                        state.alert_counters.get(target_id, 0) + 1
                    )
                    state.report_counters[detector_id] = (
                        state.report_counters.get(detector_id, 0) + 1
                    )
                    if decision.revokes_target:
                        state.revoked.add(target_id)
            self.decisions.append(
                AlertRecord(
                    detector_id=detector_id,
                    target_id=target_id,
                    accepted=bool(record["accepted"]),
                    reason=str(record["reason"]),
                    time=float(record.get("time", 0.0)),
                )
            )
            replayed += 1
        if last_seq < after_seq:
            raise RevocationError(
                f"ledger ends at seq {last_seq}, before the snapshot's "
                f"seq {after_seq}"
            )
        # Re-shard the recovered state: report quotas stay front-end,
        # target counters and revocations land on their derived shard.
        self.report_counters = dict(state.report_counters)
        for target_id, count in state.alert_counters.items():
            shard = self.shards[target_id % self.n_shards]
            shard.state.alert_counters[target_id] = count
        for target_id in state.revoked:
            shard = self.shards[target_id % self.n_shards]
            shard.state.revoked.add(target_id)
        self.last_seq = last_seq
        self._next_seq = last_seq
        self._snapshot_seq = after_seq
        if self.obs is not None and self.obs.config.metrics and replayed:
            self.obs.registry.counter("svc_recovered_records_total").inc(
                replayed
            )

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------
    def counter_state(self) -> CounterState:
        """The merged §3.1 state (front-end quotas + all shard slices)."""
        merged = CounterState(report_counters=dict(self.report_counters))
        for shard in self.shards:
            merged.alert_counters.update(shard.state.alert_counters)
            merged.revoked.update(shard.state.revoked)
        return merged

    @property
    def revoked(self) -> set:
        """Identities revoked so far (union over shards)."""
        out: set = set()
        for shard in self.shards:
            out.update(shard.state.revoked)
        return out

    def is_revoked(self, beacon_id: int) -> bool:
        """True when ``beacon_id``'s shard has revoked it."""
        return (
            beacon_id
            in self.shards[beacon_id % self.n_shards].state.revoked
        )

    def frontend_metric_snapshot(self) -> Dict[str, Any]:
        """The front-end's slice of the §3.1 registry (mergeable).

        ``alerts_total{accepted,reason}`` from the decision log plus
        ``bs_report_counter{reporter=...}`` gauges — the complement of
        the shards' :meth:`_Shard.metric_snapshot` slices.
        """
        registry = MetricsRegistry()
        for record in self.decisions:
            registry.counter(
                "alerts_total",
                accepted="true" if record.accepted else "false",
                reason=record.reason,
            ).inc()
        for reporter_id, count in self.report_counters.items():
            registry.gauge("bs_report_counter", reporter=reporter_id).set(count)
        return registry.snapshot()

    def registry_snapshot(self) -> Dict[str, Any]:
        """The service's §3.1 registry: shard snapshots merged in one pass.

        Uses :func:`repro.obs.merge_snapshots` — the same
        order-insensitive reduction the parallel experiment runner uses —
        over the front-end snapshot plus every shard's snapshot. Equals
        :meth:`repro.core.revocation.BaseStation.record_metrics` output
        for the same alert stream, bit for bit (asserted in tests).
        """
        return merge_snapshots(
            [self.frontend_metric_snapshot()]
            + [shard.metric_snapshot() for shard in self.shards]
        )

    def telemetry(self) -> Dict[str, Any]:
        """Operational telemetry (empty when ``observe`` is None).

        Shape mirrors the pipeline's: ``{"registry": <snapshot>,
        "spans": [...]}`` with ``svc_*`` counters for batches, waves,
        ingested alerts, snapshots, and recovered records. Under a
        process span namespace / trace context (see
        :mod:`repro.obs.live`) the dict also carries the ``process`` /
        ``trace`` / ``wall0_epoch`` stitching fields, exactly like a
        worker trial's telemetry.
        """
        if self.obs is None:
            return {}
        return self.obs.telemetry()

    # ------------------------------------------------------------------
    # Live telemetry plane (wall-clock; never feeds the §3.1 registries)
    # ------------------------------------------------------------------
    def live_snapshot(self) -> Dict[str, Any]:
        """One scrapeable snapshot: §3.1 + ``svc_*`` + liveness gauges.

        Merges :meth:`registry_snapshot`, the operational ``svc_*``
        registry (when ``observe`` is set), and the wall-clock live
        registry, then overlays point-in-time liveness gauges:
        ``svc_ledger_seq_lag`` (committed seqs since the last snapshot),
        ``svc_pending_alerts`` (buffered, unflushed submissions), and
        per-shard ``svc_shard_pending_alerts{shard=...}`` queue depths.
        Served by the telemetry server's ``/metrics`` endpoint.
        """
        liveness = MetricsRegistry()
        liveness.gauge("svc_ledger_seq_lag").set(
            self.last_seq - self._snapshot_seq
        )
        liveness.gauge("svc_pending_alerts").set(len(self._pending))
        for shard in self.shards:
            liveness.gauge(
                "svc_shard_pending_alerts", shard=shard.shard_id
            ).set(shard.queue.qsize())
        parts = [self.registry_snapshot()]
        if self.obs is not None:
            parts.append(self.obs.registry.snapshot())
        if self._live_registry is not None:
            parts.append(self._live_registry.snapshot())
        parts.append(liveness.snapshot())
        return merge_snapshots(parts)

    def _health(self) -> Dict[str, Any]:
        """``/healthz`` payload: ok only while started and not crashed."""
        return {
            "status": "ok" if self._started and not self._crashed else "down",
            "started": self._started,
            "crashed": self._crashed,
            "n_shards": self.n_shards,
            "last_seq": self.last_seq,
        }

    def _recent_spans(self) -> List[Dict[str, Any]]:
        """``/spans`` payload: recent completed spans (empty w/o obs)."""
        if self.obs is None:
            return []
        return list(self.obs.spans)[-256:]
