"""Revocation as a service: the §3.1 base station, sharded and durable.

The paper's base station is an in-process counter machine
(:class:`repro.core.revocation.BaseStation`). This package promotes it
to a standalone trust service while preserving its decisions bit for
bit:

- :mod:`repro.revocation.service` — an asyncio ingestion front-end that
  batches alert submissions, level-orders each batch into conflict-free
  waves, and fans the waves out to per-target shards running the same
  :func:`repro.core.revocation.apply_target` transition the base
  station composes; shard metric snapshots merge through
  :func:`repro.obs.merge_snapshots` into exactly the single-station
  registry;
- :mod:`repro.revocation.persistence` — pluggable durability (memory /
  JSONL / SQLite) behind an append-only decision ledger plus periodic
  state snapshots, so a restarted service reconverges bit-identically;
- :mod:`repro.revocation.replay` — capture §4 pipeline alert streams
  and replay them through the service, asserting identity with the
  in-process base station (any shard count, any backend, with or
  without an injected crash).

See ``docs/REVOCATION.md`` for the architecture and the equivalence
argument, and ``benchmarks/bench_revocation.py`` for throughput/latency
numbers.

Paper section: §3.1 (alert quotas, suspiciousness counters, revocation)
"""

from repro.revocation.persistence import (
    BACKEND_KINDS,
    JsonlBackend,
    LEDGER_SCHEMA_VERSION,
    MemoryBackend,
    PersistenceBackend,
    SqliteBackend,
    make_backend,
)
from repro.revocation.replay import (
    CapturedStream,
    ReplayReport,
    capture_stream,
    capture_streams,
    replay_stream,
    replay_sweep,
)
from repro.revocation.service import (
    AlertSubmission,
    RevocationService,
    partition_waves,
)

__all__ = [
    "AlertSubmission",
    "BACKEND_KINDS",
    "CapturedStream",
    "JsonlBackend",
    "LEDGER_SCHEMA_VERSION",
    "MemoryBackend",
    "PersistenceBackend",
    "ReplayReport",
    "RevocationService",
    "SqliteBackend",
    "capture_stream",
    "capture_streams",
    "make_backend",
    "partition_waves",
    "replay_stream",
    "replay_sweep",
]
