"""Capture pipeline alert streams and replay them through the service.

The acceptance bar for the revocation service is *bit-identity with the
paper*: feeding the exact alert stream a §4 simulation produced into the
sharded, persistent service must reproduce the in-process
:class:`repro.core.revocation.BaseStation`'s decisions — every
accept/reject reason, the revoked set, and both counter maps — for any
shard count, any persistence backend, and with or without a crash and
recovery injected mid-stream.

The flow has three module-level (hence picklable, hence
:meth:`repro.experiments.runner.ExperimentRunner.map`-able) pieces:

- :func:`capture_stream` runs one
  :class:`repro.core.pipeline.SecureLocalizationPipeline` trial and
  freezes its base station's alert log into a :class:`CapturedStream` —
  the submissions in arrival order plus the expected fate of each and
  the expected final counter state;
- :func:`replay_stream` pushes one captured stream through a fresh
  :class:`repro.revocation.service.RevocationService` (optionally
  crash-recovering at a chosen point) and diffs service decisions and
  state against the capture, producing a :class:`ReplayReport`;
- :func:`capture_streams` / :func:`replay_sweep` scale both over a
  Monte-Carlo sweep, fanning capture out through an
  :class:`~repro.experiments.runner.ExperimentRunner`.

Captured streams carry only authenticated submissions' identities (the
pipeline MACs every alert before submission, so ``bad-auth`` never
occurs in them); replay therefore runs with ``verify=False``, the same
closed-world switch the base station itself honours.

Paper section: §3.1 / §4 (the base station's decisions on the
evaluation's alert streams)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.core.revocation import RevocationConfig
from repro.errors import ConfigurationError
from repro.revocation.persistence import MemoryBackend, PersistenceBackend
from repro.revocation.service import RevocationService


@dataclass(frozen=True)
class CapturedStream:
    """One trial's alert stream plus the in-process ground truth.

    Attributes:
        key: human-readable stream id (defaults to ``seed=<n>``).
        tau_report: the trial's per-detector quota.
        tau_alert: the trial's revocation threshold.
        alerts: ``(detector_id, target_id, time)`` in submission order.
        expected_log: ``(accepted, reason)`` per alert, same order — the
            :class:`~repro.core.revocation.BaseStation`'s decisions.
        expected_state: the final counter state,
            :meth:`~repro.core.revocation.CounterState.to_dict` form.
    """

    key: str
    tau_report: int
    tau_alert: int
    alerts: Tuple[Tuple[int, int, float], ...]
    expected_log: Tuple[Tuple[bool, str], ...]
    expected_state: Dict[str, Any]


def capture_stream(config: PipelineConfig) -> CapturedStream:
    """Run one pipeline trial and freeze its base station's alert stream.

    Module-level and argument-picklable, so sweeps can fan capture out
    with ``runner.map(capture_stream, configs)``.
    """
    pipeline = SecureLocalizationPipeline(config)
    pipeline.run()
    station = pipeline.base_station
    assert station is not None
    return CapturedStream(
        key=f"seed={config.seed}",
        tau_report=config.tau_report,
        tau_alert=config.tau_alert,
        alerts=tuple(
            (r.detector_id, r.target_id, r.time) for r in station.log
        ),
        expected_log=tuple((r.accepted, r.reason) for r in station.log),
        expected_state=station.state.to_dict(),
    )


def capture_streams(
    configs: Sequence[PipelineConfig],
    runner=None,
    *,
    keys: Optional[Sequence[str]] = None,
) -> List[CapturedStream]:
    """Capture a whole sweep's alert streams, one per config.

    With a ``runner`` (an :class:`repro.experiments.runner.ExperimentRunner`),
    trials fan out across its workers; without one they run serially.
    Either way results arrive in input order.
    """
    if runner is None:
        return [capture_stream(config) for config in configs]
    return runner.map(capture_stream, configs, keys=keys)


@dataclass
class ReplayReport:
    """The diff between a service replay and its captured ground truth.

    ``identical`` is the headline: every decision (accepted flag and
    reason string) and the final counter state matched bit for bit.
    ``mismatches`` holds human-readable descriptions of the first
    divergences (capped) for debugging.
    """

    key: str
    n_shards: int
    backend_kind: str
    n_alerts: int
    restart_after: Optional[int]
    decisions_match: bool
    state_match: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when decisions and final state both matched exactly."""
        return self.decisions_match and self.state_match

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the CLI prints these)."""
        return {
            "key": self.key,
            "n_shards": self.n_shards,
            "backend": self.backend_kind,
            "n_alerts": self.n_alerts,
            "restart_after": self.restart_after,
            "decisions_match": self.decisions_match,
            "state_match": self.state_match,
            "identical": self.identical,
            "mismatches": list(self.mismatches),
        }


#: How many divergences a report records before truncating.
_MISMATCH_CAP = 10


async def _replay_async(
    stream: CapturedStream,
    *,
    n_shards: int,
    backend: PersistenceBackend,
    batch_size: int,
    restart_after: Optional[int],
    snapshot_every: Optional[int],
    observe=None,
    telemetry_port: Optional[int] = None,
) -> Tuple[ReplayReport, List[Dict[str, Any]]]:
    """The asyncio body of :func:`replay_stream`.

    Returns the report plus the telemetry dict of every service instance
    the replay created (two under crash/recovery, else one; empty
    without ``observe``) — the raw material for stitched event logs.
    """
    config = RevocationConfig(
        tau_report=stream.tau_report, tau_alert=stream.tau_alert
    )
    telemetries: List[Dict[str, Any]] = []

    def new_service() -> RevocationService:
        return RevocationService(
            config,
            n_shards=n_shards,
            backend=backend,
            batch_size=batch_size,
            snapshot_every=snapshot_every,
            observe=observe,
            telemetry_port=telemetry_port,
        )

    def harvest(svc: RevocationService) -> None:
        telemetry = svc.telemetry()
        if telemetry.get("spans"):
            telemetries.append(telemetry)

    service = new_service()
    await service.start()
    if restart_after is not None:
        head = stream.alerts[:restart_after]
        for detector_id, target_id, time in head:
            await service.submit(detector_id, target_id, time=time)
        # No flush: the crash lands mid-stream with a partial batch still
        # buffered, so only auto-flushed (committed) alerts survive.
        service.crash()
        harvest(service)
        # Recovery: a brand-new service on the same backend. Exactly the
        # ledger-committed prefix survives; last_seq says where the
        # stream resumes, and the lost buffered suffix is resubmitted.
        service = new_service()
        await service.start()
    tail = stream.alerts[service.last_seq :]
    for detector_id, target_id, time in tail:
        await service.submit(detector_id, target_id, time=time)
    await service.stop()
    harvest(service)

    report = ReplayReport(
        key=stream.key,
        n_shards=n_shards,
        backend_kind=backend.kind,
        n_alerts=len(stream.alerts),
        restart_after=restart_after,
        decisions_match=True,
        state_match=True,
    )
    if len(service.decisions) != len(stream.alerts):
        report.decisions_match = False
        report.mismatches.append(
            f"decision count: service {len(service.decisions)} vs "
            f"captured {len(stream.alerts)}"
        )
    for index, (record, expected) in enumerate(
        zip(service.decisions, stream.expected_log)
    ):
        got = (record.accepted, record.reason)
        if got != expected:
            report.decisions_match = False
            if len(report.mismatches) < _MISMATCH_CAP:
                report.mismatches.append(
                    f"alert #{index} "
                    f"({record.detector_id}->{record.target_id}): "
                    f"service {got} vs captured {expected}"
                )
    final_state = service.counter_state().to_dict()
    if final_state != stream.expected_state:
        report.state_match = False
        if len(report.mismatches) < _MISMATCH_CAP:
            report.mismatches.append(
                "final counter state differs from captured state"
            )
    return report, telemetries


def replay_stream(
    stream: CapturedStream,
    *,
    n_shards: int = 4,
    backend: Optional[PersistenceBackend] = None,
    batch_size: int = 128,
    restart_after: Optional[int] = None,
    snapshot_every: Optional[int] = None,
    observe=None,
    telemetry_port: Optional[int] = None,
    events_log=None,
    trace_context=None,
    process: str = "svc",
) -> ReplayReport:
    """Replay one captured stream through the service and diff the result.

    Args:
        stream: a :func:`capture_stream` product.
        n_shards: service shard count (any value must — and does — give
            identical decisions).
        backend: persistence backend (fresh in-memory by default). Must
            be empty unless you intend recovery-then-continue semantics.
        batch_size: ingestion batch size.
        restart_after: when set, submit this many alerts, flush, hard-crash
            the service, recover a new instance from the backend's
            ledger/snapshot, and continue from the recovered sequence
            number — the crash-consistency path the tests pin down.
        snapshot_every: service snapshot cadence (exercises
            snapshot-plus-tail recovery rather than full-ledger replay).
        observe: optional :class:`repro.obs.ObserveConfig` for the
            service's ``svc_*`` metrics and ``svc:flush`` spans.
        telemetry_port: serve live ``/metrics`` scrapes from the service
            while the replay runs (see
            :class:`repro.revocation.service.RevocationService`).
        events_log: when set (a path) and ``observe`` enables spans,
            append the replay's completed spans as stitchable JSONL
            lines (:func:`repro.obs.live.span_event_lines`) — the
            revocation side of a cross-process stitched trace.
        trace_context: optional :class:`repro.obs.live.TraceContext`
            linking the replay's ``svc:flush`` root spans to a span in
            another process (e.g. the coordinator's run span).
        process: span-id namespace / process name for the event log.

    Runs its own event loop; call from sync code (tests, CLI, benches).
    """
    if restart_after is not None and not (
        0 <= restart_after <= len(stream.alerts)
    ):
        raise ConfigurationError(
            f"restart_after must be in [0, {len(stream.alerts)}], "
            f"got {restart_after}"
        )
    if backend is None:
        backend = MemoryBackend()
    from repro.obs import live

    previous_namespace = live.process_span_namespace()
    previous_context = live.process_trace_context()
    if observe is not None:
        live.set_process_span_namespace(process)
        live.set_process_trace_context(trace_context)
    try:
        report, telemetries = asyncio.run(
            _replay_async(
                stream,
                n_shards=n_shards,
                backend=backend,
                batch_size=batch_size,
                restart_after=restart_after,
                snapshot_every=snapshot_every,
                observe=observe,
                telemetry_port=telemetry_port,
            )
        )
    finally:
        if observe is not None:
            live.set_process_span_namespace(previous_namespace)
            live.set_process_trace_context(previous_context)
    if events_log is not None:
        lines: List[str] = []
        for telemetry in telemetries:
            lines.extend(
                live.span_event_lines(
                    telemetry, trial=stream.key, process=process
                )
            )
        live.append_event_lines(events_log, lines)
    return report


def replay_sweep(
    streams: Sequence[CapturedStream],
    *,
    n_shards: int = 4,
    batch_size: int = 128,
    restart_fraction: Optional[float] = None,
    snapshot_every: Optional[int] = None,
    make_backend=None,
    observe=None,
    events_log=None,
    trace_context=None,
) -> List[ReplayReport]:
    """Replay every captured stream of a sweep; one report per stream.

    Args:
        streams: :func:`capture_streams` output.
        n_shards: shard count for every replay.
        batch_size: ingestion batch size for every replay.
        restart_fraction: when set (0..1), inject a crash/recovery after
            that fraction of each stream's alerts.
        snapshot_every: service snapshot cadence.
        make_backend: zero-argument callable producing a fresh backend
            per stream (default: in-memory).
        observe: optional :class:`repro.obs.ObserveConfig` enabling
            service spans/metrics on every replay.
        events_log: path collecting every replay's spans as stitchable
            JSONL lines (requires ``observe``).
        trace_context: one :class:`repro.obs.live.TraceContext` shared by
            all replays, linking their root spans into a wider trace.

    Replays run serially in the calling process — each one finishes in
    milliseconds, and the expensive part (capture) is what parallelizes.
    """
    if restart_fraction is not None and not (
        0.0 <= restart_fraction <= 1.0
    ):
        raise ConfigurationError(
            f"restart_fraction must be in [0, 1], got {restart_fraction}"
        )
    reports = []
    for stream in streams:
        restart_after = None
        if restart_fraction is not None:
            restart_after = int(len(stream.alerts) * restart_fraction)
        backend = MemoryBackend() if make_backend is None else make_backend()
        try:
            reports.append(
                replay_stream(
                    stream,
                    n_shards=n_shards,
                    backend=backend,
                    batch_size=batch_size,
                    restart_after=restart_after,
                    snapshot_every=snapshot_every,
                    observe=observe,
                    events_log=events_log,
                    trace_context=trace_context,
                )
            )
        finally:
            backend.close()
    return reports
