"""Pluggable persistence backends for the revocation service.

The service's durability model is a classic write-ahead pair:

- an **append-only decision ledger** — one record per processed alert
  (sequence number, detector, target, fate, revocation flag), appended
  in batch-commit units;
- an occasional **state snapshot** — the full
  :class:`repro.core.revocation.CounterState` plus the sequence number
  it covers, so recovery replays only the ledger tail.

Three backends implement the same :class:`PersistenceBackend` interface:

========== ============================= ==================================
backend    storage                        when to use
========== ============================= ==================================
memory     Python lists/dicts             tests, benches, ephemeral runs
jsonl      ``ledger.jsonl`` + snapshot    audit-friendly, grep-able, rsync-
           JSON under a directory         able; append is one write+flush
sqlite     one SQLite database file       transactional batch commits,
                                          fast seek to a sequence number
========== ============================= ==================================

All three give the same guarantee: a ledger append returns only after the
records are durable at the backend's level (memory: in the object; jsonl:
flushed to the OS; sqlite: committed), so a service restarted from
snapshot + ledger reconverges bit-identically to an uninterrupted run
(asserted in ``tests/revocation/test_recovery.py``).

Paper section: §3.1 (the base station's alert/report bookkeeping, made
durable)
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.errors import ConfigurationError

#: Ledger/snapshot schema version; bump on incompatible layout changes.
LEDGER_SCHEMA_VERSION = 1


class PersistenceBackend:
    """Interface the revocation service persists through.

    Subclasses implement an append-only ledger of JSON-ready record
    dicts (each carrying a unique, increasing ``"seq"``) plus a single
    replaceable snapshot document. ``append_records`` must be atomic at
    batch granularity as far as feasible for the medium: recovery
    tolerates a torn *trailing* record (jsonl) but never a torn prefix.
    """

    kind = "abstract"

    def append_records(self, records: List[Dict[str, Any]]) -> None:
        """Durably append one batch of ledger records (in order)."""
        raise NotImplementedError

    def read_records(self, after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield ledger records with ``seq > after_seq`` in seq order."""
        raise NotImplementedError

    def write_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Replace the snapshot document (atomic replace semantics)."""
        raise NotImplementedError

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        """The current snapshot document, or None when none exists."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any file handles (idempotent; memory backend: no-op)."""

    def __enter__(self) -> "PersistenceBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemoryBackend(PersistenceBackend):
    """In-process persistence: survives service restarts that reuse the
    same backend object (which is exactly what the crash-recovery tests
    simulate), not process death. The zero-dependency default.
    """

    kind = "memory"

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.snapshot: Optional[Dict[str, Any]] = None

    def append_records(self, records: List[Dict[str, Any]]) -> None:
        """Append a batch to the in-memory ledger list."""
        self.records.extend(dict(r) for r in records)

    def read_records(self, after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield retained records past ``after_seq``."""
        for record in self.records:
            if record["seq"] > after_seq:
                yield dict(record)

    def write_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Retain the snapshot document."""
        self.snapshot = json.loads(json.dumps(snapshot))

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        """The retained snapshot document, if any."""
        return None if self.snapshot is None else dict(self.snapshot)


class JsonlBackend(PersistenceBackend):
    """Append-only ``ledger.jsonl`` plus ``snapshot.json`` in a directory.

    The ledger is one JSON object per line, appended with an explicit
    flush per batch; the snapshot lands via unique-temp +
    :func:`os.replace`, so a reader (or a recovering service) never sees
    a torn snapshot. A torn trailing ledger line — a crash mid-append —
    is detected and ignored during replay.
    """

    kind = "jsonl"

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.ledger_path = self.root / "ledger.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self._handle = open(self.ledger_path, "a", encoding="utf-8")

    def append_records(self, records: List[Dict[str, Any]]) -> None:
        """Append one line per record and flush the batch."""
        for record in records:
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        self._handle.flush()

    def read_records(self, after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Parse the ledger file, skipping a torn trailing line."""
        if not self.ledger_path.is_file():
            return
        with open(self.ledger_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn trailing line is a crash artifact; anything
                    # after it cannot be trusted either.
                    return
                if record.get("seq", 0) > after_seq:
                    yield record

    def write_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Write snapshot.json atomically (temp + os.replace)."""
        tmp = self.snapshot_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.snapshot_path)

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        """Parse snapshot.json; a missing/corrupt file is simply absent."""
        try:
            return json.loads(self.snapshot_path.read_text())
        except (OSError, ValueError):
            return None

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


class SqliteBackend(PersistenceBackend):
    """One SQLite database holding the ledger and the snapshot.

    Batch appends commit in a single transaction (``executemany`` under
    one ``COMMIT``), so a crash never leaves a partial batch visible.
    The primary key on ``seq`` doubles as the replay cursor.
    """

    kind = "sqlite"

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS ledger ("
            "seq INTEGER PRIMARY KEY, record TEXT NOT NULL)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshot ("
            "id INTEGER PRIMARY KEY CHECK (id = 1), document TEXT NOT NULL)"
        )
        self._conn.commit()

    def append_records(self, records: List[Dict[str, Any]]) -> None:
        """Insert the batch inside one transaction."""
        self._conn.executemany(
            "INSERT INTO ledger (seq, record) VALUES (?, ?)",
            [
                (
                    record["seq"],
                    json.dumps(record, sort_keys=True, separators=(",", ":")),
                )
                for record in records
            ],
        )
        self._conn.commit()

    def read_records(self, after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Select ledger rows past the cursor, ordered by seq."""
        cursor = self._conn.execute(
            "SELECT record FROM ledger WHERE seq > ? ORDER BY seq",
            (after_seq,),
        )
        for (text,) in cursor:
            yield json.loads(text)

    def write_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Upsert the single snapshot row."""
        self._conn.execute(
            "INSERT INTO snapshot (id, document) VALUES (1, ?) "
            "ON CONFLICT (id) DO UPDATE SET document = excluded.document",
            (json.dumps(snapshot, sort_keys=True),),
        )
        self._conn.commit()

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        """The snapshot row's document, or None."""
        row = self._conn.execute(
            "SELECT document FROM snapshot WHERE id = 1"
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None

    def close(self) -> None:
        """Close the database connection (idempotent)."""
        try:
            self._conn.close()
        except sqlite3.ProgrammingError:
            pass


#: Backend kinds :func:`make_backend` accepts (the CLI mirrors these).
BACKEND_KINDS = ("memory", "jsonl", "sqlite")


def make_backend(
    kind: str, path: Optional[Union[str, pathlib.Path]] = None
) -> PersistenceBackend:
    """Construct a backend by name.

    ``memory`` ignores ``path``; ``jsonl`` treats it as a directory;
    ``sqlite`` as a database file path (``revocation.sqlite`` inside a
    directory path). Raises :class:`repro.errors.ConfigurationError` on
    an unknown kind or a missing required path.
    """
    if kind == "memory":
        return MemoryBackend()
    if path is None:
        raise ConfigurationError(f"backend {kind!r} needs a path")
    path = pathlib.Path(path)
    if kind == "jsonl":
        return JsonlBackend(path)
    if kind == "sqlite":
        if path.is_dir() or path.suffix == "":
            path = path / "revocation.sqlite"
        return SqliteBackend(path)
    raise ConfigurationError(
        f"unknown persistence backend {kind!r}; expected one of {BACKEND_KINDS}"
    )
