"""Per-figure data generators (paper Figures 4-14).

Figures 1-3 of the paper are protocol diagrams without data. Everything
with data is regenerated here:

- Figure 4 — RTT CDF (analysis substrate, Section 2.2.2);
- Figures 5-10 — closed-form analysis curves (Sections 2.3 and 3.2);
- Figure 11 — the random deployment scatter;
- Figures 12-14 — full-pipeline simulation vs theory.

All generators are deterministic in their ``seed`` and return
:class:`repro.experiments.series.FigureData`. The simulation-backed
generators (Figures 12-14) accept a ``runner`` — an
:class:`repro.experiments.runner.ExperimentRunner` — to shard their
pipeline runs across processes and reuse cached points; output is
bit-identical for any worker count.

Paper section: §4 (Figures 4-14).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import analysis
from repro.core.analysis import Population
from repro.core.pipeline import PipelineConfig
from repro.experiments.deployment import generate_deployment
from repro.experiments.runner import ExperimentRunner
from repro.experiments.series import FigureData
from repro.sim.timing import BIT_TIME_CYCLES, RttModel
from repro.utils.stats import Ecdf

#: Analysis population used by Figures 5-10 (10% benign beacons).
ANALYSIS_POPULATION = Population(n_total=10_000, n_beacons=1_010, n_malicious=10)

#: Default P' sweep for the analysis curves.
P_PRIME_GRID: Tuple[float, ...] = tuple(round(0.02 * i, 2) for i in range(1, 51))

#: Requesting nodes per malicious beacon in Figures 6 and 8.
DEFAULT_N_C = 100


# ----------------------------------------------------------------------
# Figure 4 — RTT cumulative distribution
# ----------------------------------------------------------------------
def figure04_rtt_cdf(
    *,
    samples: int = 10_000,
    seed: int = 0,
    model: Optional[RttModel] = None,
    curve_points: int = 101,
) -> FigureData:
    """CDF of the register-level RTT with no replay attack.

    The paper measured 10,000 RTTs on MICA motes; we draw them from the
    synthetic hardware model (DESIGN.md, Substitutions). The note records
    x_min, x_max, and the support width in bit-times (paper: ~4.5).
    """
    rtt_model = model if model is not None else RttModel()
    rng = random.Random(seed)
    rtts = rtt_model.sample_rtts(rng, samples)
    ecdf = Ecdf(rtts)

    fig = FigureData(
        figure_id="figure04",
        title="Cumulative distribution of round trip time",
        x_label="round trip time (CPU clock cycles)",
        y_label="cumulative distribution",
    )
    cdf = fig.new_series("cdf")
    for i in range(curve_points):
        q = i / (curve_points - 1)
        x = ecdf.quantile(q) if q > 0 else ecdf.x_min
        cdf.append(x, ecdf(x))
    width_bits = ecdf.support_width() / BIT_TIME_CYCLES
    fig.notes = (
        f"x_min={ecdf.x_min:.0f} cycles, x_max={ecdf.x_max:.0f} cycles, "
        f"support width={width_bits:.2f} bit-times (paper: ~4.5)"
    )
    return fig


# ----------------------------------------------------------------------
# Figure 5 — P_r vs P'
# ----------------------------------------------------------------------
def figure05_detection_vs_pprime(
    *,
    ms: Sequence[int] = (1, 2, 4, 8),
    p_grid: Sequence[float] = P_PRIME_GRID,
) -> FigureData:
    """``P_r = 1 - (1 - P')^m`` for each number of detecting IDs."""
    fig = FigureData(
        figure_id="figure05",
        title="Relationship between P_r and P'",
        x_label="P'",
        y_label="P_r",
    )
    for m in ms:
        series = fig.new_series(f"m={m}")
        for p in p_grid:
            series.append(p, analysis.detection_rate_pr(p, m))
    return fig


# ----------------------------------------------------------------------
# Figure 6 — revocation detection rate vs P'
# ----------------------------------------------------------------------
def figure06_detection_rate(
    *,
    taus: Sequence[int] = (1, 2, 3, 4),
    ms: Sequence[int] = (1, 2, 4, 8),
    m_fixed: int = 8,
    tau_fixed: int = 4,
    n_c: int = DEFAULT_N_C,
    p_grid: Sequence[float] = P_PRIME_GRID,
    population: Population = ANALYSIS_POPULATION,
) -> FigureData:
    """``P_d`` vs ``P'``: (a) sweeping tau at m=8, (b) sweeping m at tau=4."""
    fig = FigureData(
        figure_id="figure06",
        title="Detection rate vs P' (revocation)",
        x_label="P'",
        y_label="detection rate P_d",
        notes=f"N_c={n_c}; panel (a) fixes m={m_fixed}, panel (b) fixes tau={tau_fixed}",
    )
    for tau in taus:
        series = fig.new_series(f"(a) tau={tau}, m={m_fixed}")
        for p in p_grid:
            series.append(
                p,
                analysis.revocation_detection_rate(p, m_fixed, tau, n_c, population),
            )
    for m in ms:
        series = fig.new_series(f"(b) m={m}, tau={tau_fixed}")
        for p in p_grid:
            series.append(
                p,
                analysis.revocation_detection_rate(p, m, tau_fixed, n_c, population),
            )
    return fig


# ----------------------------------------------------------------------
# Figure 7 — detection rate vs N_c
# ----------------------------------------------------------------------
def figure07_detection_vs_nc(
    *,
    p_primes: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    m: int = 8,
    tau_alert: int = 1,
    nc_grid: Sequence[int] = tuple(range(0, 205, 5)),
    population: Population = ANALYSIS_POPULATION,
) -> FigureData:
    """``P_d`` vs the number of requesting nodes ``N_c``."""
    fig = FigureData(
        figure_id="figure07",
        title="Detection rate vs N_c",
        x_label="N_c (requesting nodes per malicious beacon)",
        y_label="detection rate P_d",
        notes=f"m={m}, tau={tau_alert}",
    )
    for p in p_primes:
        series = fig.new_series(f"P'={p}")
        for n_c in nc_grid:
            series.append(
                n_c,
                analysis.revocation_detection_rate(p, m, tau_alert, n_c, population),
            )
    return fig


# ----------------------------------------------------------------------
# Figure 8 — affected non-beacon nodes vs P'
# ----------------------------------------------------------------------
def figure08_affected_vs_pprime(
    *,
    combos: Sequence[Tuple[int, int]] = ((2, 8), (2, 4), (3, 8), (3, 4), (4, 8), (4, 4)),
    n_c: int = DEFAULT_N_C,
    p_grid: Sequence[float] = P_PRIME_GRID,
    population: Population = ANALYSIS_POPULATION,
) -> FigureData:
    """``N'`` vs ``P'`` for (tau, m) combinations, after revocation."""
    fig = FigureData(
        figure_id="figure08",
        title="Average number of affected non-beacon nodes vs P'",
        x_label="P'",
        y_label="N'",
        notes=f"N_c={n_c}",
    )
    for tau, m in combos:
        series = fig.new_series(f"tau={tau}, m={m}")
        for p in p_grid:
            series.append(
                p, analysis.affected_non_beacons(p, m, tau, n_c, population)
            )
    return fig


# ----------------------------------------------------------------------
# Figure 9 — worst-case affected nodes vs N_c
# ----------------------------------------------------------------------
def figure09_worstcase_affected(
    *,
    combos: Sequence[Tuple[int, int]] = (
        (8, 1),
        (4, 1),
        (2, 1),
        (8, 2),
        (4, 2),
        (2, 2),
    ),
    nc_grid: Sequence[int] = tuple(range(0, 255, 5)),
    population: Population = ANALYSIS_POPULATION,
    grid: int = 200,
) -> FigureData:
    """``N'`` vs ``N_c`` when the attacker picks ``P'`` to maximize ``N'``."""
    fig = FigureData(
        figure_id="figure09",
        title="Worst-case affected non-beacon nodes vs N_c",
        x_label="N_c",
        y_label="max over P' of N'",
    )
    for m, tau in combos:
        series = fig.new_series(f"m={m}, tau={tau}")
        for n_c in nc_grid:
            _, n_affected = analysis.worst_case_affected(
                m, tau, n_c, population, grid=grid
            )
            series.append(n_c, n_affected)
    return fig


# ----------------------------------------------------------------------
# Figure 10 — report-counter overflow probability
# ----------------------------------------------------------------------
def figure10_report_counter(
    *,
    n_cs: Sequence[int] = (1, 5, 10, 15, 20),
    tau_report_grid: Sequence[int] = tuple(range(0, 11)),
    m: int = 8,
    p_prime: float = 0.1,
    tau_alert: int = 1,
    n_wormholes: int = 10,
    p_d: float = 0.9,
    population: Population = ANALYSIS_POPULATION,
) -> FigureData:
    """``P_o`` vs ``tau_report`` for several ``N_c`` (threshold selection)."""
    fig = FigureData(
        figure_id="figure10",
        title="Probability of a benign beacon's report counter exceeding tau'",
        x_label="tau' (report-counter threshold)",
        y_label="P_o",
        notes=(
            f"N={population.n_total}, N_b={population.n_beacons}, "
            f"N_a={population.n_malicious}, N_w={n_wormholes}, p_d={p_d}, "
            f"tau={tau_alert}, m={m}, P'={p_prime}"
        ),
    )
    for n_c in n_cs:
        series = fig.new_series(f"N_c={n_c}")
        for tau_report in tau_report_grid:
            series.append(
                tau_report,
                analysis.report_counter_overflow(
                    tau_report,
                    n_c=n_c,
                    m=m,
                    p_prime=p_prime,
                    tau_alert=tau_alert,
                    n_wormholes=n_wormholes,
                    p_d=p_d,
                    population=population,
                ),
            )
    return fig


# ----------------------------------------------------------------------
# Figure 11 — deployment scatter
# ----------------------------------------------------------------------
def figure11_deployment(*, seed: int = 0) -> FigureData:
    """The random beacon deployment of the simulation (Section 4)."""
    deployment = generate_deployment(seed=seed)
    fig = FigureData(
        figure_id="figure11",
        title="Deployment of beacon nodes in the sensing field",
        x_label="x (feet)",
        y_label="y (feet)",
        notes=(
            f"{len(deployment.benign_beacons)} benign beacons, "
            f"{len(deployment.malicious_beacons)} malicious beacons, "
            f"{len(deployment.non_beacons)} non-beacon nodes"
        ),
    )
    benign = fig.new_series("benign beacons")
    for p in deployment.benign_beacons:
        benign.append(p.x, p.y)
    malicious = fig.new_series("malicious beacons")
    for p in deployment.malicious_beacons:
        malicious.append(p.x, p.y)
    return fig


# ----------------------------------------------------------------------
# Figures 12/13 — simulation vs theory
# ----------------------------------------------------------------------
def _simulate_sweep(
    p_grid: Sequence[float],
    *,
    trials: int,
    seed: int,
    config_kwargs: Optional[dict] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[Tuple[float, Dict[str, float], int]]:
    """Run the pipeline at each ``P'``; returns (p, metrics, n_c) tuples.

    Configs are built in the historical (point-major, trial-minor) order
    with the historical seed formula, then executed through the runner —
    so the tuples are identical to the old serial generator's output for
    any worker count.
    """
    kwargs = dict(config_kwargs or {})
    configs = [
        PipelineConfig(p_prime=p, seed=seed + 7_919 * trial, **kwargs)
        for p in p_grid
        for trial in range(trials)
    ]
    keys = [
        f"p={p}:trial:{trial}" for p in p_grid for trial in range(trials)
    ]
    active = runner if runner is not None else ExperimentRunner()
    results = active.run_pipeline_configs(configs, keys=keys)
    out: List[Tuple[float, Dict[str, float], int]] = []
    for i, p in enumerate(p_grid):
        for trial in range(trials):
            metrics = results[i * trials + trial]
            out.append(
                (p, metrics, int(round(metrics["mean_requesters_per_malicious"])))
            )
    return out


def figure12_sim_detection_rate(
    *,
    p_grid: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0),
    trials: int = 1,
    seed: int = 11,
    config_kwargs: Optional[dict] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FigureData:
    """Simulated vs theoretical detection rate vs ``P'`` (tau'=2, tau=2)."""
    fig = FigureData(
        figure_id="figure12",
        title="Detection rate vs P' (simulation vs theory)",
        x_label="P'",
        y_label="detection rate",
        notes="tau'=2, tau=2, m=8, p_d=0.9",
    )
    sim = fig.new_series("simulation")
    theory = fig.new_series("theory")
    kwargs = dict(config_kwargs or {})
    pop = Population(
        n_total=kwargs.get("n_total", 1_000),
        n_beacons=kwargs.get("n_beacons", 110),
        n_malicious=kwargs.get("n_malicious", 10),
    )
    tau_alert = kwargs.get("tau_alert", 2)
    m = kwargs.get("m_detecting_ids", 8)

    acc: dict = {}
    ncs: dict = {}
    for p, metrics, n_c in _simulate_sweep(
        p_grid, trials=trials, seed=seed, config_kwargs=config_kwargs,
        runner=runner,
    ):
        acc.setdefault(p, []).append(metrics["detection_rate"])
        ncs.setdefault(p, []).append(n_c)
    for p in p_grid:
        sim.append(p, sum(acc[p]) / len(acc[p]))
        mean_nc = int(round(sum(ncs[p]) / len(ncs[p])))
        theory.append(
            p, analysis.revocation_detection_rate(p, m, tau_alert, mean_nc, pop)
        )
    return fig


def figure13_sim_affected(
    *,
    p_grid: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0),
    trials: int = 1,
    seed: int = 13,
    config_kwargs: Optional[dict] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FigureData:
    """Simulated vs theoretical ``N'`` vs ``P'``."""
    fig = FigureData(
        figure_id="figure13",
        title="Affected non-beacon requesters vs P' (simulation vs theory)",
        x_label="P'",
        y_label="N'",
        notes="tau'=2, tau=2, m=8, p_d=0.9",
    )
    sim = fig.new_series("simulation")
    theory = fig.new_series("theory")
    kwargs = dict(config_kwargs or {})
    pop = Population(
        n_total=kwargs.get("n_total", 1_000),
        n_beacons=kwargs.get("n_beacons", 110),
        n_malicious=kwargs.get("n_malicious", 10),
    )
    tau_alert = kwargs.get("tau_alert", 2)
    m = kwargs.get("m_detecting_ids", 8)

    acc: dict = {}
    ncs: dict = {}
    for p, metrics, n_c in _simulate_sweep(
        p_grid, trials=trials, seed=seed, config_kwargs=config_kwargs,
        runner=runner,
    ):
        acc.setdefault(p, []).append(metrics["affected_non_beacons_per_malicious"])
        ncs.setdefault(p, []).append(n_c)
    for p in p_grid:
        sim.append(p, sum(acc[p]) / len(acc[p]))
        mean_nc = int(round(sum(ncs[p]) / len(ncs[p])))
        theory.append(
            p, analysis.affected_non_beacons(p, m, tau_alert, mean_nc, pop)
        )
    return fig


# ----------------------------------------------------------------------
# Figure 14 — ROC curves
# ----------------------------------------------------------------------
def figure14_roc(
    *,
    n_as: Sequence[int] = (5, 10),
    tau_reports: Sequence[int] = (2, 3, 4),
    tau_alerts: Sequence[int] = (1, 2, 3, 4, 6, 8, 12),
    trials: int = 1,
    seed: int = 17,
    p_grid_for_worst_case: int = 20,
    runner: Optional[ExperimentRunner] = None,
) -> FigureData:
    """ROC: detection rate vs false positive rate, sweeping ``tau``.

    For each (N_a, tau') pair, vary ``tau``; ``P'`` is chosen adversarially
    (maximizing ``N'``) per the paper's caption.
    """
    fig = FigureData(
        figure_id="figure14",
        title="ROC curves (detection rate vs false positive rate)",
        x_label="false positive rate",
        y_label="detection rate",
        notes="P' chosen adversarially per (tau, m); x points follow tau sweep",
    )
    # Build the full (N_a, tau', tau, trial) config grid up front so one
    # runner call can shard every operating point at once.
    configs: List[PipelineConfig] = []
    keys: List[str] = []
    for n_a in n_as:
        for tau_report in tau_reports:
            for tau_alert in tau_alerts:
                pop = Population(
                    n_total=1_000, n_beacons=100 + n_a, n_malicious=n_a
                )
                # Adversarial P' at the deployment's natural N_c (~60).
                best_p, _ = analysis.worst_case_affected(
                    8, tau_alert, 60, pop, grid=p_grid_for_worst_case
                )
                for trial in range(trials):
                    configs.append(
                        PipelineConfig(
                            n_beacons=100 + n_a,
                            n_malicious=n_a,
                            p_prime=best_p,
                            tau_report=tau_report,
                            tau_alert=tau_alert,
                            seed=seed + 31 * trial,
                        )
                    )
                    keys.append(
                        f"Na={n_a}:tau_report={tau_report}:"
                        f"tau={tau_alert}:trial:{trial}"
                    )
    active = runner if runner is not None else ExperimentRunner()
    results = active.run_pipeline_configs(configs, keys=keys)

    index = 0
    for n_a in n_as:
        for tau_report in tau_reports:
            series = fig.new_series(f"N_a={n_a}, tau'={tau_report}")
            for tau_alert in tau_alerts:
                det_sum = 0.0
                fp_sum = 0.0
                for _trial in range(trials):
                    metrics = results[index]
                    index += 1
                    det_sum += metrics["detection_rate"]
                    fp_sum += metrics["false_positive_rate"]
                series.append(fp_sum / trials, det_sum / trials)
    return fig


#: Registry used by benches and the CLI-style examples.
ALL_FIGURES = {
    "figure04": figure04_rtt_cdf,
    "figure05": figure05_detection_vs_pprime,
    "figure06": figure06_detection_rate,
    "figure07": figure07_detection_vs_nc,
    "figure08": figure08_affected_vs_pprime,
    "figure09": figure09_worstcase_affected,
    "figure10": figure10_report_counter,
    "figure11": figure11_deployment,
    "figure12": figure12_sim_detection_rate,
    "figure13": figure13_sim_affected,
    "figure14": figure14_roc,
}
