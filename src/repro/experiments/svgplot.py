"""Dependency-free SVG rendering of :class:`FigureData`.

Matplotlib is not available offline, so figures are rendered to plain SVG:
a line/scatter chart with axes, ticks, a legend, and one polyline per
series. Good enough to eyeball every reproduced figure in a browser.
"""

from __future__ import annotations

import html
import math
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.series import FigureData, Series

#: Color cycle (Okabe-Ito, colorblind-safe).
PALETTE = [
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
]

WIDTH = 640
HEIGHT = 420
MARGIN_L = 70
MARGIN_R = 20
MARGIN_T = 46
MARGIN_B = 56


def _nice_ticks(low: float, high: float, n: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, n - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    t = first
    while t <= high + step / 2:
        if t >= low - step / 2:
            ticks.append(round(t, 10))
        t += step
    return ticks


def _bounds(series: List[Series]) -> Tuple[float, float, float, float]:
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y]
    if not xs:
        raise ConfigurationError("cannot render a figure with no points")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    pad = 0.04 * (y_hi - y_lo)
    return x_lo, x_hi, y_lo - pad, y_hi + pad


def render_svg(
    fig: FigureData,
    *,
    scatter: bool = False,
    max_legend: Optional[int] = None,
) -> str:
    """Render ``fig`` as an SVG document string.

    Args:
        fig: the figure to draw.
        scatter: draw points only (for deployments); default polylines.
        max_legend: cap on legend entries (None = all).
    """
    labels = sorted(fig.series)
    series = [fig.series[k] for k in labels]
    x_lo, x_hi, y_lo, y_hi = _bounds(series)

    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    def sx(x: float) -> float:
        return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="sans-serif" font-size="12">'
    )
    parts.append(f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>')
    parts.append(
        f'<text x="{WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">'
        f"{html.escape(fig.title)}</text>"
    )

    # Axes box + grid + ticks.
    parts.append(
        f'<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444"/>'
    )
    for tx in _nice_ticks(x_lo, x_hi):
        if not x_lo <= tx <= x_hi:
            continue
        x = sx(tx)
        parts.append(
            f'<line x1="{x:.1f}" y1="{MARGIN_T}" x2="{x:.1f}" '
            f'y2="{MARGIN_T + plot_h}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{tx:g}</text>'
        )
    for ty in _nice_ticks(y_lo, y_hi):
        if not y_lo <= ty <= y_hi:
            continue
        y = sy(ty)
        parts.append(
            f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
            f'x2="{MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{MARGIN_L - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{ty:g}</text>'
        )

    # Axis labels.
    parts.append(
        f'<text x="{MARGIN_L + plot_w / 2}" y="{HEIGHT - 14}" '
        f'text-anchor="middle">{html.escape(fig.x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{MARGIN_T + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {MARGIN_T + plot_h / 2})">'
        f"{html.escape(fig.y_label)}</text>"
    )

    # Series.
    for index, (label, s) in enumerate(zip(labels, series)):
        color = PALETTE[index % len(PALETTE)]
        if scatter or len(s.x) == 1:
            for x, y in zip(s.x, s.y):
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                    f'fill="{color}"/>'
                )
        else:
            points = " ".join(
                f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(s.x, s.y)
            )
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{color}" stroke-width="1.8"/>'
            )

    # Legend.
    shown = labels if max_legend is None else labels[:max_legend]
    for index, label in enumerate(shown):
        color = PALETTE[labels.index(label) % len(PALETTE)]
        ly = MARGIN_T + 8 + 16 * index
        lx = MARGIN_L + plot_w - 150
        parts.append(
            f'<rect x="{lx}" y="{ly - 8}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{lx + 15}" y="{ly + 1}">{html.escape(label)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(fig: FigureData, path: str, **kwargs) -> str:
    """Render and write ``fig`` to ``path``; returns the path."""
    document = render_svg(fig, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
