"""Experiment-config serialization: JSON manifests for reproducibility.

A run is fully determined by its :class:`PipelineConfig` (every stochastic
stream derives from ``seed``), so persisting the config *is* persisting
the experiment. The manifest format adds a schema version and the library
version so stale manifests fail loudly instead of silently re-running
under different semantics.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Union

from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError
from repro.faults.config import fault_config_from_dict
from repro.obs import observe_config_from_dict

#: Manifest schema version; bump on incompatible config changes.
SCHEMA_VERSION = 1


def config_to_dict(config: PipelineConfig) -> Dict[str, Any]:
    """A plain-JSON-serializable dict of the config.

    The nested :class:`repro.faults.FaultConfig` (when set) flattens to a
    plain dict via ``dataclasses.asdict``, so fault scenarios are part of
    the manifest — and of the runner's content-addressed cache key.
    """
    raw = dataclasses.asdict(config)
    # Tuples (wormhole endpoints) become lists in JSON; normalize here so
    # the round-trip comparison is exact.
    if raw.get("wormhole_endpoints") is not None:
        raw["wormhole_endpoints"] = [
            list(end) for end in raw["wormhole_endpoints"]
        ]
    return raw


def config_from_dict(data: Dict[str, Any]) -> PipelineConfig:
    """Rebuild a config; unknown keys are rejected (typo protection)."""
    known = {f.name for f in dataclasses.fields(PipelineConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown config keys: {sorted(unknown)} (schema drift?)"
        )
    payload = dict(data)
    if payload.get("wormhole_endpoints") is not None:
        payload["wormhole_endpoints"] = tuple(
            tuple(end) for end in payload["wormhole_endpoints"]
        )
    if isinstance(payload.get("faults"), dict):
        payload["faults"] = fault_config_from_dict(payload["faults"])
    if isinstance(payload.get("observe"), dict):
        payload["observe"] = observe_config_from_dict(payload["observe"])
    return PipelineConfig(**payload)


def save_manifest(
    config: PipelineConfig,
    path: Union[str, pathlib.Path],
    *,
    note: str = "",
) -> pathlib.Path:
    """Write a versioned manifest for ``config``."""
    from repro import __version__

    destination = pathlib.Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    manifest = {
        "schema": SCHEMA_VERSION,
        "library_version": __version__,
        "note": note,
        "config": config_to_dict(config),
    }
    destination.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return destination


def load_manifest(path: Union[str, pathlib.Path]) -> PipelineConfig:
    """Read a manifest back into a config.

    Raises:
        ConfigurationError: wrong schema version, missing keys, or a
            config payload the current :class:`PipelineConfig` rejects.
    """
    source = pathlib.Path(path)
    if not source.is_file():
        raise ConfigurationError(f"manifest not found: {source}")
    try:
        manifest = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"manifest is not valid JSON: {exc}") from exc
    if manifest.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"manifest schema {manifest.get('schema')!r} != "
            f"supported {SCHEMA_VERSION}"
        )
    if "config" not in manifest:
        raise ConfigurationError("manifest has no 'config' section")
    return config_from_dict(manifest["config"])
