"""Random deployments of the paper's sensing field (Figure 11).

Generates the node placement used throughout Section 4: N sensor nodes
uniformly random in a square field, the first N_b of them beacons, of
which N_a are compromised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.utils.geometry import Point, random_point_in_rect


@dataclass
class Deployment:
    """A generated placement.

    Attributes:
        benign_beacons: positions of benign beacon nodes (Figure 11's
            blank circles).
        malicious_beacons: positions of compromised beacons (solid circles).
        non_beacons: positions of regular sensor nodes.
        field_width_ft / field_height_ft: field dimensions.
    """

    field_width_ft: float
    field_height_ft: float
    benign_beacons: List[Point] = field(default_factory=list)
    malicious_beacons: List[Point] = field(default_factory=list)
    non_beacons: List[Point] = field(default_factory=list)

    @property
    def n_total(self) -> int:
        """All nodes in the deployment."""
        return (
            len(self.benign_beacons)
            + len(self.malicious_beacons)
            + len(self.non_beacons)
        )

    def beacon_density_per_sqft(self) -> float:
        """Beacons per square foot (coverage sanity metric)."""
        area = self.field_width_ft * self.field_height_ft
        return (len(self.benign_beacons) + len(self.malicious_beacons)) / area

    def expected_neighbors(self, comm_range_ft: float) -> float:
        """Mean nodes within radio range of a random point (border-ignoring)."""
        import math

        area = self.field_width_ft * self.field_height_ft
        return self.n_total * math.pi * comm_range_ft**2 / area


def generate_deployment(
    *,
    n_total: int = 1_000,
    n_beacons: int = 110,
    n_malicious: int = 10,
    field_width_ft: float = 1_000.0,
    field_height_ft: float = 1_000.0,
    seed: int = 0,
) -> Deployment:
    """Uniform random deployment with the paper's Section 4 defaults."""
    if not 0 <= n_malicious <= n_beacons <= n_total:
        raise ConfigurationError(
            f"need 0 <= n_malicious ({n_malicious}) <= n_beacons ({n_beacons})"
            f" <= n_total ({n_total})"
        )
    rng = random.Random(seed)
    deployment = Deployment(
        field_width_ft=field_width_ft, field_height_ft=field_height_ft
    )
    for index in range(n_total):
        point = random_point_in_rect(rng, field_width_ft, field_height_ft)
        if index < n_beacons - n_malicious:
            deployment.benign_beacons.append(point)
        elif index < n_beacons:
            deployment.malicious_beacons.append(point)
        else:
            deployment.non_beacons.append(point)
    return deployment
