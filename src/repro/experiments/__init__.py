"""Experiment harness: per-figure data generators and deployments.

One function per evaluation figure (``figure04`` ... ``figure14``); each
returns a :class:`repro.experiments.series.FigureData` containing exactly
the series the paper plots, so the benchmarks can print paper-comparable
rows. Execution is delegated to
:class:`repro.experiments.runner.ExperimentRunner`, which shards trials
across processes and caches per-config results on disk.

Paper section: §4 (evaluation harness).
"""

from repro.experiments.series import FigureData, Series
from repro.experiments.deployment import Deployment, generate_deployment
from repro.experiments.montecarlo import (
    TrialSummary,
    run_trials,
    summarize,
    trial_seeds,
)
from repro.experiments.distributed import run_worker
from repro.experiments.runner import (
    ExperimentRunner,
    PipelineExperiment,
    ProgressEvent,
    ResultCache,
    RunStats,
    TrialError,
    cache_key,
    execute_pipeline,
)
from repro.experiments.svgplot import render_svg, save_svg
from repro.experiments.fieldmap import (
    FieldMap,
    MarkerGroup,
    pipeline_field_map,
    render_field_map,
)
from repro.experiments.validation import (
    max_abs_gap,
    proportion_consistent,
    proportion_z_score,
)
from repro.experiments import figures

__all__ = [
    "FigureData",
    "Series",
    "Deployment",
    "generate_deployment",
    "TrialSummary",
    "run_trials",
    "summarize",
    "trial_seeds",
    "ExperimentRunner",
    "PipelineExperiment",
    "ProgressEvent",
    "ResultCache",
    "RunStats",
    "TrialError",
    "cache_key",
    "execute_pipeline",
    "run_worker",
    "render_svg",
    "save_svg",
    "FieldMap",
    "MarkerGroup",
    "pipeline_field_map",
    "render_field_map",
    "max_abs_gap",
    "proportion_consistent",
    "proportion_z_score",
    "figures",
]
