"""Generic parameter sweeps over the pipeline.

The figure/ablation benches all share one skeleton: vary one
:class:`PipelineConfig` field over a grid, run (optionally several trials
per point), and collect metrics into series. This module factors that
skeleton out so downstream users can sweep *any* config field in three
lines::

    from repro.experiments.sweeps import sweep_config_field

    fig = sweep_config_field(
        "wormhole_p_d", (0.5, 0.7, 0.9, 1.0),
        metrics=("false_positive_rate",),
        base=dict(n_malicious=0, collusion=False),
        trials=3,
    )

Execution goes through :class:`repro.experiments.runner.ExperimentRunner`:
pass ``runner=ExperimentRunner(n_workers=4, cache_dir=...)`` to shard the
grid across processes and skip already-computed points. Seeds are derived
per (point, trial) exactly as the serial path always has, so results are
bit-identical for any worker count.

Paper section: §4 (evaluation parameter studies).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence

from repro.core.pipeline import PipelineConfig, PipelineResult
from repro.errors import ConfigurationError
from repro.experiments.runner import PIPELINE_METRICS, ExperimentRunner
from repro.experiments.series import FigureData
from repro.sim.rng import derive_seed

#: PipelineResult attributes a sweep may collect (runner task payload).
SUPPORTED_METRICS = PIPELINE_METRICS


def _metric_value(result: PipelineResult, metric: str) -> float:
    if metric not in SUPPORTED_METRICS:
        raise ConfigurationError(
            f"unsupported metric {metric!r}; pick from {SUPPORTED_METRICS}"
        )
    return float(getattr(result, metric))


def sweep_config_field(
    field_name: str,
    values: Sequence[Any],
    *,
    metrics: Sequence[str] = ("detection_rate",),
    base: Optional[Dict[str, Any]] = None,
    trials: int = 1,
    base_seed: int = 0,
    figure_id: str = "sweep",
    title: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FigureData:
    """Sweep one config field; returns one series per requested metric.

    Args:
        field_name: a :class:`PipelineConfig` dataclass field.
        values: grid of values for that field.
        metrics: :class:`PipelineResult` attributes to collect.
        base: overrides applied to every point (e.g. smaller fields).
        trials: independent runs per point (seeds derived per trial);
            series hold the per-point mean.
        base_seed: determinism anchor.
        figure_id / title: FigureData metadata.
        runner: execution engine (workers + result cache); None runs
            serially in-process. The per-point means are bit-identical
            for any runner.

    Raises:
        ConfigurationError: unknown field, empty grid, or bad metric.
    """
    known_fields = {f.name for f in dataclasses.fields(PipelineConfig)}
    if field_name not in known_fields:
        raise ConfigurationError(
            f"{field_name!r} is not a PipelineConfig field"
        )
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    for metric in metrics:
        if metric not in SUPPORTED_METRICS:
            raise ConfigurationError(
                f"unsupported metric {metric!r}; pick from {SUPPORTED_METRICS}"
            )

    fig = FigureData(
        figure_id=figure_id,
        title=title or f"Sweep of {field_name}",
        x_label=field_name,
        y_label=", ".join(metrics),
        notes=f"{trials} trial(s) per point; base overrides: {base or {}}",
    )
    series = {metric: fig.new_series(metric) for metric in metrics}
    overrides = dict(base or {})
    overrides.pop(field_name, None)

    # Build every (point, trial) config up front — same seed derivation as
    # the historical serial loop — then hand the flat grid to the runner.
    configs = []
    keys = []
    for value in values:
        for trial in range(trials):
            seed = derive_seed(base_seed, f"{field_name}={value}:{trial}") % (
                2**31
            )
            configs.append(
                PipelineConfig(**{**overrides, field_name: value, "seed": seed})
            )
            keys.append(f"{field_name}={value}:trial:{trial}")
    active = runner if runner is not None else ExperimentRunner()
    results = active.run_pipeline_configs(configs, keys=keys)

    for i, value in enumerate(values):
        sums = {metric: 0.0 for metric in metrics}
        for trial in range(trials):
            point = results[i * trials + trial]
            for metric in metrics:
                sums[metric] += float(point[metric])
        x = float(value) if isinstance(value, (int, float)) else float(
            values.index(value)
        )
        for metric in metrics:
            series[metric].append(x, sums[metric] / trials)
    return fig
