"""Parallel experiment execution with a content-addressed result cache.

Monte-Carlo trials and sweep points are embarrassingly parallel: every
pipeline run is fully determined by its :class:`PipelineConfig` (all
stochastic streams derive from ``config.seed``), so trials can be sharded
across a :class:`concurrent.futures.ProcessPoolExecutor` without changing
a single drawn random number. This module is the execution layer the
figure generators, sweeps, and benches route through:

- :class:`ExperimentRunner` — maps tasks over ``n_workers`` processes
  (``n_workers=1`` is a true serial fallback: same process, same order),
  fires a progress callback per completed task, and records per-task
  timing in :class:`RunStats`;
- **graceful degradation** — with ``keep_going=True`` a task that raises
  does not abort the sweep: the exception is captured worker-side as a
  picklable :class:`TrialError` record (type, message, traceback,
  attempts), the task's slot in the results list becomes ``None``, and
  every other task still runs. ``task_retries`` re-runs a failing task a
  bounded number of times before recording the failure (fault-injected
  configs can raise legitimately transient errors such as
  :class:`repro.errors.BudgetExceededError`). The default
  (``keep_going=False``) fails fast with :class:`ExperimentError`;
- :class:`ResultCache` — JSON files on disk, content-addressed by a
  stable SHA-256 of the pipeline config + seed + library version, so
  re-running a bench skips every already-computed point. Writes are
  atomic (write-temp + :func:`os.replace`) and safe under concurrent
  writers, and :meth:`ResultCache.claim`/:meth:`ResultCache.release`
  give cooperating processes an exclusive compute claim so a shared
  store never recomputes the same key twice;
- ``backend="queue"`` — the distributed execution backend
  (:mod:`repro.experiments.distributed`): a file-queue coordinator that
  shards task manifests to standalone worker processes with work
  stealing and lease-based crash recovery, still bit-identical to the
  serial path;
- :class:`PipelineExperiment` — a picklable ``seed -> metrics`` callable
  for :func:`repro.experiments.montecarlo.run_trials`.

Determinism contract: for identical inputs, the runner returns results in
input order and bit-identical to the serial path, for any ``n_workers``
and any backend.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import dataclasses

from repro.core.pipeline import PipelineConfig, PipelineResult, SecureLocalizationPipeline
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.config_io import config_to_dict
from repro.obs import ObserveConfig, active_span_of, merge_snapshots
from repro.utils.profiling import merge_profiles

#: Scalar :class:`PipelineResult` attributes collected by pipeline tasks.
#: Every metric is always collected, so cache entries stay valid when a
#: caller later asks for a different subset.
PIPELINE_METRICS: Tuple[str, ...] = (
    "detection_rate",
    "false_positive_rate",
    "affected_non_beacons_per_malicious",
    "revoked_malicious",
    "revoked_benign",
    "alerts_accepted",
    "alerts_rejected",
    "probes_sent",
    "mean_localization_error_ft",
    "mean_requesters_per_malicious",
)

#: Cache entry layout version; bump on incompatible changes.
#: v2: §2.2.1 wormhole-filter fix changed seeded pipeline outputs, and
#: undefined rates are now omitted from metric dicts instead of 0.0.
#: v3: configs gained the ``detector`` field (part of the key material),
#: so pre-arena entries address differently and must not be served.
CACHE_SCHEMA_VERSION = 3


def collect_metrics(result: PipelineResult) -> Dict[str, float]:
    """Flatten a pipeline result to the scalar metric dict tasks return.

    Metrics whose value is ``None`` (undefined rates — e.g.
    ``detection_rate`` in a trial with no malicious beacons) are omitted
    so the Monte-Carlo aggregation averages only over trials where the
    metric is defined, instead of biasing the mean with zeros.
    """
    metrics: Dict[str, float] = {}
    for name in PIPELINE_METRICS:
        value = getattr(result, name)
        if value is None:
            continue
        metrics[name] = float(value)
    return metrics


def execute_pipeline(config: PipelineConfig) -> Dict[str, float]:
    """Run one pipeline and return its metrics (the worker entry point)."""
    return collect_metrics(SecureLocalizationPipeline(config).run())


def execute_pipeline_profiled(config: PipelineConfig) -> Dict[str, Any]:
    """Run one pipeline, returning metrics plus its profile snapshot.

    The profiled worker entry point: ``{"metrics": {...}, "profile":
    {"phases": ..., "counters": ...}}``. Metrics are identical to
    :func:`execute_pipeline` (the always-on instrumentation draws no
    random numbers). Kept as the historical name for
    ``_InstrumentedTask(profile=True)``.
    """
    return _InstrumentedTask(profile=True)(config)


@dataclass(frozen=True)
class _InstrumentedTask:
    """Picklable pipeline worker with profiling and/or observability.

    Closures do not pickle across the process boundary; a frozen
    dataclass carrying the instrumentation switches does. The returned
    payload is ``{"metrics": ...}`` plus ``"profile"`` (with
    ``profile=True``) and ``"telemetry"`` (when the run observed) — the
    runner unwraps it so callers still see plain metric dicts.

    ``observe`` is applied only to configs whose own ``observe`` is None,
    so a caller-specified per-config choice always wins.
    """

    profile: bool = False
    observe: Optional[ObserveConfig] = None

    def __call__(self, config: PipelineConfig) -> Dict[str, Any]:
        if self.observe is not None and config.observe is None:
            config = dataclasses.replace(config, observe=self.observe)
        pipeline = SecureLocalizationPipeline(config)
        metrics = collect_metrics(pipeline.run())
        out: Dict[str, Any] = {"metrics": metrics}
        if self.profile:
            out["profile"] = pipeline.profile_snapshot()
        if config.observe is not None:
            out["telemetry"] = pipeline.telemetry()
        return out


def cache_key(config: PipelineConfig, *, kind: str = "pipeline") -> str:
    """Stable content address of one task: config + seed + code version.

    The seed is part of the config, so distinct trials hash apart; the
    library version is mixed in so upgrading the code invalidates every
    stale entry without any bookkeeping. The ``observe`` knob is *not*
    part of the address — observability never changes results (asserted
    in tests), so observed and unobserved runs share cache entries.
    """
    from repro import __version__

    config_dict = config_to_dict(config)
    config_dict.pop("observe", None)
    material = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
            "kind": kind,
            "config": config_dict,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed JSON result store (one file per task).

    Entries live at ``<root>/<key>.json`` and carry their key material for
    debuggability. A missing, unreadable, or malformed file is simply a
    miss — the task recomputes and the entry is rewritten.

    The store is safe to share between processes: :meth:`put` writes to a
    uniquely named temp file and lands it with :func:`os.replace`, so a
    reader never observes a torn entry and the last concurrent writer
    wins whole-file (all writers of one key produce identical bytes —
    results are content-addressed — so "last wins" is also "any wins").
    :meth:`claim`/:meth:`release` additionally give cooperating writers
    an exclusive *compute* claim per key (an ``O_EXCL`` lock file), which
    the distributed backend uses so two workers never recompute the same
    entry.
    """

    #: Process-wide uniquifier so concurrent threads of one process never
    #: collide on a temp-file name.
    _tmp_ids = itertools.count()

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path(self, key: str) -> pathlib.Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / f"{key}.json"

    def claim_path(self, key: str) -> pathlib.Path:
        """Where the exclusive compute claim for ``key`` lives."""
        return self.root / f"{key}.claim"

    def claim(self, key: str) -> bool:
        """Atomically acquire the exclusive compute claim for ``key``.

        Returns True when this caller now holds the claim (it must
        eventually :meth:`release`), False when another process already
        holds it. Claiming is advisory — :meth:`put` works without one —
        but cooperating workers use it to elect a single computer per
        key.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                self.claim_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps({"pid": os.getpid()}))
        return True

    def release(self, key: str) -> None:
        """Drop the compute claim for ``key`` (idempotent)."""
        try:
            self.claim_path(key).unlink()
        except OSError:
            pass

    def get(self, key: str) -> Optional[Dict[str, float]]:
        """The cached metrics for ``key``, or None on miss/corruption."""
        path = self.path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        metrics = entry.get("metrics") if isinstance(entry, dict) else None
        if not isinstance(metrics, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return {str(name): float(value) for name, value in metrics.items()}
        except (TypeError, ValueError):
            return None

    def put(
        self,
        key: str,
        metrics: Dict[str, float],
        *,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist ``metrics`` under ``key`` (atomic rename, never partial).

        ``telemetry`` (a registry snapshot from an observed run) rides
        along as entry metadata for offline inspection; :meth:`get`
        serves metrics only, so unobserved readers are unaffected.
        """
        from repro import __version__

        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
            "metrics": metrics,
        }
        if config is not None:
            entry["config"] = config_to_dict(config)
        if telemetry is not None:
            entry["telemetry"] = telemetry
        path = self.path(key)
        # Unique per (process, thread-call) so concurrent writers never
        # share a temp file; os.replace is atomic, so readers see either
        # the old complete entry or the new complete entry, never a mix.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(self._tmp_ids)}")
        try:
            tmp.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise


@dataclass(frozen=True)
class TrialError:
    """A structured record of one task that failed despite retries.

    Captured worker-side (tracebacks do not pickle; their formatted text
    does), so a crash in a subprocess surfaces with full context instead
    of an opaque ``BrokenProcessPool``-style stub.

    Attributes:
        key: the task's human-readable label.
        index: the task's position in the input sequence.
        error_type: the exception class name (e.g. ``"BudgetExceededError"``).
        message: ``str(exception)`` of the final attempt.
        traceback_text: the final attempt's formatted traceback.
        attempts: executions of the task, including retries.
        phase: the innermost span/phase open when the final attempt
            failed (e.g. ``"phase:detection"``), or ``""`` when nothing
            tagged the exception. Pipeline phases tag exceptions even
            with observability off.
    """

    key: str
    index: int
    error_type: str
    message: str
    traceback_text: str
    attempts: int
    phase: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """The record as a plain dict (for ``errors.json``)."""
        return {
            "key": self.key,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback_text,
            "attempts": self.attempts,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class ProgressEvent:
    """One completed task, as seen by the progress callback.

    Attributes:
        done: tasks completed so far in this runner call.
        total: tasks in this runner call.
        key: the task's human-readable label.
        seconds: wall-clock spent on the task (≈0 for cache hits).
        cached: True when the result came from the cache.
        ok: False when the task failed and the runner kept going.
    """

    done: int
    total: int
    key: str
    seconds: float
    cached: bool
    ok: bool = True


@dataclass
class RunStats:
    """Timing hooks: what the runner actually executed vs served cached."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    task_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-executed-trial profile snapshots (only with ``profile=True``;
    #: cache hits contribute none — they executed nothing).
    profiles: List[Dict[str, Any]] = field(default_factory=list)
    #: Structured records of tasks that failed after exhausting their
    #: retry budget (only populated under ``keep_going=True``; the
    #: fail-fast path raises instead).
    errors: List[TrialError] = field(default_factory=list)
    #: Per-executed-trial telemetry (only when the runner observes):
    #: ``{"index", "key", "registry", "spans", "events"}`` entries in
    #: completion order. Cache hits contribute none — they ran nothing.
    telemetry: List[Dict[str, Any]] = field(default_factory=list)
    #: Runner-level task spans (only when observing): one completed-span
    #: dict per executed task, on the runner's own wall clock.
    run_spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Queue backend only: leases expired and re-queued after a worker
    #: crashed or stalled (each re-queue reruns one task elsewhere).
    requeues: int = 0
    #: Queue backend only: tasks a worker claimed from another worker's
    #: shard (work stealing for stragglers).
    steals: int = 0
    #: Queue backend only: one summary dict per worker process
    #: (``{"worker", "claims", "completed", "steals", "registry"}``),
    #: sorted by worker id. Merge the registries with
    #: :meth:`worker_registry`.
    worker_snapshots: List[Dict[str, Any]] = field(default_factory=list)
    #: Queue backend + observe only: the trace id the coordinator minted
    #: for the latest run (propagated to workers via task manifests; see
    #: :class:`repro.obs.TraceContext` and ``tools/stitch_trace.py``).
    trace_id: Optional[str] = None

    def worker_registry(self) -> Dict[str, Any]:
        """The workers' own metrics registries reduced into one.

        Order-insensitive like :meth:`merged_registry`, but over the
        queue workers' *process-level* counters (tasks completed, steals)
        rather than the per-trial simulation telemetry.
        """
        return merge_snapshots(
            entry["registry"]
            for entry in self.worker_snapshots
            if entry.get("registry") is not None
        )

    @property
    def failed(self) -> int:
        """Tasks that ended in a recorded failure."""
        return len(self.errors)

    @property
    def total_seconds(self) -> float:
        """Summed per-task wall clock (not wall clock of the whole run)."""
        return sum(self.task_seconds.values())

    def profile_summary(self) -> Dict[str, Any]:
        """Phase seconds and counters summed over all executed trials."""
        return merge_profiles(self.profiles)

    def merged_registry(self) -> Dict[str, Any]:
        """All trials' registry snapshots reduced into one.

        Order-insensitive (see :func:`repro.obs.merge_snapshots`), so the
        merge over a parallel run's completion order equals the serial
        run's exactly — this is the property the runner tests assert.
        """
        return merge_snapshots(
            entry["registry"]
            for entry in self.telemetry
            if entry.get("registry") is not None
        )


def _timed_call(
    fn: Callable[[Any], Any], payload: Any, retries: int = 0
) -> Tuple[bool, Any, float, int]:
    """Worker-side wrapper: run ``fn(payload)``, timing and shielding it.

    Returns ``(ok, value, seconds, attempts)``. On failure ``value`` is
    the picklable 4-tuple ``(error_type, message, traceback_text,
    phase)`` of the last attempt — live exception objects (and their
    tracebacks) do not survive the process boundary reliably, their
    formatted text does. ``phase`` is the innermost span/phase that
    tagged the exception (see :func:`repro.obs.active_span_of`).
    ``retries`` extra attempts are made before giving up; ``seconds``
    covers all attempts.
    """
    start = time.perf_counter()
    attempts = 0
    failure: Tuple[str, str, str, str] = ("", "", "", "")
    for _ in range(retries + 1):
        attempts += 1
        try:
            result = fn(payload)
        except Exception as exc:  # noqa: BLE001 - the shield is the point
            failure = (
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
                active_span_of(exc),
            )
            continue
        return True, result, time.perf_counter() - start, attempts
    return False, failure, time.perf_counter() - start, attempts


class ExperimentRunner:
    """Shards independent experiment tasks across worker processes.

    Args:
        n_workers: process count; 1 (the default) runs everything in the
            calling process with zero multiprocessing machinery (with
            ``backend="queue"`` it is the spawned worker count instead,
            and 1 still exercises the full queue protocol).
        backend: ``"pool"`` (the default) shards over an in-process
            :class:`~concurrent.futures.ProcessPoolExecutor`;
            ``"queue"`` routes execution through the distributed
            file-queue coordinator (:mod:`repro.experiments.distributed`)
            — standalone worker processes claiming leased task manifests
            with work stealing and crash re-queue. Both are bit-identical
            to serial.
        queue_dir: queue backend only — the queue directory (shared
            filesystem path workers rendezvous on). Default: a fresh
            temporary directory per runner call. Pre-started standalone
            workers (``python -m repro.experiments --worker DIR``) attach
            to the same directory.
        lease_timeout_s: queue backend only — a claimed task whose lease
            heartbeat goes stale for this long is treated as lost and
            re-queued (crashed workers spawned by the coordinator are
            detected immediately via their exit status).
        queue_crash_after: queue backend only — fault injection for
            tests/benches: maps a spawned worker's index to the claim
            count after which it hard-crashes (``os._exit``) while still
            holding its lease, exercising the re-queue path.
        cache_dir: enable the on-disk :class:`ResultCache` rooted here.
        progress: called with a :class:`ProgressEvent` after each task.
        profile: collect per-trial phase timings and hot-path counters
            for executed pipeline tasks into ``stats.profiles``
            (aggregate via :meth:`RunStats.profile_summary`). Metrics
            are unchanged; cache behaviour is unchanged (entries store
            metrics only, and hits contribute no profile).
        keep_going: degrade gracefully — a task that raises (after
            ``task_retries`` extra attempts) yields ``None`` in the
            result list and a :class:`TrialError` in ``stats.errors``
            instead of aborting the whole sweep. The default fails fast
            with :class:`repro.errors.ExperimentError`.
        task_retries: extra executions of a failing task before it is
            declared failed (applies to both modes; retried tasks that
            eventually succeed leave no error record).
        observe: collect observability telemetry for executed pipeline
            tasks. ``True`` means a default
            :class:`repro.obs.ObserveConfig`; an explicit config selects
            signals. Per-trial telemetry lands in ``stats.telemetry``
            (merge registries via :meth:`RunStats.merged_registry`),
            runner-level task spans in ``stats.run_spans``. Metrics and
            cache addresses are unchanged — observation never alters
            results.
        telemetry_port: serve live ``/metrics`` / ``/healthz`` /
            ``/spans`` scrapes from this (coordinator) process on the
            given port (0 = ephemeral; read the bound port from
            :attr:`telemetry_server`). ``/metrics`` is the union of the
            merged per-trial registries, the queue workers' registries,
            and — while a queue run is in flight — its liveness gauges
            (depth, in-flight leases, heartbeat staleness). Call
            :meth:`close` (or use the runner as a context manager) to
            stop the server.

    The runner is deterministic: results come back in input order and are
    bit-identical for any worker count, because every task is a pure
    function of its (picklable) payload.
    """

    def __init__(
        self,
        *,
        n_workers: int = 1,
        backend: str = "pool",
        queue_dir: Optional[Union[str, pathlib.Path]] = None,
        lease_timeout_s: float = 30.0,
        queue_crash_after: Optional[Mapping[int, int]] = None,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        profile: bool = False,
        keep_going: bool = False,
        task_retries: int = 0,
        observe: Union[ObserveConfig, bool, None] = None,
        telemetry_port: Optional[int] = None,
    ) -> None:
        if not isinstance(n_workers, int) or n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be an int >= 1, got {n_workers!r}"
            )
        if backend not in ("pool", "queue"):
            raise ConfigurationError(
                f"backend must be 'pool' or 'queue', got {backend!r}"
            )
        if not isinstance(lease_timeout_s, (int, float)) or lease_timeout_s <= 0:
            raise ConfigurationError(
                f"lease_timeout_s must be > 0, got {lease_timeout_s!r}"
            )
        if not isinstance(task_retries, int) or task_retries < 0:
            raise ConfigurationError(
                f"task_retries must be an int >= 0, got {task_retries!r}"
            )
        if observe is True:
            observe = ObserveConfig()
        elif observe is False:
            observe = None
        if observe is not None and not isinstance(observe, ObserveConfig):
            raise ConfigurationError(
                f"observe must be an ObserveConfig, bool, or None, got {observe!r}"
            )
        self.n_workers = n_workers
        self.backend = backend
        self.queue_dir = pathlib.Path(queue_dir) if queue_dir is not None else None
        self.lease_timeout_s = float(lease_timeout_s)
        self.queue_crash_after = dict(queue_crash_after or {})
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.profile = bool(profile)
        self.keep_going = bool(keep_going)
        self.task_retries = task_retries
        self.observe = observe
        self.stats = RunStats()
        self._wall0 = time.perf_counter()
        #: Queue run directory currently being coordinated (liveness hook).
        self._active_queue_run: Optional[pathlib.Path] = None
        self.telemetry_server = None
        if telemetry_port is not None:
            from repro.obs import TelemetryServer

            self.telemetry_server = TelemetryServer(
                self._live_snapshot,
                health_fn=lambda: {
                    "status": "ok",
                    "backend": self.backend,
                    "executed": self.stats.executed,
                },
                spans_fn=lambda: self.stats.run_spans[-256:],
                port=telemetry_port,
            ).start()

    def _live_snapshot(self) -> Dict[str, Any]:
        """The /metrics view: merged trial + worker + liveness state."""
        from repro.obs import queue_liveness_snapshot

        parts = [self.stats.merged_registry(), self.stats.worker_registry()]
        active = self._active_queue_run
        if active is not None:
            parts.append(
                queue_liveness_snapshot(
                    active,
                    requeues=self.stats.requeues,
                    steals=self.stats.steals,
                )
            )
        return merge_snapshots(parts)

    def close(self) -> None:
        """Stop the telemetry server, if one is attached (idempotent)."""
        if self.telemetry_server is not None:
            self.telemetry_server.stop()
            self.telemetry_server = None

    def __enter__(self) -> "ExperimentRunner":
        """Context-manager form: ensures :meth:`close` on exit."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Stop the attached telemetry server on exit."""
        self.close()

    def reset_stats(self) -> None:
        """Zero the timing/caching counters (runners are reusable)."""
        self.stats = RunStats()
        self._wall0 = time.perf_counter()

    # ------------------------------------------------------------------
    # generic mapping
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        keys: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """``[fn(p) for p in payloads]``, sharded over the workers.

        ``fn`` and each payload must be picklable when ``n_workers > 1``
        (module-level functions and dataclass instances are; closures are
        not). Results are returned in input order. Under ``keep_going``,
        a failed task's slot holds ``None`` (its record is in
        ``stats.errors``). No caching: use :meth:`run_pipeline_configs`
        for content-addressed pipeline tasks.
        """
        task_keys = self._check_keys(keys, len(payloads))
        results: List[Any] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        self._execute(fn, payloads, pending, results, task_keys, done_offset=0, total=len(payloads))
        return results

    # ------------------------------------------------------------------
    # cached pipeline tasks
    # ------------------------------------------------------------------
    def run_pipeline_configs(
        self,
        configs: Sequence[PipelineConfig],
        *,
        keys: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, float]]:
        """Run one pipeline per config; metric dicts in input order.

        With a cache configured, each config is first looked up by its
        content address (:func:`cache_key`); only misses execute, and
        their results are written back for the next invocation. Failed
        tasks (``keep_going``) are neither cached nor profiled — their
        slots hold ``None`` and their records land in ``stats.errors``.
        """
        task_keys = self._check_keys(keys, len(configs))
        results: List[Optional[Dict[str, float]]] = [None] * len(configs)
        pending: List[int] = []
        total = len(configs)
        done = 0
        hashes: Dict[int, str] = {}
        for index, config in enumerate(configs):
            if self.cache is not None:
                hashes[index] = cache_key(config)
                cached = self.cache.get(hashes[index])
                if cached is not None:
                    results[index] = cached
                    self.stats.cache_hits += 1
                    done += 1
                    self._emit(done, total, task_keys[index], 0.0, cached=True)
                    continue
                self.stats.cache_misses += 1
            pending.append(index)
        instrumented = self.profile or self.observe is not None
        task: Callable[[PipelineConfig], Any] = (
            _InstrumentedTask(profile=self.profile, observe=self.observe)
            if instrumented
            else execute_pipeline
        )
        self._execute(
            task, configs, pending, results, task_keys,
            done_offset=done, total=total,
        )
        telemetry_by_index: Dict[int, Dict[str, Any]] = {}
        if instrumented:
            # Unwrap the instrumented payloads (in input order, so stats
            # lists are deterministic for any worker count): profiles and
            # telemetry accumulate in the stats, metric dicts land where
            # callers expect them.
            for index in pending:
                wrapped = results[index]
                if wrapped is None:  # failed under keep_going
                    continue
                if "profile" in wrapped:
                    self.stats.profiles.append(wrapped["profile"])
                if "telemetry" in wrapped:
                    telemetry_by_index[index] = wrapped["telemetry"]
                    self.stats.telemetry.append(
                        {
                            "index": index,
                            "key": task_keys[index],
                            **wrapped["telemetry"],
                        }
                    )
                results[index] = wrapped["metrics"]
        if self.cache is not None:
            for index in pending:
                if results[index] is None:
                    continue
                telemetry = telemetry_by_index.get(index)
                self.cache.put(
                    hashes[index],
                    results[index],
                    config=configs[index],
                    telemetry=(
                        {"registry": telemetry["registry"]}
                        if telemetry is not None
                        else None
                    ),
                )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_keys(keys: Optional[Sequence[str]], n: int) -> List[str]:
        if keys is None:
            return [f"task:{i}" for i in range(n)]
        if len(keys) != n:
            raise ConfigurationError(
                f"got {len(keys)} keys for {n} tasks"
            )
        return [str(k) for k in keys]

    def _emit(
        self,
        done: int,
        total: int,
        key: str,
        seconds: float,
        *,
        cached: bool,
        ok: bool = True,
    ) -> None:
        self.stats.task_seconds[key] = seconds
        if self.progress is not None:
            self.progress(
                ProgressEvent(
                    done=done, total=total, key=key, seconds=seconds,
                    cached=cached, ok=ok,
                )
            )

    def _settle(
        self,
        index: int,
        key: str,
        outcome: Tuple[bool, Any, float, int],
        results: List[Any],
        done: int,
        total: int,
    ) -> None:
        """Land one :func:`_timed_call` outcome: result, stats, progress.

        Raises:
            ExperimentError: the task failed and the runner is fail-fast.
        """
        ok, value, seconds, attempts = outcome
        self.stats.executed += 1
        if self.observe is not None:
            # Task span on the runner's own wall clock. In parallel mode
            # the start is reconstructed from the completion instant, so
            # spans reflect when the task's slot was busy, not queued.
            end = time.perf_counter() - self._wall0
            self.stats.run_spans.append(
                {
                    "name": f"task:{key}",
                    "id": index + 1,
                    "parent": 0,
                    "depth": 0,
                    "t0_wall_s": max(0.0, end - seconds),
                    "dur_wall_s": seconds,
                    "t0_sim": 0.0,
                    "t1_sim": 0.0,
                    "attrs": {"ok": ok, "attempts": attempts},
                }
            )
        if ok:
            results[index] = value
            self._emit(done, total, key, seconds, cached=False)
            return
        error_type, message, traceback_text, phase = value
        record = TrialError(
            key=key,
            index=index,
            error_type=error_type,
            message=message,
            traceback_text=traceback_text,
            attempts=attempts,
            phase=phase,
        )
        if not self.keep_going:
            raise ExperimentError(
                f"task {key!r} failed after {attempts} attempt(s) with "
                f"{error_type}: {message}\n--- worker traceback ---\n"
                f"{traceback_text}"
            )
        self.stats.errors.append(record)
        results[index] = None
        self._emit(done, total, key, seconds, cached=False, ok=False)

    def _execute(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        pending: List[int],
        results: List[Any],
        task_keys: List[str],
        *,
        done_offset: int,
        total: int,
    ) -> None:
        """Run ``fn`` over ``payloads[i] for i in pending`` into ``results``."""
        done = done_offset
        if not pending:
            return
        if self.backend == "queue":
            from repro.experiments.distributed import execute_queue

            execute_queue(
                self, fn, payloads, pending, results, task_keys,
                done_offset=done_offset, total=total,
            )
            return
        if self.n_workers == 1:
            for index in pending:
                outcome = _timed_call(fn, payloads[index], self.task_retries)
                done += 1
                self._settle(index, task_keys[index], outcome, results, done, total)
            return
        workers = min(self.n_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_timed_call, fn, payloads[index], self.task_retries): index
                for index in pending
            }
            # Collect in completion order so progress is live; results land
            # by index, so output order stays input order.
            from concurrent.futures import as_completed

            for future in as_completed(futures):
                index = futures[future]
                outcome = future.result()
                done += 1
                self._settle(index, task_keys[index], outcome, results, done, total)


@dataclass(frozen=True)
class PipelineExperiment:
    """A picklable ``seed -> metrics`` experiment over the pipeline.

    :func:`repro.experiments.montecarlo.run_trials` accepts any callable,
    but sharding across processes requires picklability, which closures
    lack. This wrapper carries config overrides as data:

        >>> exp = PipelineExperiment(overrides={"n_total": 120, "n_beacons": 20})
        >>> metrics = exp(seed=7)  # doctest: +SKIP
    """

    overrides: Optional[Dict[str, Any]] = None

    def config(self, seed: int) -> PipelineConfig:
        """The pipeline config this experiment runs at ``seed``."""
        kwargs = dict(self.overrides or {})
        kwargs.pop("seed", None)
        return PipelineConfig(seed=seed, **kwargs)

    def __call__(self, seed: int) -> Dict[str, float]:
        return execute_pipeline(self.config(seed))
