"""Monte-Carlo trial aggregation with confidence intervals.

Simulation metrics (detection rate, N', false positives) are random in the
deployment and the adversary's coin flips; single-seed numbers can be
misleading. This module runs independent trials (each under a forked seed)
and reports mean plus a normal-approximation confidence interval —
adequate for the trial counts used here and dependency-free.

Trial execution is delegated to
:class:`repro.experiments.runner.ExperimentRunner`, so the same call
shards across processes when given a parallel runner — with bit-identical
aggregates, since every trial seed is derived exactly as in the serial
path.

Paper section: §4 (simulation methodology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentRunner
from repro.sim.rng import derive_seed
from repro.utils.stats import mean, variance

#: z-values for the supported confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class TrialSummary:
    """Aggregated metric across trials.

    Attributes:
        mean: sample mean.
        half_width: half-width of the confidence interval.
        n: number of trials.
        level: confidence level used.
    """

    mean: float
    half_width: float
    n: int
    level: float

    @property
    def low(self) -> float:
        """Lower CI bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper CI bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.n})"


def summarize(values: Sequence[float], *, level: float = 0.95) -> TrialSummary:
    """Mean and CI of a sample of per-trial metric values."""
    if not values:
        raise ConfigurationError("cannot summarize zero trials")
    if level not in _Z:
        raise ConfigurationError(
            f"unsupported confidence level {level}; pick one of {sorted(_Z)}"
        )
    m = mean(values)
    if len(values) == 1:
        return TrialSummary(mean=m, half_width=float("inf"), n=1, level=level)
    # Sample (n-1) variance for the CI.
    var = variance(values) * len(values) / (len(values) - 1)
    half = _Z[level] * math.sqrt(var / len(values))
    return TrialSummary(mean=m, half_width=half, n=len(values), level=level)


def trial_seeds(trials: int, base_seed: int = 0) -> List[int]:
    """The per-trial seeds, exactly as the serial path has always derived
    them — the determinism anchor the parallel runner relies on."""
    return [
        derive_seed(base_seed, f"trial:{trial}") % (2**31)
        for trial in range(trials)
    ]


def run_trials(
    experiment: Callable[[int], Dict[str, float]],
    *,
    trials: int,
    base_seed: int = 0,
    level: float = 0.95,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, TrialSummary]:
    """Run ``experiment(seed)`` for independent seeds and aggregate.

    Args:
        experiment: maps a trial seed to a dict of metric name -> value.
            Must be picklable (e.g. a module-level function or
            :class:`repro.experiments.runner.PipelineExperiment`) when the
            runner has ``n_workers > 1``.
        trials: number of independent trials.
        base_seed: anchor from which trial seeds are derived.
        level: confidence level.
        runner: execution engine; None means serial in-process. Results
            are aggregated in trial order regardless of worker count, so
            summaries are bit-identical for any runner.

    Returns:
        metric name -> :class:`TrialSummary`. Metrics missing from some
        trials are aggregated over the trials that produced them. Trials
        that failed under a ``keep_going`` runner (``None`` entries, see
        ``runner.stats.errors``) are excluded from every aggregate; if
        *all* trials failed there is nothing to summarize and
        :class:`~repro.errors.ConfigurationError` is raised.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    seeds = trial_seeds(trials, base_seed)
    active = runner if runner is not None else ExperimentRunner()
    per_trial = active.map(
        experiment, seeds, keys=[f"trial:{t}" for t in range(trials)]
    )
    samples: Dict[str, List[float]] = {}
    for metrics in per_trial:
        if metrics is None:  # failed trial under a keep_going runner
            continue
        for name, value in metrics.items():
            samples.setdefault(name, []).append(float(value))
    if not samples:
        raise ConfigurationError(
            f"all {trials} trial(s) failed; see the runner's stats.errors"
        )
    return {
        name: summarize(values, level=level) for name, values in samples.items()
    }
