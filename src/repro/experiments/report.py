"""Assemble a reproduction report from benchmark outputs.

``pytest benchmarks/ --benchmark-only`` writes each figure's series to
``benchmarks/output/<figure>.txt``; this module stitches them into one
markdown report (figure tables + run metadata), so a full reproduction is
one command away::

    pytest benchmarks/ --benchmark-only
    python -m repro.experiments report --out results/

The report intentionally embeds the raw series rather than prose: it is a
lab notebook artifact, not a paper.
"""

from __future__ import annotations

import datetime
import pathlib
import platform
from typing import List, Optional

from repro.errors import ConfigurationError

#: Order in which sections appear (figures first, ablations after).
_SECTION_ORDER = [
    "figure04",
    "figure05",
    "figure06",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
]


def collect_outputs(output_dir: pathlib.Path) -> List[pathlib.Path]:
    """The figure/ablation text outputs, in report order."""
    if not output_dir.is_dir():
        raise ConfigurationError(
            f"benchmark output directory not found: {output_dir} "
            "(run `pytest benchmarks/ --benchmark-only` first)"
        )
    files = {p.stem: p for p in output_dir.glob("*.txt")}
    ordered: List[pathlib.Path] = []
    for name in _SECTION_ORDER:
        if name in files:
            ordered.append(files.pop(name))
    # Remaining (ablations and extras), alphabetically.
    ordered.extend(files[name] for name in sorted(files))
    return ordered


def build_report(
    output_dir: pathlib.Path,
    *,
    title: str = "Reproduction report — Liu, Ning & Du (ICDCS 2005)",
    now: Optional[datetime.datetime] = None,
) -> str:
    """Render the markdown report from the collected outputs."""
    stamp = (now or datetime.datetime.now()).isoformat(timespec="seconds")
    lines = [
        f"# {title}",
        "",
        f"- generated: {stamp}",
        f"- python: {platform.python_version()} on {platform.system()}",
        "- source: `pytest benchmarks/ --benchmark-only` outputs",
        "",
        "Figures 4-14 reproduce the paper's evaluation; `ablation_*`",
        "sections cover the design-choice studies documented in DESIGN.md.",
        "",
    ]
    for path in collect_outputs(output_dir):
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    output_dir: pathlib.Path, destination: pathlib.Path, **kwargs
) -> pathlib.Path:
    """Build and write the report; returns the destination path."""
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(build_report(output_dir, **kwargs) + "\n")
    return destination
