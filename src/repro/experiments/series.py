"""Plot-ready data containers.

A :class:`FigureData` is what each ``figureNN`` generator returns: labelled
(x, y) series plus axis metadata, renderable as a table (benchmarks), fed
to any plotting library, or round-tripped through plain JSON dicts
(:meth:`FigureData.to_dict` / :meth:`FigureData.from_dict`) — the format
the experiment CLI's ``--json`` export and the result cache use.

Paper section: §4 (figure data layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass
class Series:
    """One labelled curve."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        """Add one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def points(self) -> List[Tuple[float, float]]:
        """The curve as (x, y) pairs."""
        return list(zip(self.x, self.y))

    def y_at(self, x: float, *, tol: float = 1e-9) -> float:
        """The y value recorded at ``x`` (exact match within ``tol``)."""
        for xi, yi in zip(self.x, self.y):
            if abs(xi - x) <= tol:
                return yi
        raise KeyError(f"no point at x={x} in series {self.label!r}")

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON representation of the curve."""
        return {"label": self.label, "x": list(self.x), "y": list(self.y)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Series":
        """Rebuild a curve from :meth:`to_dict` output."""
        return cls(
            label=str(data["label"]),
            x=[float(v) for v in data.get("x", [])],
            y=[float(v) for v in data.get("y", [])],
        )


@dataclass
class FigureData:
    """All series of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: str = ""

    def new_series(self, label: str) -> Series:
        """Create (and register) an empty series."""
        if label in self.series:
            raise ValueError(f"duplicate series label {label!r}")
        s = Series(label=label)
        self.series[label] = s
        return s

    def to_rows(self) -> List[Tuple[str, float, float]]:
        """Flatten to (series label, x, y) rows for table printing."""
        rows: List[Tuple[str, float, float]] = []
        for label in sorted(self.series):
            s = self.series[label]
            rows.extend((label, x, y) for x, y in zip(s.x, s.y))
        return rows

    def format_table(self, *, float_fmt: str = "{:.4f}") -> str:
        """A printable table of every series (used by the benches)."""
        lines = [f"== {self.figure_id}: {self.title} ==",
                 f"   x = {self.x_label}; y = {self.y_label}"]
        for label in sorted(self.series):
            s = self.series[label]
            lines.append(f"-- {label}")
            for x, y in zip(s.x, s.y):
                lines.append(
                    "   " + float_fmt.format(x) + "  ->  " + float_fmt.format(y)
                )
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON representation of the whole figure."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": self.notes,
            "series": [
                self.series[label].to_dict() for label in sorted(self.series)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FigureData":
        """Rebuild a figure from :meth:`to_dict` output."""
        fig = cls(
            figure_id=str(data["figure_id"]),
            title=str(data.get("title", "")),
            x_label=str(data.get("x_label", "")),
            y_label=str(data.get("y_label", "")),
            notes=str(data.get("notes", "")),
        )
        for raw in data.get("series", []):
            s = Series.from_dict(raw)
            if s.label in fig.series:
                raise ValueError(f"duplicate series label {s.label!r}")
            fig.series[s.label] = s
        return fig
