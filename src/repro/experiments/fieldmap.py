"""SVG field maps: the sensing field at a glance.

Renders a deployment (and, when given a pipeline, the run's outcome —
revoked beacons crossed out, affected sensors highlighted, the wormhole
drawn as a dashed chord) to a standalone SVG. The Figure 11 bench renders
the deployment; the quickstart-style examples render full outcomes.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.geometry import Point

_SIZE = 560
_MARGIN = 50


@dataclass
class MarkerGroup:
    """One legend entry: points drawn with a shared style.

    Attributes:
        label: legend text.
        points: field coordinates.
        color: fill color.
        shape: "circle" | "ring" | "cross".
        radius: marker radius in pixels.
    """

    label: str
    points: List[Point] = field(default_factory=list)
    color: str = "#0072B2"
    shape: str = "circle"
    radius: float = 3.5


@dataclass
class FieldMap:
    """A renderable field scene."""

    width_ft: float
    height_ft: float
    title: str = "Sensing field"
    groups: List[MarkerGroup] = field(default_factory=list)
    chords: List[Tuple[Point, Point, str]] = field(default_factory=list)

    def add_group(self, group: MarkerGroup) -> MarkerGroup:
        """Register a marker group."""
        self.groups.append(group)
        return group

    def add_chord(self, a: Point, b: Point, label: str = "wormhole") -> None:
        """Draw a dashed line between two field locations."""
        self.chords.append((a, b, label))


def _marker_svg(shape: str, x: float, y: float, r: float, color: str) -> str:
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>'
    if shape == "ring":
        return (
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/>'
        )
    if shape == "cross":
        return (
            f'<g stroke="{color}" stroke-width="1.8">'
            f'<line x1="{x - r:.1f}" y1="{y - r:.1f}" '
            f'x2="{x + r:.1f}" y2="{y + r:.1f}"/>'
            f'<line x1="{x - r:.1f}" y1="{y + r:.1f}" '
            f'x2="{x + r:.1f}" y2="{y - r:.1f}"/></g>'
        )
    raise ConfigurationError(f"unknown marker shape {shape!r}")


def render_field_map(scene: FieldMap) -> str:
    """Render the scene to an SVG document string."""
    if scene.width_ft <= 0 or scene.height_ft <= 0:
        raise ConfigurationError("field dimensions must be positive")
    plot = _SIZE - 2 * _MARGIN
    scale = plot / max(scene.width_ft, scene.height_ft)

    def sx(x: float) -> float:
        return _MARGIN + x * scale

    def sy(y: float) -> float:
        # Field y grows upward; SVG y grows downward.
        return _SIZE - _MARGIN - y * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_SIZE}" '
        f'height="{_SIZE}" viewBox="0 0 {_SIZE} {_SIZE}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{_SIZE}" height="{_SIZE}" fill="white"/>',
        f'<text x="{_SIZE / 2}" y="24" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{html.escape(scene.title)}</text>',
        f'<rect x="{sx(0):.1f}" y="{sy(scene.height_ft):.1f}" '
        f'width="{scene.width_ft * scale:.1f}" '
        f'height="{scene.height_ft * scale:.1f}" '
        f'fill="#fafafa" stroke="#444"/>',
    ]

    for a, b, label in scene.chords:
        parts.append(
            f'<line x1="{sx(a.x):.1f}" y1="{sy(a.y):.1f}" '
            f'x2="{sx(b.x):.1f}" y2="{sy(b.y):.1f}" stroke="#888" '
            f'stroke-dasharray="6 4" stroke-width="1.5"/>'
        )
        mid_x = (sx(a.x) + sx(b.x)) / 2
        mid_y = (sy(a.y) + sy(b.y)) / 2
        parts.append(
            f'<text x="{mid_x:.1f}" y="{mid_y - 6:.1f}" fill="#666" '
            f'text-anchor="middle">{html.escape(label)}</text>'
        )

    for group in scene.groups:
        for p in group.points:
            parts.append(
                _marker_svg(group.shape, sx(p.x), sy(p.y), group.radius, group.color)
            )

    # Legend below the field.
    legend_y = _SIZE - 18
    legend_x = _MARGIN
    for group in scene.groups:
        parts.append(
            _marker_svg(group.shape, legend_x, legend_y - 4, 4.0, group.color)
        )
        parts.append(
            f'<text x="{legend_x + 10}" y="{legend_y}">'
            f"{html.escape(group.label)}</text>"
        )
        legend_x += 12 + 7 * len(group.label) + 18

    parts.append("</svg>")
    return "\n".join(parts)


def pipeline_field_map(pipeline, *, title: Optional[str] = None) -> FieldMap:
    """Build the outcome scene of a finished pipeline run.

    Shows benign beacons, malicious beacons, revoked beacons (crossed),
    and affected (misled) sensors; draws the wormhole when present.
    """
    cfg = pipeline.config
    scene = FieldMap(
        width_ft=cfg.field_width_ft,
        height_ft=cfg.field_height_ft,
        title=title or "Secure location discovery: run outcome",
    )
    assert pipeline.base_station is not None
    revoked = pipeline.base_station.revoked
    affected_ids = {
        agent.node_id
        for agent in pipeline.agents
        for ref in agent.references
        if ref.beacon_id in {b.node_id for b in pipeline.malicious_beacons}
        and abs(ref.residual_at(agent.position)) > cfg.max_ranging_error_ft
    }

    scene.add_group(
        MarkerGroup(
            label="sensor",
            points=[
                a.position
                for a in pipeline.agents
                if a.node_id not in affected_ids
            ],
            color="#bbbbbb",
            radius=1.6,
        )
    )
    scene.add_group(
        MarkerGroup(
            label="misled sensor",
            points=[
                a.position for a in pipeline.agents if a.node_id in affected_ids
            ],
            color="#D55E00",
            radius=3.0,
        )
    )
    scene.add_group(
        MarkerGroup(
            label="benign beacon",
            points=[
                b.position
                for b in pipeline.benign_beacons
                if b.node_id not in revoked
            ],
            color="#0072B2",
            shape="ring",
            radius=4.0,
        )
    )
    scene.add_group(
        MarkerGroup(
            label="malicious beacon",
            points=[
                b.position
                for b in pipeline.malicious_beacons
                if b.node_id not in revoked
            ],
            color="#000000",
            radius=4.0,
        )
    )
    scene.add_group(
        MarkerGroup(
            label="revoked",
            points=[
                pipeline.network.node(node_id).position
                for node_id in sorted(revoked)
            ],
            color="#CC0000",
            shape="cross",
            radius=5.0,
        )
    )
    if cfg.wormhole_endpoints is not None:
        (ax, ay), (bx, by) = cfg.wormhole_endpoints
        scene.add_chord(Point(ax, ay), Point(bx, by))
    return scene
