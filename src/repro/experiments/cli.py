"""Command-line interface: regenerate paper figures from the shell.

Usage::

    python -m repro.experiments list
    python -m repro.experiments figure05
    python -m repro.experiments figure12 --out results/ --svg
    python -m repro.experiments all --out results/ --workers 4 --cache-dir .cache
    python -m repro.experiments figure14 --workers 0 --progress
    python -m repro.experiments figure12 --profile --out results/
    python -m repro.experiments figure12 --backend queue --workers 4
    python -m repro.experiments --worker /shared/queue   # standalone worker
    python -m repro.experiments revocation --trials 3 --shards 4
    python -m repro.experiments revocation --persistence sqlite \
        --state-dir /tmp/revocation --restart-fraction 0.5
    python -m repro.experiments trial --detector mahalanobis
    python -m repro.experiments arena --trials 3 --out results/

The ``arena`` target runs every registered detector (or just
``--detector``) head-to-head on identical seeded scenarios across the
Figure-12 grid (``repro.experiments.arena``, see docs/ARENA.md) and
prints the markdown comparison report; ``--out`` also writes
``ARENA_REPORT.md`` + ``BENCH_arena.json``. ``--detector`` likewise
selects the detection strategy for the ``trial`` target's pipeline.

The ``revocation`` target captures each trial's §3.1 alert stream,
replays it through the sharded, persistent revocation service
(``repro.revocation``, see docs/REVOCATION.md), and verifies the
service's decisions and final counter state are bit-identical to the
in-process base station — optionally with a crash/recovery injected
mid-stream (``--restart-fraction``). Capture fans out over ``--workers``;
exit code 1 flags any divergence.

Each figure command prints the data table; ``--out`` also writes
``<figure>.txt`` (``<figure>.svg`` with ``--svg``, ``<figure>.json`` with
``--json``). ``--workers`` shards simulation trials across processes
(``0`` = one per CPU) and ``--cache-dir`` enables the content-addressed
result cache, so a re-run skips every already-computed pipeline point.
``--profile`` aggregates per-phase timings and hot-path counters across
every executed trial and emits them as JSON (``profile.json`` under
``--out``).

``--backend queue`` swaps the in-process pool for the distributed
file-queue backend (``repro.experiments.distributed``): the CLI acts as
the coordinator, spawns ``--workers`` worker processes against
``--queue-dir`` (standalone workers started with ``--worker QUEUE_DIR``
— on this or any host sharing the path — join in), and re-queues tasks
whose worker crashes or stalls past ``--lease-timeout``. Results stay
bit-identical to the serial path.

Failure handling: the default is ``--fail-fast`` (first task exception
aborts the run). ``--keep-going`` degrades gracefully instead — failed
trials are recorded as structured error records (including the pipeline
phase that was active), every other trial still runs, an error summary
goes to stderr (and ``errors.json`` under ``--out``), and the exit code
is 3 so scripts notice the partial result. ``--task-retries N`` re-runs
a failing task up to N extra times first.

Telemetry export (see docs/OBSERVABILITY.md): ``--metrics-out PATH``
writes the run's merged metrics registry in Prometheus text format;
``--trace-out BASE`` writes span timelines as ``BASE.json`` (Chrome/
Perfetto trace) and the unified event stream as ``BASE.jsonl``
(``--trace-format`` selects one). Either flag turns observability on for
every executed trial; results are bit-identical regardless. The
``trial`` target runs one paper-default pipeline with full observability
— the single invocation CI validates with ``tools/check_telemetry.py``.

Paper section: §4 (regenerating the evaluation).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import pathlib
import platform
import sys
from typing import List, Optional, Sequence

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner, ProgressEvent
from repro.experiments.svgplot import save_svg
from repro.obs import (
    ObserveConfig,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus,
)

#: Figures rendered as scatter rather than lines.
_SCATTER = {"figure11"}


def _workers_type(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 = one worker per CPU)"
        )
    return workers


def _retries_type(value: str) -> int:
    retries = int(value)
    if retries < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return retries


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "figure name (e.g. figure05), 'all', 'list', 'report', "
            "'trial' (one fully observed paper-default pipeline run), "
            "'arena' (every registered detector head-to-head on identical "
            "scenarios), or 'revocation' (replay captured alert streams "
            "through the sharded revocation service and verify "
            "bit-identity); optional with --worker"
        ),
    )
    parser.add_argument(
        "--bench-output",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks/output"),
        help="where the benchmark .txt outputs live (for 'report')",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <figure>.txt (created if missing)",
    )
    parser.add_argument(
        "--svg",
        action="store_true",
        help="also render <figure>.svg into --out",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write <figure>.json (FigureData.to_dict) into --out",
    )
    parser.add_argument(
        "--workers",
        type=_workers_type,
        default=1,
        help="worker processes for simulation figures (0 = one per CPU)",
    )
    parser.add_argument(
        "--backend",
        choices=("pool", "queue"),
        default="pool",
        help=(
            "execution backend: 'pool' (in-process worker pool, the "
            "default) or 'queue' (distributed file-queue coordinator "
            "with work stealing and crash re-queue; see --queue-dir)"
        ),
    )
    parser.add_argument(
        "--queue-dir",
        type=pathlib.Path,
        default=None,
        help=(
            "queue directory for --backend queue (shared path standalone "
            "workers attach to; default: a fresh temporary directory)"
        ),
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help=(
            "queue backend: seconds a claimed task's heartbeat may go "
            "stale before it is re-queued (default: 30)"
        ),
    )
    parser.add_argument(
        "--worker",
        type=pathlib.Path,
        default=None,
        metavar="QUEUE_DIR",
        help=(
            "run as a standalone queue worker serving this queue "
            "directory instead of generating figures (see also "
            "--worker-id; workers exit when the queue's runs stop)"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable name for --worker (default: w<pid>)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="with --worker: exit after the first run completes",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="enable the content-addressed result cache in this directory",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-task progress lines to stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect per-phase timings and hot-path counters from every "
            "executed pipeline trial; prints the aggregated JSON summary "
            "(and writes profile.json into --out when given)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the table on stdout",
    )
    failure = parser.add_mutually_exclusive_group()
    failure.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "degrade gracefully: record failed trials as structured "
            "errors, keep the sweep running, exit 3 if any failed"
        ),
    )
    failure.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first task failure (the default)",
    )
    parser.add_argument(
        "--task-retries",
        type=_retries_type,
        default=0,
        help="extra executions of a failing task before giving up",
    )
    parser.add_argument(
        "--detector",
        default=None,
        metavar="NAME",
        help=(
            "detection strategy from repro.detectors (see "
            "available_detectors()): selects the 'trial' pipeline's "
            "detector and restricts the 'arena' to one entrant "
            "(default: 'paper' for trial, all detectors for arena)"
        ),
    )
    revocation = parser.add_argument_group(
        "revocation", "options for the 'revocation' service-replay target"
    )
    revocation.add_argument(
        "--trials",
        type=_retries_type,
        default=3,
        help=(
            "revocation: captured pipeline trials to replay; "
            "arena: seeded trials per grid point (default: 3)"
        ),
    )
    revocation.add_argument(
        "--shards",
        type=int,
        default=4,
        help="revocation: service shard count (default: 4)",
    )
    revocation.add_argument(
        "--persistence",
        choices=("memory", "jsonl", "sqlite"),
        default="memory",
        help="revocation: persistence backend (default: memory)",
    )
    revocation.add_argument(
        "--state-dir",
        type=pathlib.Path,
        default=None,
        help=(
            "revocation: directory for jsonl/sqlite service state "
            "(default: a fresh temporary directory)"
        ),
    )
    revocation.add_argument(
        "--restart-fraction",
        type=float,
        default=None,
        metavar="F",
        help=(
            "revocation: crash the service after this fraction (0..1) of "
            "each stream and recover from the ledger before continuing"
        ),
    )
    revocation.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="revocation: write a state snapshot every N committed alerts",
    )
    parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=None,
        help=(
            "write the merged metrics registry (Prometheus text format) "
            "here; implies observability for executed trials"
        ),
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help=(
            "base path for trace exports: <base>.json (Chrome/Perfetto) "
            "and/or <base>.jsonl (event log); implies observability"
        ),
    )
    parser.add_argument(
        "--trace-format",
        choices=("chrome", "jsonl", "both"),
        default="both",
        help="which trace exports --trace-out writes (default: both)",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live /metrics, /healthz, and /spans on this port "
            "(0 = ephemeral) while the run is in flight; applies to the "
            "coordinating runner, to --worker mode, and to the "
            "revocation service (see docs/OBSERVABILITY.md)"
        ),
    )
    return parser


def _print_progress(event: ProgressEvent) -> None:
    origin = "cache" if event.cached else f"{event.seconds:.2f}s"
    status = "" if event.ok else " FAILED"
    print(
        f"[{event.done}/{event.total}] {event.key} ({origin}){status}",
        file=sys.stderr,
    )


def _wants_telemetry(args) -> bool:
    """True when any telemetry-export flag (or the trial target) is set."""
    return (
        args.metrics_out is not None
        or args.trace_out is not None
        or args.target == "trial"
    )


def make_runner(args) -> ExperimentRunner:
    """Build the experiment runner the CLI flags describe."""
    workers = args.workers
    if workers == 0:
        workers = os.cpu_count() or 1
    observe = None
    if _wants_telemetry(args):
        # The trial target ships the full protocol event stream; sweeps
        # keep worker payloads lean (span markers only).
        observe = ObserveConfig(trace_events=args.target == "trial")
    return ExperimentRunner(
        n_workers=workers,
        backend=args.backend,
        queue_dir=args.queue_dir,
        lease_timeout_s=args.lease_timeout,
        cache_dir=args.cache_dir,
        progress=_print_progress if args.progress else None,
        profile=args.profile,
        keep_going=args.keep_going,
        task_retries=args.task_retries,
        observe=observe,
        telemetry_port=args.telemetry_port,
    )


def _generate(name: str, runner: ExperimentRunner):
    """Call a figure generator, passing the runner when it takes one."""
    generator = figures.ALL_FIGURES[name]
    if "runner" in inspect.signature(generator).parameters:
        return generator(runner=runner)
    return generator()


def _emit(fig, args) -> None:
    if not args.quiet:
        print(fig.format_table())
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{fig.figure_id}.txt").write_text(
            fig.format_table() + "\n"
        )
        if args.svg:
            save_svg(
                fig,
                str(args.out / f"{fig.figure_id}.svg"),
                scatter=fig.figure_id in _SCATTER,
            )
        if args.json:
            (args.out / f"{fig.figure_id}.json").write_text(
                json.dumps(fig.to_dict(), indent=2, sort_keys=True) + "\n"
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.worker is not None:
        from repro.experiments.distributed import run_worker

        worker_id = args.worker_id or f"w{os.getpid()}"
        return run_worker(
            args.worker,
            worker_id,
            once=args.once,
            telemetry_port=args.telemetry_port,
        )

    if args.target is None:
        parser.error("a target is required unless --worker is given")

    if args.target == "list":
        for name in sorted(figures.ALL_FIGURES):
            generator = figures.ALL_FIGURES[name]
            doc = (generator.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name}: {summary}")
        return 0

    if args.target == "report":
        from repro.experiments.report import build_report, write_report

        if args.out is not None:
            destination = args.out / "REPORT.md"
            write_report(args.bench_output, destination)
            if not args.quiet:
                print(f"wrote {destination}")
        elif not args.quiet:
            print(build_report(args.bench_output))
        return 0

    if args.target == "trial":
        from repro.core.pipeline import PipelineConfig

        detector = args.detector or "paper"
        config = PipelineConfig(seed=0, detector=detector)
        with make_runner(args) as runner:
            results = runner.run_pipeline_configs(
                [config], keys=[f"trial:seed0:{detector}"]
            )
            if not args.quiet:
                print(json.dumps(results[0], indent=2, sort_keys=True))
            _export_telemetry(runner, args)
            if runner.stats.errors:
                _report_errors(runner.stats.errors, args)
                return 3
            return 0

    if args.target == "arena":
        return _run_arena(args)

    if args.target == "revocation":
        return _run_revocation(args)

    if args.target == "all":
        names: List[str] = sorted(figures.ALL_FIGURES)
    elif args.target in figures.ALL_FIGURES:
        names = [args.target]
    else:
        print(
            f"unknown target {args.target!r}; try 'list'", file=sys.stderr
        )
        return 2

    with make_runner(args) as runner:
        for name in names:
            fig = _generate(name, runner)
            _emit(fig, args)
        _export_telemetry(runner, args)
    if args.profile:
        summary = runner.stats.profile_summary()
        payload = json.dumps(summary, indent=2, sort_keys=True)
        if not args.quiet:
            print(payload)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / "profile.json").write_text(payload + "\n")
    if args.cache_dir is not None and not args.quiet:
        stats = runner.stats
        print(
            f"runner: {stats.executed} executed, {stats.cache_hits} cache "
            f"hits, {stats.cache_misses} misses "
            f"({stats.total_seconds:.2f}s task time)",
            file=sys.stderr,
        )
    if runner.stats.errors:
        _report_errors(runner.stats.errors, args)
        return 3
    return 0


def _run_arena(args) -> int:
    """The ``arena`` target: every detector head-to-head, one report.

    Sweeps each registered detector (or just ``--detector``) across the
    Figure-12 grid on identical seeded scenarios, prints the markdown
    comparison report, and — with ``--out`` — writes ``ARENA_REPORT.md``
    plus the ``BENCH_arena.json`` headline snapshot (the same artifacts
    ``benchmarks/bench_arena.py`` commits at the repo root).
    """
    from repro.detectors import available_detectors
    from repro.experiments.arena import (
        arena_headlines,
        render_arena_markdown,
        run_arena,
    )

    detectors = None
    if args.detector is not None:
        if args.detector not in available_detectors():
            print(
                f"unknown detector {args.detector!r}; available: "
                f"{', '.join(available_detectors())}",
                file=sys.stderr,
            )
            return 2
        detectors = [args.detector]
    with make_runner(args) as runner:
        arena = run_arena(detectors, trials=args.trials, runner=runner)
    report = render_arena_markdown(arena)
    if not args.quiet:
        print(report, end="")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "ARENA_REPORT.md").write_text(report)
        bench = {
            "schema": 1,
            "environment": {
                "python": platform.python_version(),
                "cpu_count": os.cpu_count(),
            },
            "benchmarks": arena_headlines(arena),
        }
        (args.out / "BENCH_arena.json").write_text(
            json.dumps(bench, indent=2, sort_keys=True) + "\n"
        )
        if not args.quiet:
            print(
                f"wrote {args.out / 'ARENA_REPORT.md'} and "
                f"{args.out / 'BENCH_arena.json'}",
                file=sys.stderr,
            )
    if runner.stats.errors:
        _report_errors(runner.stats.errors, args)
        return 3
    return 0


def _run_revocation(args) -> int:
    """The ``revocation`` target: capture, replay, verify bit-identity.

    Captures ``--trials`` reduced-deployment pipeline alert streams
    (fanning out over the runner's workers), replays each through a
    ``--shards``-way :class:`repro.revocation.RevocationService` on the
    chosen ``--persistence`` backend (optionally crash-recovering after
    ``--restart-fraction`` of the stream), and prints one JSON report
    per stream. Exit code 1 means at least one replay diverged from the
    in-process base station — which the tests assert never happens.
    """
    import tempfile

    from repro.core.pipeline import PipelineConfig
    from repro.revocation import capture_streams, make_backend, replay_sweep

    configs = [
        PipelineConfig(
            n_total=200,
            n_beacons=30,
            n_malicious=6,
            rtt_calibration_samples=200,
            seed=seed,
        )
        for seed in range(args.trials)
    ]
    with make_runner(args) as runner:
        streams = capture_streams(
            configs, runner, keys=[f"revocation:seed{c.seed}" for c in configs]
        )
        state_dir = args.state_dir
        if state_dir is None and args.persistence != "memory":
            state_dir = pathlib.Path(
                tempfile.mkdtemp(prefix="repro-revocation-")
            )
        backend_counter = iter(range(len(streams)))

        def _next_backend():
            index = next(backend_counter)
            if args.persistence == "memory":
                return make_backend("memory")
            return make_backend(args.persistence, state_dir / f"stream-{index}")

        events_log = None
        trace_context = None
        if runner.observe is not None and args.out is not None:
            # Observed replays join the run's trace: svc:flush spans land
            # in an events log tools/stitch_trace.py can merge with the
            # queue backend's coordinator/worker logs.
            from repro.obs import TraceContext, new_trace_id

            args.out.mkdir(parents=True, exist_ok=True)
            events_log = args.out / "revocation.events.jsonl"
            trace_context = TraceContext(
                trace_id=runner.stats.trace_id or new_trace_id()
            )
        reports = replay_sweep(
            streams,
            n_shards=args.shards,
            restart_fraction=args.restart_fraction,
            snapshot_every=args.snapshot_every,
            make_backend=_next_backend,
            observe=runner.observe,
            events_log=events_log,
            trace_context=trace_context,
        )
    if not args.quiet:
        for report in reports:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    failures = [report for report in reports if not report.identical]
    total_alerts = sum(report.n_alerts for report in reports)
    print(
        f"revocation: {len(reports)} stream(s), {total_alerts} alert(s), "
        f"{args.shards} shard(s), {args.persistence} persistence, "
        f"{len(failures)} divergence(s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _export_telemetry(runner: ExperimentRunner, args) -> None:
    """Write the telemetry exports the CLI flags request (no-op without)."""
    stats = runner.stats
    if args.metrics_out is not None:
        path = write_prometheus(args.metrics_out, stats.merged_registry())
        if not args.quiet:
            print(f"metrics written to {path}", file=sys.stderr)
    if args.trace_out is None:
        return
    trials = list(stats.telemetry)
    if stats.run_spans:
        # The runner's own task spans become process 0 in the timeline.
        trials.append({"key": "runner", "index": -1, "spans": stats.run_spans})
    base = args.trace_out
    if args.trace_format in ("chrome", "both"):
        path = write_chrome_trace(base.with_suffix(".json"), trials)
        if not args.quiet:
            print(f"trace written to {path}", file=sys.stderr)
    if args.trace_format in ("jsonl", "both"):
        path = write_events_jsonl(base.with_suffix(".jsonl"), stats.telemetry)
        if not args.quiet:
            print(f"event log written to {path}", file=sys.stderr)


def _report_errors(errors, args) -> None:
    """Summarize recorded task failures on stderr (and in errors.json)."""
    print(
        f"warning: {len(errors)} task(s) failed; results are partial",
        file=sys.stderr,
    )
    for record in errors:
        where = f" in {record.phase}" if record.phase else ""
        print(
            f"  {record.key}: {record.error_type}: {record.message} "
            f"(after {record.attempts} attempt(s){where})",
            file=sys.stderr,
        )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        destination = args.out / "errors.json"
        destination.write_text(
            json.dumps(
                [record.to_dict() for record in errors],
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"error records written to {destination}", file=sys.stderr)
