"""Command-line interface: regenerate paper figures from the shell.

Usage::

    python -m repro.experiments list
    python -m repro.experiments figure05
    python -m repro.experiments figure12 --out results/ --svg
    python -m repro.experiments all --out results/

Each figure command prints the data table; ``--out`` also writes
``<figure>.txt`` (and ``<figure>.svg`` with ``--svg``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.experiments import figures
from repro.experiments.svgplot import save_svg

#: Figures rendered as scatter rather than lines.
_SCATTER = {"figure11"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        help="figure name (e.g. figure05), 'all', 'list', or 'report'",
    )
    parser.add_argument(
        "--bench-output",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks/output"),
        help="where the benchmark .txt outputs live (for 'report')",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <figure>.txt (created if missing)",
    )
    parser.add_argument(
        "--svg",
        action="store_true",
        help="also render <figure>.svg into --out",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the table on stdout",
    )
    return parser


def _emit(fig, args) -> None:
    if not args.quiet:
        print(fig.format_table())
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{fig.figure_id}.txt").write_text(
            fig.format_table() + "\n"
        )
        if args.svg:
            save_svg(
                fig,
                str(args.out / f"{fig.figure_id}.svg"),
                scatter=fig.figure_id in _SCATTER,
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.target == "list":
        for name in sorted(figures.ALL_FIGURES):
            generator = figures.ALL_FIGURES[name]
            doc = (generator.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name}: {summary}")
        return 0

    if args.target == "report":
        from repro.experiments.report import build_report, write_report

        if args.out is not None:
            destination = args.out / "REPORT.md"
            write_report(args.bench_output, destination)
            if not args.quiet:
                print(f"wrote {destination}")
        elif not args.quiet:
            print(build_report(args.bench_output))
        return 0

    if args.target == "all":
        names: List[str] = sorted(figures.ALL_FIGURES)
    elif args.target in figures.ALL_FIGURES:
        names = [args.target]
    else:
        print(
            f"unknown target {args.target!r}; try 'list'", file=sys.stderr
        )
        return 2

    for name in names:
        fig = figures.ALL_FIGURES[name]()
        _emit(fig, args)
    return 0
