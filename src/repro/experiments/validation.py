"""Statistical validation of simulation against theory.

The paper's Figures 12-13 claim the simulation "conforms to the
theoretical analysis". This module makes that claim testable: exact
binomial-proportion z-scores for simulated rates vs predicted
probabilities, plus the shape predicates (monotonicity, single peak,
curve dominance) the figure benches assert.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError
from repro.experiments.series import Series


def proportion_z_score(successes: int, trials: int, p_theory: float) -> float:
    """Z-score of an observed proportion against a predicted probability.

    Uses the normal approximation to the binomial; for degenerate
    predictions (p = 0 or 1) any disagreement returns +/- infinity.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    if not 0.0 <= p_theory <= 1.0:
        raise ConfigurationError(f"p_theory must be in [0, 1], got {p_theory}")
    observed = successes / trials
    if p_theory in (0.0, 1.0):
        return 0.0 if observed == p_theory else math.inf * (
            1 if observed > p_theory else -1
        )
    stderr = math.sqrt(p_theory * (1.0 - p_theory) / trials)
    return (observed - p_theory) / stderr


def proportion_consistent(
    successes: int, trials: int, p_theory: float, *, z_max: float = 3.0
) -> bool:
    """True when the observation is within ``z_max`` sigma of theory."""
    return abs(proportion_z_score(successes, trials, p_theory)) <= z_max


def max_abs_gap(sim: Series, theory: Series) -> float:
    """Largest |sim - theory| over the common x grid.

    Raises:
        ConfigurationError: the two series have different x grids.
    """
    if sim.x != theory.x:
        raise ConfigurationError("series are on different x grids")
    if not sim.x:
        raise ConfigurationError("cannot compare empty series")
    return max(abs(a - b) for a, b in zip(sim.y, theory.y))


def is_monotone(values: Sequence[float], *, increasing: bool = True, tol: float = 1e-12) -> bool:
    """Monotonicity up to floating-point dust."""
    pairs = zip(values, values[1:])
    if increasing:
        return all(b >= a - tol for a, b in pairs)
    return all(b <= a + tol for a, b in pairs)


def single_peak_index(values: Sequence[float]) -> int:
    """Index of the maximum, verifying a rise-then-fall shape.

    Raises:
        ConfigurationError: the sequence is empty, or it is not unimodal
            (up to exact ties).
    """
    if not values:
        raise ConfigurationError("cannot find the peak of an empty sequence")
    peak = max(range(len(values)), key=lambda i: values[i])
    rising = list(values[: peak + 1])
    falling = list(values[peak:])
    if not is_monotone(rising, increasing=True):
        raise ConfigurationError("sequence is not unimodal (non-rising prefix)")
    if not is_monotone(falling, increasing=False):
        raise ConfigurationError("sequence is not unimodal (non-falling suffix)")
    return peak


def dominates(upper: Series, lower: Series, *, tol: float = 1e-12) -> bool:
    """True when ``upper`` is pointwise >= ``lower`` on the common grid."""
    if upper.x != lower.x:
        raise ConfigurationError("series are on different x grids")
    return all(u >= l - tol for u, l in zip(upper.y, lower.y))
