"""The detector arena: every registered detector on the same sweep grid.

Runs each detector from :mod:`repro.detectors` head-to-head across a
Figure-12-style grid of malicious-response probabilities ``P'``, on
**identical seeded scenarios** — the trial seed derives from
``(base_seed, P', trial)`` only, never from the detector name, so every
detector faces byte-for-byte the same deployment, adversary schedule,
and wormhole. Per detector the arena reports:

- mean **detection rate** and **false-positive rate** per grid point
  (``None`` — rendered "n/a" — when undefined in every trial, e.g. a
  zero-malicious scenario; the None-over-empty contract end to end);
- mean **affected non-beacons** per malicious beacon;
- **CPU cost per decision**: detection-phase seconds divided by probe
  verdicts, aggregated over the whole grid (wall-clock — the one
  non-deterministic output, excluded from identity checks).

All runs force ``use_vectorized_core=False`` so every detector is timed
on the same scalar execution path (rivals cannot run vectorized anyway;
see :func:`repro.vec.vectorized_core_supported`).

``benchmarks/bench_arena.py`` snapshots the output into the committed
``BENCH_arena.json`` + ``benchmarks/ARENA_REPORT.md``; the CLI target
``arena`` regenerates both on demand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.detectors import available_detectors
from repro.experiments.runner import ExperimentRunner, collect_metrics
from repro.sim.rng import derive_seed

#: The Figure-12 malicious-response probabilities the arena sweeps.
ARENA_P_GRID: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)

#: Grid metrics reported per detector per P' (mean over defined trials).
ARENA_METRICS: Tuple[str, ...] = (
    "detection_rate",
    "false_positive_rate",
    "affected_non_beacons_per_malicious",
)

#: The grid point whose means become the BENCH_arena headline numbers
#: (the paper's default P').
HEADLINE_P = 0.2

#: Reduced deployment the arena sweeps (the full paper deployment times
#: |detectors| x |grid| x trials is bench-only territory).
ARENA_CONFIG: Dict[str, Any] = {
    "n_total": 300,
    "n_beacons": 40,
    "n_malicious": 8,
    "field_width_ft": 600.0,
    "field_height_ft": 600.0,
    "m_detecting_ids": 4,
    "rtt_calibration_samples": 500,
}


def run_arena_trial(config: PipelineConfig) -> Dict[str, Any]:
    """Worker entry point: one trial's metrics plus decision-cost inputs.

    Returns ``{"metrics": ..., "decisions": ..., "detection_s": ...}``
    where ``decisions`` counts the probe verdicts the detector issued
    and ``detection_s`` is the detection phase's wall clock.
    """
    pipeline = SecureLocalizationPipeline(config)
    metrics = collect_metrics(pipeline.run())
    decisions = sum(
        len(beacon.probe_outcomes) for beacon in pipeline.benign_beacons
    )
    snapshot = pipeline.profile_snapshot()
    return {
        "metrics": metrics,
        "decisions": decisions,
        "detection_s": float(snapshot["phases"].get("detection", 0.0)),
    }


def arena_configs(
    detector: str,
    *,
    p_grid: Sequence[float] = ARENA_P_GRID,
    trials: int = 3,
    base_seed: int = 41,
    config_kwargs: Optional[Dict[str, Any]] = None,
) -> List[PipelineConfig]:
    """The detector's grid configs, on detector-independent trial seeds."""
    kwargs = dict(ARENA_CONFIG)
    kwargs.update(config_kwargs or {})
    configs = []
    for p in p_grid:
        for trial in range(trials):
            seed = derive_seed(base_seed, f"arena:p={p}:trial={trial}")
            configs.append(
                PipelineConfig(
                    detector=detector,
                    p_prime=p,
                    seed=seed % 2**31,
                    use_vectorized_core=False,
                    **kwargs,
                )
            )
    return configs


def _mean_or_none(values: List[float]) -> Optional[float]:
    """Mean over defined samples; None (not 0.0) when none are defined."""
    return sum(values) / len(values) if values else None


def run_arena(
    detectors: Optional[Sequence[str]] = None,
    *,
    p_grid: Sequence[float] = ARENA_P_GRID,
    trials: int = 3,
    base_seed: int = 41,
    config_kwargs: Optional[Dict[str, Any]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, Any]:
    """Run the head-to-head comparison; one result dict for the report.

    Shape::

        {"p_grid": [...], "trials": N, "headline_p": 0.2,
         "detectors": {name: {"grid": {"<p>": {metric: mean-or-None}},
                              "headline": {metric: mean-or-None},
                              "decisions": int,
                              "cpu_us_per_decision": float}}}
    """
    names = list(detectors) if detectors is not None else available_detectors()
    if runner is None:
        runner = ExperimentRunner()
    out: Dict[str, Any] = {
        "p_grid": [float(p) for p in p_grid],
        "trials": trials,
        "headline_p": HEADLINE_P,
        "detectors": {},
    }
    for name in names:
        configs = arena_configs(
            name,
            p_grid=p_grid,
            trials=trials,
            base_seed=base_seed,
            config_kwargs=config_kwargs,
        )
        keys = [
            f"arena:{name}:p={cfg.p_prime}:seed={cfg.seed}" for cfg in configs
        ]
        payloads = runner.map(run_arena_trial, configs, keys=keys)
        grid: Dict[str, Dict[str, Optional[float]]] = {}
        decisions = 0
        detection_s = 0.0
        for i, p in enumerate(p_grid):
            cell = payloads[i * trials : (i + 1) * trials]
            cell = [entry for entry in cell if entry is not None]
            point: Dict[str, Optional[float]] = {}
            for metric in ARENA_METRICS:
                point[metric] = _mean_or_none(
                    [
                        entry["metrics"][metric]
                        for entry in cell
                        if metric in entry["metrics"]
                    ]
                )
            grid[f"{float(p):g}"] = point
            decisions += sum(entry["decisions"] for entry in cell)
            detection_s += sum(entry["detection_s"] for entry in cell)
        headline = grid.get(f"{float(HEADLINE_P):g}")
        if headline is None:
            headline = {metric: None for metric in ARENA_METRICS}
        out["detectors"][name] = {
            "grid": grid,
            "headline": dict(headline),
            "decisions": decisions,
            "cpu_us_per_decision": (
                detection_s / decisions * 1e6 if decisions else None
            ),
        }
    return out


def _fmt(value: Optional[float], digits: int = 3) -> str:
    """Render a mean — ``None`` (undefined rate) is "n/a", never 0."""
    if value is None:
        return "n/a"
    return f"{value:.{digits}f}"


def render_arena_markdown(arena: Dict[str, Any]) -> str:
    """The committed comparison report (benchmarks/ARENA_REPORT.md)."""
    p_grid = arena["p_grid"]
    lines = [
        "# Detector arena: head-to-head comparison",
        "",
        f"Mean over {arena['trials']} seeded trial(s) per grid point; every "
        "detector sees identical scenarios (trial seeds never depend on "
        "the detector). Undefined rates are reported as n/a, never "
        "coerced to 0. CPU cost is detection-phase wall clock per probe "
        "verdict, aggregated over the whole grid (machine-dependent).",
        "",
        "## Headline (P' = {:g})".format(arena["headline_p"]),
        "",
        "| detector | detection rate | false-positive rate | "
        "affected non-beacons | CPU µs/decision | decisions |",
        "|---|---|---|---|---|---|",
    ]
    for name, entry in arena["detectors"].items():
        headline = entry["headline"]
        cpu = entry["cpu_us_per_decision"]
        lines.append(
            "| {name} | {dr} | {fpr} | {aff} | {cpu} | {n} |".format(
                name=name,
                dr=_fmt(headline.get("detection_rate")),
                fpr=_fmt(headline.get("false_positive_rate")),
                aff=_fmt(headline.get("affected_non_beacons_per_malicious"), 2),
                cpu="n/a" if cpu is None else f"{cpu:.1f}",
                n=entry["decisions"],
            )
        )
    for metric, title in (
        ("detection_rate", "Detection rate vs P'"),
        ("false_positive_rate", "False-positive rate vs P'"),
        (
            "affected_non_beacons_per_malicious",
            "Affected non-beacons per malicious vs P'",
        ),
    ):
        lines += [
            "",
            f"## {title}",
            "",
            "| detector | " + " | ".join(f"{p:g}" for p in p_grid) + " |",
            "|---" * (len(p_grid) + 1) + "|",
        ]
        for name, entry in arena["detectors"].items():
            cells = [
                _fmt(entry["grid"][f"{p:g}"].get(metric)) for p in p_grid
            ]
            lines.append(f"| {name} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def arena_headlines(arena: Dict[str, Any]) -> Dict[str, Any]:
    """The BENCH_arena.json ``benchmarks`` object (headline grid point)."""
    benchmarks: Dict[str, Any] = {"arena": {}}
    for name, entry in arena["detectors"].items():
        headline = entry["headline"]
        benchmarks["arena"][name] = {
            "detection_rate": headline.get("detection_rate"),
            "false_positive_rate": headline.get("false_positive_rate"),
            "affected_non_beacons_per_malicious": headline.get(
                "affected_non_beacons_per_malicious"
            ),
            "cpu_us_per_decision": entry["cpu_us_per_decision"],
            "decisions": entry["decisions"],
        }
    return benchmarks
