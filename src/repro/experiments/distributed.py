"""Distributed work-queue execution backend: coordinator + workers.

``ExperimentRunner(backend="queue", n_workers=N)`` routes task execution
through this module instead of an in-process
:class:`~concurrent.futures.ProcessPoolExecutor`. A *coordinator* (the
runner's own process) shards task manifests into a file-queue directory;
N *worker* processes — spawned by the coordinator on this host, or
started standalone (``python -m repro.experiments --worker DIR``,
possibly on other hosts sharing the filesystem) — claim, execute, and
publish them. Because every task is a pure function of its payload, the
results are bit-identical to the serial path for any worker count.

The file-queue protocol (one *run* = one coordinator call)::

    <queue_dir>/run-0000/
        meta.json          # pickled task fn, retries, lease timeout
        tasks/<id>.json    # one manifest per task: index, key, shard,
                           # pickled payload, optional shared-cache key
        leases/<id>.lease  # exclusive claim (O_CREAT|O_EXCL), heartbeat
                           # = mtime refreshed by the owning worker
        results/<id>.json  # outcome, written atomically, then the lease
                           # is dropped; presence == task settled
        workers/<w>.json   # per-worker exit summary + metrics registry
        STOP               # sentinel: no more work will be added

Claiming is the only point of contention and it is atomic: a lease file
is created with ``O_CREAT | O_EXCL``, which exactly one claimant can
win. Everything else is rendered atomic by write-temp + ``os.replace``.

**Work stealing.** Each manifest carries a shard hint
(``index % n_workers``) and each spawned worker a shard identity.
Workers prefer manifests of their own shard and steal from other shards
only when their own is empty, so a straggling worker's backlog drains
into idle workers instead of gating the run.

**Failure model.** A worker heartbeats each held lease (mtime) while
computing. The coordinator re-queues a task — unlinking its lease so
any worker can re-claim it — when the owning spawned worker has exited
without publishing a result, or when the lease heartbeat has been stale
for ``lease_timeout_s`` (covering hung workers and standalone workers
the coordinator cannot wait on). Re-execution is safe because tasks are
deterministic and results content-equal; the coordinator settles every
task exactly once (keyed by task id), so metrics and merged telemetry
never double-count. After ``MAX_REQUEUES`` losses the task is recorded
as a :class:`~repro.experiments.runner.TrialError` (``WorkerLostError``)
under ``--keep-going``, or raises. When every spawned worker has died,
the coordinator first spawns replacements (bounded budget) and, as a
last resort, executes the remaining tasks inline — the run always
terminates.

**Shared result store.** When the runner has a cache, pipeline-task
manifests carry the content address; workers elect a single computer
per key via :meth:`ResultCache.claim` and publish with the atomic
:meth:`ResultCache.put`, so two workers (even from concurrent runs
sharing one cache directory) never recompute or torn-write one key.

**Observability.** Per-trial telemetry rides inside task results
exactly as in the pool backend; each worker additionally keeps a small
:class:`~repro.obs.MetricsRegistry` (claims, completions, steals) whose
snapshot the coordinator collects into ``RunStats.worker_snapshots``
and merges order-insensitively via
:func:`~repro.obs.merge_snapshots` (``RunStats.worker_registry``).

**Live telemetry (observed runs).** The coordinator mints one trace id
per run and embeds a :class:`~repro.obs.TraceContext` in every task
manifest (``"trace"``: trace id + the coordinator's ``task:*`` span id),
workers adopt their worker id as the process span namespace (span ids
``"w0:1"`` — globally unique across the fleet) and append their executed
trials' completed spans to ``workers/<id>.events.jsonl``; the
coordinator writes its own ``task:*`` spans to
``coordinator.events.jsonl``. ``tools/stitch_trace.py`` merges those
JSONL logs into one Perfetto trace with cross-process parent edges.
Workers and the coordinator can additionally serve live ``/metrics`` /
``/healthz`` / ``/spans`` scrapes (``--telemetry-port``; see
:class:`repro.obs.TelemetryServer`). None of this draws randomness —
queue results stay bit-identical to serial.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import pathlib
import pickle
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: File-queue protocol version (bump on incompatible layout changes).
PROTOCOL_VERSION = 1

#: Lease losses tolerated per task before it is declared failed.
MAX_REQUEUES = 3

#: Replacement workers the coordinator may spawn per run.
MAX_RESPAWNS_PER_RUN = 8

#: Exit code of a fault-injected worker crash (``--crash-after-claims``).
CRASH_EXIT_CODE = 17

#: Error type recorded for a task whose workers kept dying.
WORKER_LOST_ERROR = "WorkerLostError"


def _b64_pickle(obj: Any) -> str:
    """Pickle ``obj`` and encode it for embedding in a JSON manifest."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _b64_unpickle(data: str) -> Any:
    """Invert :func:`_b64_pickle`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


def _atomic_write_json(path: pathlib.Path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` as JSON so readers never observe a torn file."""
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _read_json(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    """Parse a JSON file, returning None when missing or torn mid-write."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class _QueueLayout:
    """Path arithmetic for one run directory of the file-queue protocol."""

    def __init__(self, run_dir: pathlib.Path) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.meta = self.run_dir / "meta.json"
        self.tasks = self.run_dir / "tasks"
        self.leases = self.run_dir / "leases"
        self.results = self.run_dir / "results"
        self.workers = self.run_dir / "workers"
        self.stop = self.run_dir / "STOP"

    def create(self) -> None:
        """Create the run directory tree (idempotent)."""
        for directory in (self.tasks, self.leases, self.results, self.workers):
            directory.mkdir(parents=True, exist_ok=True)

    def task_path(self, task_id: str) -> pathlib.Path:
        """The manifest file for ``task_id``."""
        return self.tasks / f"{task_id}.json"

    def lease_path(self, task_id: str) -> pathlib.Path:
        """The lease file for ``task_id``."""
        return self.leases / f"{task_id}.lease"

    def result_path(self, task_id: str) -> pathlib.Path:
        """The result file for ``task_id``."""
        return self.results / f"{task_id}.json"

    def worker_path(self, worker_id: str) -> pathlib.Path:
        """The exit-summary file for ``worker_id``."""
        return self.workers / f"{worker_id}.json"


def allocate_run_dir(queue_dir: pathlib.Path) -> pathlib.Path:
    """Claim a fresh ``run-NNNN`` namespace under ``queue_dir``.

    Allocation is an atomic ``mkdir``, so concurrent coordinators sharing
    one queue directory get disjoint runs.
    """
    queue_dir.mkdir(parents=True, exist_ok=True)
    seq = sum(1 for p in queue_dir.glob("run-*") if p.is_dir())
    while True:
        candidate = queue_dir / f"run-{seq:04d}"
        try:
            candidate.mkdir()
        except FileExistsError:
            seq += 1
            continue
        return candidate


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Heartbeat:
    """Background mtime refresher for a held lease.

    The coordinator treats a lease whose mtime is older than the run's
    ``lease_timeout_s`` as abandoned, so a worker computing a long task
    must keep touching its lease; a crashed worker stops touching it,
    which is the whole failure-detection signal.
    """

    def __init__(self, lease: pathlib.Path, interval_s: float) -> None:
        self.lease = lease
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                os.utime(self.lease)
            except OSError:
                return  # lease was revoked out from under us; stop quietly

    def start(self) -> None:
        """Begin refreshing the lease."""
        self._thread.start()

    def stop(self) -> None:
        """Stop refreshing (called before the lease is dropped)."""
        self._stop.set()
        self._thread.join(timeout=1.0)


def _try_claim(layout: _QueueLayout, task_id: str, worker_id: str) -> bool:
    """Attempt the atomic exclusive claim of ``task_id``."""
    try:
        fd = os.open(
            layout.lease_path(task_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        handle.write(
            json.dumps({"worker": worker_id, "pid": os.getpid()}) + "\n"
        )
    return True


def _claim_next(
    layout: _QueueLayout, worker_id: str, shard: Optional[int]
) -> Optional[Tuple[Dict[str, Any], bool]]:
    """Claim the next available task, preferring this worker's shard.

    Returns ``(manifest, stolen)`` or None when nothing is claimable.
    ``stolen`` is True when the task carried another shard's hint (work
    stealing); shard-less workers steal nothing — every task is fair
    game for them.
    """
    own: List[pathlib.Path] = []
    other: List[pathlib.Path] = []
    for manifest_path in sorted(layout.tasks.glob("*.json")):
        task_id = manifest_path.stem
        if layout.result_path(task_id).exists():
            continue
        if layout.lease_path(task_id).exists():
            continue
        manifest = _read_json(manifest_path)
        if manifest is None:
            continue
        if shard is not None and manifest.get("shard") != shard:
            other.append(manifest_path)
        else:
            own.append(manifest_path)
    for stolen, candidates in ((False, own), (True, other)):
        for manifest_path in candidates:
            task_id = manifest_path.stem
            if layout.result_path(task_id).exists():
                continue
            if not _try_claim(layout, task_id, worker_id):
                continue
            manifest = _read_json(manifest_path)
            if manifest is None:  # pragma: no cover - manifest vanished
                try:
                    layout.lease_path(task_id).unlink()
                except OSError:
                    pass
                continue
            return manifest, stolen and shard is not None
    return None


def _compute_with_shared_cache(
    fn: Callable[[Any], Any],
    payload: Any,
    retries: int,
    cache_root: str,
    cache_key: str,
    lease_timeout_s: float,
    poll_s: float,
) -> Tuple[bool, Any, float, int]:
    """Run one cacheable task through the shared result store.

    Exactly one worker per key computes: the first to win
    :meth:`ResultCache.claim` executes and publishes; everyone else
    waits for the published entry. A claimant that dies without
    publishing is waited out for ``lease_timeout_s`` and then bypassed —
    recomputing is always safe because :meth:`ResultCache.put` is atomic
    and all writers of a key produce identical entries.
    """
    from repro.experiments.runner import ResultCache, _timed_call

    cache = ResultCache(cache_root)
    hit = cache.get(cache_key)
    if hit is not None:
        return True, hit, 0.0, 1
    waited_from = time.perf_counter()
    while not cache.claim(cache_key):
        hit = cache.get(cache_key)
        if hit is not None:
            return True, hit, time.perf_counter() - waited_from, 1
        if time.perf_counter() - waited_from > lease_timeout_s:
            # The claimant is presumed dead; compute without the claim.
            outcome = _timed_call(fn, payload, retries)
            if outcome[0]:
                cache.put(cache_key, outcome[1])
            return outcome
        time.sleep(poll_s)
    try:
        hit = cache.get(cache_key)  # published between our get and claim
        if hit is not None:
            return True, hit, time.perf_counter() - waited_from, 1
        outcome = _timed_call(fn, payload, retries)
        if outcome[0]:
            cache.put(cache_key, outcome[1])
        return outcome
    finally:
        cache.release(cache_key)


def _serve_run(
    layout: _QueueLayout,
    worker_id: str,
    *,
    shard: Optional[int],
    crash_after_claims: Optional[int],
    poll_s: float,
    status: Optional[Dict[str, Any]] = None,
) -> None:
    """One worker's main loop over one run: claim, execute, publish.

    Exits when the run's STOP sentinel is present and nothing is left to
    claim. On exit, writes the worker summary (claims/completions/steals
    plus the worker's metrics-registry snapshot) for the coordinator to
    merge. Observed trials additionally log their completed spans to
    ``workers/<id>.events.jsonl`` for cross-process stitching.

    ``status`` (the live-telemetry hook from :func:`run_worker`) is
    updated in place with this run's registry/run dir/span ring so a
    concurrently scraping :class:`~repro.obs.TelemetryServer` sees
    current state.
    """
    from repro.experiments.runner import _timed_call
    from repro.obs import (
        MetricsRegistry,
        TraceContext,
        process_span_namespace,
        set_process_span_namespace,
        set_process_trace_context,
        span_event_lines,
    )
    from repro.obs.live import append_event_lines

    meta = None
    while meta is None or "fn_pickle" not in meta:
        meta = _read_json(layout.meta)
        if meta is None:
            time.sleep(poll_s)
    fn = _b64_unpickle(meta["fn_pickle"])
    retries = int(meta.get("task_retries", 0))
    lease_timeout_s = float(meta.get("lease_timeout_s", 30.0))
    registry = MetricsRegistry()
    # Span ids minted in this process are namespaced by the worker id so
    # they are globally unique across the fleet (stitched traces never
    # collide); deterministic per process — same claims, same ids. The
    # previous namespace is restored on exit (in-process test workers).
    previous_namespace = process_span_namespace()
    set_process_span_namespace(worker_id)
    events_log = layout.workers / f"{worker_id}.events.jsonl"
    if status is not None:
        status["registry"] = registry
        status["run_dir"] = layout.run_dir
    claims = completed = steals = 0
    try:
        while True:
            claimed = _claim_next(layout, worker_id, shard)
            if claimed is None:
                if layout.stop.exists():
                    break
                time.sleep(poll_s)
                continue
            manifest, stolen = claimed
            task_id = str(manifest["id"])
            claims += 1
            registry.counter(
                "queue_worker_claims_total", worker=worker_id
            ).inc()
            if stolen:
                steals += 1
                registry.counter(
                    "queue_worker_steals_total", worker=worker_id
                ).inc()
            if crash_after_claims is not None and claims >= crash_after_claims:
                # Fault injection: die while still holding the lease, as
                # a power-cut worker would. The coordinator must notice
                # and re-queue this task.
                os._exit(CRASH_EXIT_CODE)
            lease = layout.lease_path(task_id)
            heartbeat = _Heartbeat(
                lease, interval_s=max(0.05, lease_timeout_s / 4.0)
            )
            heartbeat.start()
            trace_info = manifest.get("trace")
            if trace_info:
                # Adopt the coordinator's trace context for this task:
                # the trial's root span will carry trace_id plus the
                # coordinator task:* span as its remote parent.
                set_process_trace_context(TraceContext.from_dict(trace_info))
            try:
                payload = _b64_unpickle(manifest["payload_pickle"])
                cache_info = manifest.get("cache")
                if cache_info:
                    outcome = _compute_with_shared_cache(
                        fn,
                        payload,
                        retries,
                        cache_info["root"],
                        cache_info["key"],
                        lease_timeout_s,
                        poll_s,
                    )
                else:
                    outcome = _timed_call(fn, payload, retries)
            finally:
                heartbeat.stop()
                set_process_trace_context(None)
            ok, value, seconds, attempts = outcome
            telemetry = (
                value.get("telemetry")
                if ok and isinstance(value, dict)
                else None
            )
            if telemetry is not None and telemetry.get("spans"):
                append_event_lines(
                    events_log,
                    span_event_lines(
                        telemetry,
                        trial=str(manifest.get("key", task_id)),
                        process=worker_id,
                    ),
                )
                ring = status.get("ring") if status is not None else None
                if ring is not None:
                    ring.extend(telemetry["spans"])
            _atomic_write_json(
                layout.result_path(task_id),
                {
                    "ok": bool(ok),
                    "value_pickle": _b64_pickle(value),
                    "seconds": float(seconds),
                    "attempts": int(attempts),
                    "worker": worker_id,
                },
            )
            try:
                lease.unlink()
            except OSError:
                pass
            completed += 1
            registry.counter(
                "queue_worker_completed_total", worker=worker_id
            ).inc()
    finally:
        set_process_span_namespace(previous_namespace)
        _atomic_write_json(
            layout.worker_path(worker_id),
            {
                "worker": worker_id,
                "claims": claims,
                "completed": completed,
                "steals": steals,
                "registry": registry.snapshot(),
            },
        )


def _find_run(
    queue_dir: pathlib.Path, served: set
) -> Optional[pathlib.Path]:
    """The next run directory a standalone worker should serve.

    ``queue_dir`` may be a run directory itself (it has ``meta.json``)
    or a queue root whose ``run-NNNN`` children appear as coordinators
    start. Runs already served are skipped; an already-stopped run is
    still returned once so a late-starting worker can drain any leftover
    claimable work, note the STOP, and exit cleanly.
    """
    if (queue_dir / "meta.json").exists():
        return queue_dir if queue_dir not in served else None
    for candidate in sorted(queue_dir.glob("run-*")):
        if candidate in served or not (candidate / "meta.json").exists():
            continue
        return candidate
    return None


def run_worker(
    queue_dir: pathlib.Path,
    worker_id: str,
    *,
    shard: Optional[int] = None,
    crash_after_claims: Optional[int] = None,
    once: bool = False,
    poll_s: float = 0.02,
    telemetry_port: Optional[int] = None,
) -> int:
    """A standalone queue worker: serve runs appearing under ``queue_dir``.

    With ``once=True`` the worker exits after its first run completes
    (how the coordinator spawns its own workers); otherwise it keeps
    watching for new runs until killed — the long-running multi-host
    deployment mode. ``telemetry_port`` (0 = ephemeral) attaches a
    :class:`~repro.obs.TelemetryServer` exposing this worker's registry,
    the served run's queue-liveness gauges, and a recent-span ring.
    Returns a process exit code.
    """
    queue_dir = pathlib.Path(queue_dir)
    served: set = set()
    status: Dict[str, Any] = {
        "registry": None,
        "run_dir": None,
        "ring": None,
    }
    server = None
    if telemetry_port is not None:
        from repro.obs import (
            SpanRing,
            TelemetryServer,
            merge_snapshots,
            queue_liveness_snapshot,
        )

        status["ring"] = SpanRing()

        def _snapshot() -> Dict[str, Any]:
            parts = []
            if status["registry"] is not None:
                parts.append(status["registry"].snapshot())
            if status["run_dir"] is not None:
                parts.append(queue_liveness_snapshot(status["run_dir"]))
            return merge_snapshots(parts)

        server = TelemetryServer(
            _snapshot,
            health_fn=lambda: {
                "status": "ok",
                "worker": worker_id,
                "run": str(status["run_dir"] or ""),
            },
            spans_fn=status["ring"].recent,
            port=telemetry_port,
        ).start()
        print(f"telemetry: {server.url}", flush=True)
    try:
        while True:
            run_dir = _find_run(queue_dir, served)
            if run_dir is None:
                if once and served:
                    return 0
                time.sleep(poll_s)
                continue
            _serve_run(
                _QueueLayout(run_dir),
                worker_id,
                shard=shard,
                crash_after_claims=crash_after_claims,
                poll_s=poll_s,
                status=status,
            )
            served.add(run_dir)
            if once:
                return 0
    finally:
        if server is not None:
            server.stop()


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
def _worker_command(
    run_dir: pathlib.Path,
    worker_id: str,
    shard: Optional[int],
    crash_after_claims: Optional[int],
) -> List[str]:
    """The argv that launches one spawned worker against ``run_dir``."""
    command = [
        sys.executable,
        "-m",
        "repro.experiments.distributed",
        "--queue-dir",
        str(run_dir),
        "--worker-id",
        worker_id,
        "--once",
    ]
    if shard is not None:
        command += ["--shard", str(shard)]
    if crash_after_claims is not None:
        command += ["--crash-after-claims", str(crash_after_claims)]
    return command


def _spawn_worker(
    layout: _QueueLayout,
    worker_id: str,
    shard: Optional[int],
    crash_after_claims: Optional[int],
) -> subprocess.Popen:
    """Launch one worker subprocess with ``repro`` importable."""
    import repro

    env = dict(os.environ)
    src_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    log = open(  # noqa: SIM115 - handed to the subprocess for its lifetime
        layout.workers / f"{worker_id}.log", "ab"
    )
    try:
        return subprocess.Popen(
            _worker_command(layout.run_dir, worker_id, shard, crash_after_claims),
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )
    finally:
        log.close()


def _lease_is_stale(
    layout: _QueueLayout,
    task_id: str,
    dead_pids: set,
    lease_timeout_s: float,
) -> bool:
    """Whether ``task_id``'s lease belongs to a lost worker.

    A lease is stale when its owner is a spawned worker known to have
    exited, a same-host process that no longer exists, or — the generic
    cross-host signal — its heartbeat mtime is older than the lease
    timeout.
    """
    lease = layout.lease_path(task_id)
    try:
        age = time.time() - lease.stat().st_mtime
    except OSError:
        return False  # lease already gone
    owner = _read_json(lease) or {}
    pid = owner.get("pid")
    if isinstance(pid, int):
        if pid in dead_pids:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            pass  # e.g. a different-host pid namespace: rely on mtime
    return age > lease_timeout_s


def _synthesize_lost(
    key: str, requeues: int
) -> Tuple[bool, Tuple[str, str, str, str], float, int]:
    """A failure outcome for a task whose workers kept disappearing."""
    message = (
        f"task lease lost {requeues} times (worker crash or stall); "
        f"giving up after {MAX_REQUEUES} re-queues"
    )
    return (
        False,
        (WORKER_LOST_ERROR, message, f"{WORKER_LOST_ERROR}: {message} [{key}]\n", ""),
        0.0,
        requeues,
    )


def execute_queue(
    runner,
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    pending: List[int],
    results: List[Any],
    task_keys: List[str],
    *,
    done_offset: int,
    total: int,
) -> None:
    """Coordinate one runner call over the file queue (backend="queue").

    Mirrors ``ExperimentRunner._execute``'s contract: runs
    ``fn(payloads[i])`` for every ``i`` in ``pending``, landing outcomes
    through ``runner._settle`` (results by index, stats, progress,
    fail-fast/keep-going semantics) — so callers cannot tell the
    backends apart except by the clock.
    """
    import tempfile

    from repro.experiments.runner import cache_key as compute_cache_key
    from repro.experiments.runner import execute_pipeline

    if runner.queue_dir is not None:
        queue_root = pathlib.Path(runner.queue_dir)
    else:
        queue_root = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-queue-")
        )
    run_dir = allocate_run_dir(queue_root)
    layout = _QueueLayout(run_dir)
    layout.create()

    n_workers = min(runner.n_workers, len(pending))
    cacheable = runner.cache is not None and fn is execute_pipeline
    trace_id: Optional[str] = None
    span_mark = len(runner.stats.run_spans)
    if runner.observe is not None:
        # One trace per coordinator call; each manifest names the
        # coordinator's task:* span (id == index + 1, namespaced
        # "coord:") as the remote parent of the worker's trial span.
        from repro.obs import new_trace_id

        trace_id = new_trace_id()
        runner.stats.trace_id = trace_id
    runner._active_queue_run = run_dir
    task_ids: Dict[int, str] = {}
    for position, index in enumerate(pending):
        task_id = f"{index:06d}"
        task_ids[index] = task_id
        manifest: Dict[str, Any] = {
            "id": task_id,
            "index": index,
            "key": task_keys[index],
            "shard": position % n_workers,
            "payload_pickle": _b64_pickle(payloads[index]),
        }
        if trace_id is not None:
            manifest["trace"] = {
                "trace_id": trace_id,
                "parent_span_id": f"coord:{index + 1}",
            }
        if cacheable:
            manifest["cache"] = {
                "root": str(runner.cache.root),
                "key": compute_cache_key(payloads[index]),
            }
        _atomic_write_json(layout.task_path(task_id), manifest)
    _atomic_write_json(
        layout.meta,
        {
            "protocol": PROTOCOL_VERSION,
            "fn_pickle": _b64_pickle(fn),
            "task_retries": runner.task_retries,
            "lease_timeout_s": runner.lease_timeout_s,
            "tasks": len(pending),
        },
    )

    procs: List[Tuple[str, int, subprocess.Popen]] = []
    for i in range(n_workers):
        crash = runner.queue_crash_after.get(i)
        procs.append(
            (f"w{i}", i, _spawn_worker(layout, f"w{i}", i, crash))
        )

    poll_s = 0.02
    settled: set = set()
    requeue_counts: Dict[int, int] = {}
    dead_pids: set = set()
    reaped: set = set()
    respawns = 0
    done = done_offset
    try:
        while len(settled) < len(pending):
            progressed = False
            for index in pending:
                if index in settled:
                    continue
                record = _read_json(layout.result_path(task_ids[index]))
                if record is None or "value_pickle" not in record:
                    continue
                outcome = (
                    bool(record["ok"]),
                    _b64_unpickle(record["value_pickle"]),
                    float(record["seconds"]),
                    int(record["attempts"]),
                )
                settled.add(index)
                done += 1
                progressed = True
                runner._settle(
                    index, task_keys[index], outcome, results, done, total
                )
            if len(settled) == len(pending):
                break

            # Reap spawned workers; their leases expire immediately.
            live = 0
            for worker_id, shard, proc in procs:
                code = proc.poll()
                if code is None:
                    live += 1
                elif proc.pid not in reaped:
                    reaped.add(proc.pid)
                    dead_pids.add(proc.pid)

            # Expire stale leases so the task becomes claimable again.
            for index in pending:
                if index in settled:
                    continue
                task_id = task_ids[index]
                if layout.result_path(task_id).exists():
                    continue
                lease = layout.lease_path(task_id)
                if not lease.exists():
                    continue
                if not _lease_is_stale(
                    layout, task_id, dead_pids, runner.lease_timeout_s
                ):
                    continue
                try:
                    lease.unlink()
                except OSError:
                    continue  # the owner finished or another expiry won
                runner.stats.requeues += 1
                requeue_counts[index] = requeue_counts.get(index, 0) + 1
                progressed = True
                if requeue_counts[index] > MAX_REQUEUES:
                    settled.add(index)
                    done += 1
                    runner._settle(
                        index,
                        task_keys[index],
                        _synthesize_lost(task_keys[index], requeue_counts[index]),
                        results,
                        done,
                        total,
                    )

            if live == 0 and len(settled) < len(pending):
                if respawns < min(MAX_RESPAWNS_PER_RUN, n_workers):
                    # Every spawned worker died; field a replacement so
                    # the re-queued work still runs out-of-process.
                    worker_id = f"r{respawns}"
                    procs.append(
                        (worker_id, None, _spawn_worker(layout, worker_id, None, None))
                    )
                    respawns += 1
                else:
                    # Last resort: the coordinator claims and executes
                    # the remaining tasks inline. Claiming still goes
                    # through the lease, so a surviving standalone
                    # worker and the coordinator never collide.
                    claimed = _claim_next(layout, "coordinator", None)
                    if claimed is not None:
                        manifest, _ = claimed
                        from repro.experiments.runner import _timed_call

                        payload = _b64_unpickle(manifest["payload_pickle"])
                        outcome = _timed_call(fn, payload, runner.task_retries)
                        ok, value, seconds, attempts = outcome
                        _atomic_write_json(
                            layout.result_path(str(manifest["id"])),
                            {
                                "ok": bool(ok),
                                "value_pickle": _b64_pickle(value),
                                "seconds": float(seconds),
                                "attempts": int(attempts),
                                "worker": "coordinator",
                            },
                        )
                        try:
                            layout.lease_path(str(manifest["id"])).unlink()
                        except OSError:
                            pass
                        continue  # settle it on the next sweep

            if not progressed:
                time.sleep(poll_s)
    finally:
        layout.stop.touch()
        deadline = time.time() + 10.0
        for _, _, proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - time.time()))
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
        for summary_path in sorted(layout.workers.glob("*.json")):
            summary = _read_json(summary_path)
            if summary is None:
                continue
            runner.stats.worker_snapshots.append(summary)
            runner.stats.steals += int(summary.get("steals", 0))
        runner._active_queue_run = None
        if trace_id is not None:
            _write_coordinator_events(
                layout, runner, trace_id, span_mark
            )


def _write_coordinator_events(
    layout: _QueueLayout, runner, trace_id: str, span_mark: int
) -> None:
    """Log this call's coordinator ``task:*`` spans for trace stitching.

    Run spans are kept on the runner's relative wall clock with plain
    integer ids; here they are namespaced ``coord:<id>`` and anchored to
    the epoch so ``tools/stitch_trace.py`` can line them up with worker
    and service span logs (ids match the ``parent_span_id`` each task
    manifest carried).
    """
    from repro.obs import span_event_lines
    from repro.obs.live import append_event_lines

    spans = []
    for span in runner.stats.run_spans[span_mark:]:
        entry = dict(span)
        entry["id"] = f"coord:{span['id']}"
        entry["attrs"] = {**span.get("attrs", {}), "trace_id": trace_id}
        spans.append(entry)
    if not spans:
        return
    anchor = time.time() - (time.perf_counter() - runner._wall0)
    lines = span_event_lines(
        {"spans": spans, "wall0_epoch": anchor, "process": "coord"},
        trial="coordinator",
        process="coord",
    )
    append_event_lines(layout.run_dir / "coordinator.events.jsonl", lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.experiments.distributed``.

    Launches one standalone queue worker; see :func:`run_worker`.
    """
    parser = argparse.ArgumentParser(
        prog="repro.experiments.distributed",
        description="Standalone worker for the file-queue execution backend.",
    )
    parser.add_argument(
        "--queue-dir",
        type=pathlib.Path,
        required=True,
        help="queue root (or a single run directory) to serve",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name (default: w<pid>)",
    )
    parser.add_argument(
        "--shard",
        type=int,
        default=None,
        help="preferred task shard (omit to treat every task as local)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after the first run completes instead of waiting for more",
    )
    parser.add_argument(
        "--crash-after-claims",
        type=int,
        default=None,
        help="fault injection: hard-crash after claiming this many tasks",
    )
    parser.add_argument(
        "--poll-s",
        type=float,
        default=0.02,
        help="idle polling interval in seconds",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="serve live /metrics,/healthz,/spans on this port (0 = ephemeral)",
    )
    args = parser.parse_args(argv)
    worker_id = args.worker_id or f"w{os.getpid()}"
    return run_worker(
        args.queue_dir,
        worker_id,
        shard=args.shard,
        crash_after_claims=args.crash_after_claims,
        once=args.once,
        poll_s=args.poll_s,
        telemetry_port=args.telemetry_port,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
