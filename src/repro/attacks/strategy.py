"""The compromised beacon's mixed strategy.

Section 2.3 models a malicious beacon node that, per requesting node:

- with probability ``p_n`` answers **normally** (no impact, undetectable);
- otherwise sends a malicious signal, but masks it:

  - with probability ``p_w`` it makes the signal look **wormhole-replayed**
    (so honest replay filters discard it — no alert, but also no victim);
  - else with probability ``p_l`` it makes the signal look **locally
    replayed** (RTT too large — again discarded);
  - else the malicious signal goes through: a non-beacon victim is misled,
    and a detecting node would raise an alert.

The probability that a requester both receives and *accepts* a malicious
signal is ``P' = (1 - p_n)(1 - p_w)(1 - p_l)``.

The paper notes the attacker's best strategy is to behave **consistently
per requester** ("the malicious beacon node u behaves in the same way for
the same requesting node"), so decisions are cached per requester id.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict

from repro.sim.rng import derive_seed
from repro.utils.validation import check_probability


class ResponseKind(enum.Enum):
    """What a malicious beacon does with one requester, forever."""

    NORMAL = "normal"
    MASK_WORMHOLE = "mask_wormhole"
    MASK_LOCAL_REPLAY = "mask_local_replay"
    MALICIOUS = "malicious"


@dataclass
class AdversaryStrategy:
    """Frozen per-beacon strategy ``(p_n, p_w, p_l)`` with cached decisions.

    Attributes:
        p_n: fraction of requesters answered normally.
        p_w: fraction (of the rest) deflected as wormhole replays.
        p_l: fraction (of the remainder) deflected as local replays.
        location_lie_ft: how far the declared location is shifted when the
            beacon actually attacks (must exceed the honest error bound to
            mislead localization).
        ranging_bias_ft: signal-manipulation bias added when attacking.
        seed: determinism anchor for the per-requester coin flips.
    """

    p_n: float = 0.0
    p_w: float = 0.0
    p_l: float = 0.0
    location_lie_ft: float = 100.0
    ranging_bias_ft: float = 0.0
    seed: int = 0
    _decisions: Dict[int, ResponseKind] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        check_probability(self.p_n, "p_n")
        check_probability(self.p_w, "p_w")
        check_probability(self.p_l, "p_l")

    # ------------------------------------------------------------------
    # Closed forms (match repro.core.analysis)
    # ------------------------------------------------------------------
    @property
    def p_effective(self) -> float:
        """``P'``: probability a requester accepts a malicious signal."""
        return (1.0 - self.p_n) * (1.0 - self.p_w) * (1.0 - self.p_l)

    @classmethod
    def with_effective(cls, p_prime: float, **kwargs) -> "AdversaryStrategy":
        """Build a strategy achieving a target ``P'``.

        Splits the complementary mass evenly between the three masks: a
        convenient canonical parameterization used by the experiments, which
        only depend on ``P'`` (the analysis shows the three probabilities
        enter only through their product).
        """
        check_probability(p_prime, "p_prime")
        share = 1.0 - p_prime ** (1.0 / 3.0)
        return cls(p_n=share, p_w=share, p_l=share, **kwargs)

    # ------------------------------------------------------------------
    # Per-requester decision
    # ------------------------------------------------------------------
    def decide(self, requester_id: int) -> ResponseKind:
        """The (sticky) behaviour toward ``requester_id``."""
        decision = self._decisions.get(requester_id)
        if decision is None:
            rng = random.Random(derive_seed(self.seed, f"req:{requester_id}"))
            if rng.random() < self.p_n:
                decision = ResponseKind.NORMAL
            elif rng.random() < self.p_w:
                decision = ResponseKind.MASK_WORMHOLE
            elif rng.random() < self.p_l:
                decision = ResponseKind.MASK_LOCAL_REPLAY
            else:
                decision = ResponseKind.MALICIOUS
            self._decisions[requester_id] = decision
        return decision

    def decisions_made(self) -> Dict[int, ResponseKind]:
        """Copy of the sticky decisions so far (for metrics/tests)."""
        return dict(self._decisions)
