"""Detecting-ID inference: the attacker's counter-move from §2.1.

The detection scheme's stealth rests on the attacker being unable to tell
a detecting beacon's probe from a genuine non-beacon request. Section 2.1
discusses the arms race explicitly: beacon locations are public (they
broadcast them), so a compromised beacon can try to **infer** that a
requester is really a beacon-in-disguise by checking whether the request
signal's measured distance matches its distance to a known beacon — and
answer *those* requesters honestly while attacking everyone else.

The paper's prescribed countermeasures, also implemented here:

- "adjust the transmission power in RSSI technique": the detecting node
  randomizes its probe's ranging signature so the measured distance no
  longer pins it to a beacon position
  (:attr:`repro.core.detecting.DetectingBeacon.probe` takes a ranging
  bias; the pipeline draws it uniformly);
- "if sensor nodes have certain mobility": model a probe transmitted from
  a displaced origin.

:class:`InferringMaliciousBeacon` implements the distance-ring inference;
the ablation bench shows it gutting naive detection and the power
randomization restoring it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy, ResponseKind
from repro.crypto.manager import KeyManager
from repro.sim.radio import Reception
from repro.utils.geometry import Point, distance
from repro.utils.validation import check_non_negative


@dataclass
class InferenceStats:
    """Bookkeeping of the attacker's classification decisions."""

    suspected_detector: int = 0
    treated_as_sensor: int = 0

    @property
    def total(self) -> int:
        """Requests classified."""
        return self.suspected_detector + self.treated_as_sensor


class InferringMaliciousBeacon(MaliciousBeacon):
    """A compromised beacon that tries to unmask detecting IDs.

    Inference rule (distance ring): the request signal yields a measured
    distance ``d``; if ``d`` matches this node's distance to any known
    beacon position within ``ring_tolerance_ft``, the requester probably
    *is* that beacon under a detecting ID — answer honestly. Otherwise
    attack per the underlying strategy.

    Args:
        node_id / position / key_manager / strategy: as the base class.
        known_beacon_positions: the (public) beacon locations the attacker
            checks against, excluding itself.
        ring_tolerance_ft: match tolerance; should exceed the ranging
            error bound or the attacker misses (defaults to 2x a 10 ft
            bound).
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        strategy: AdversaryStrategy,
        *,
        known_beacon_positions: Optional[Dict[int, Point]] = None,
        ring_tolerance_ft: float = 20.0,
    ) -> None:
        super().__init__(node_id, position, key_manager, strategy)
        check_non_negative(ring_tolerance_ft, "ring_tolerance_ft")
        self.known_beacon_positions = dict(known_beacon_positions or {})
        self.ring_tolerance_ft = ring_tolerance_ft
        self.inference = InferenceStats()
        self._suspected: set[int] = set()

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def classify_request(self, reception: Reception) -> bool:
        """True when the requester is suspected to be a detecting beacon."""
        measured = reception.measured_distance_ft
        for beacon_id, beacon_pos in self.known_beacon_positions.items():
            if beacon_id == self.node_id:
                continue
            ring = distance(self.position, beacon_pos)
            if abs(measured - ring) <= self.ring_tolerance_ft:
                return True
        return False

    # ------------------------------------------------------------------
    # Protocol override
    # ------------------------------------------------------------------
    def _serve_request(self, reception: Reception) -> None:
        request = reception.packet
        if not self.key_manager.verify(request):
            return
        if self.classify_request(reception):
            self.inference.suspected_detector += 1
            self._suspected.add(request.src_id)
        else:
            self.inference.treated_as_sensor += 1
        self.respond_to(request)

    def respond_to(self, request) -> None:
        if request.src_id in self._suspected:
            # Play innocent toward suspected probes, always.
            self.requests_served += 1
            self._sequence += 1
            self.responses_by_kind[ResponseKind.NORMAL] += 1
            self._reply(request, self.position)
            return
        super().respond_to(request)
