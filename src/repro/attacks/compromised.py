"""Compromised beacon nodes (paper Figure 1b).

A :class:`MaliciousBeacon` is a beacon node with valid keys that follows an
:class:`AdversaryStrategy`: it answers some requesters honestly and attacks
others, masking part of its malicious signals as wormhole or local replays
to dodge detecting nodes. It cannot tell a detecting ID from a genuine
non-beacon requester — the paper's central assumption — so the mask/attack
decision is blind to who is asking.
"""

from __future__ import annotations

import math

from repro.attacks.strategy import AdversaryStrategy, ResponseKind
from repro.crypto.manager import KeyManager
from repro.localization.beacon import BeaconService
from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.rng import derive_seed
from repro.sim.timing import packet_transmission_cycles
from repro.utils.geometry import Point


class MaliciousBeacon(BeaconService):
    """A compromised beacon following the paper's mixed strategy.

    Args:
        node_id: the compromised beacon's (valid) identity.
        position: its physical location.
        key_manager: it holds real keys, so its packets authenticate.
        strategy: the ``(p_n, p_w, p_l)`` behaviour mix.
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        strategy: AdversaryStrategy,
    ) -> None:
        super().__init__(node_id, position, key_manager)
        self.strategy = strategy
        self.responses_by_kind = {kind: 0 for kind in ResponseKind}

    # ------------------------------------------------------------------
    # Attack mechanics
    # ------------------------------------------------------------------
    def lie_location_for(self, requester_id: int) -> Point:
        """The false location declared to ``requester_id`` when attacking.

        Deterministic per requester (consistent behaviour), displaced by
        ``strategy.location_lie_ft`` in a pseudo-random direction.
        """
        angle_seed = derive_seed(self.strategy.seed, f"lie:{self.node_id}:{requester_id}")
        angle = (angle_seed % 360) * math.pi / 180.0
        r = self.strategy.location_lie_ft
        return Point(
            self.position.x + r * math.cos(angle),
            self.position.y + r * math.sin(angle),
        )

    def _far_location_for(self, requester_id: int) -> Point:
        """A declared location beyond radio range (wormhole-mask support)."""
        if self.network is None:
            offset = 400.0
        else:
            offset = 2.5 * self.network.radio.comm_range_ft
        angle_seed = derive_seed(self.strategy.seed, f"far:{self.node_id}:{requester_id}")
        angle = (angle_seed % 360) * math.pi / 180.0
        return Point(
            self.position.x + offset * math.cos(angle),
            self.position.y + offset * math.sin(angle),
        )

    # ------------------------------------------------------------------
    # Protocol override
    # ------------------------------------------------------------------
    def respond_to(self, request: BeaconRequest) -> None:
        """Answer per the sticky strategy decision for this requester."""
        self.requests_served += 1
        self._sequence += 1
        decision = self.strategy.decide(request.src_id)
        self.responses_by_kind[decision] += 1

        if decision is ResponseKind.NORMAL:
            # Indistinguishable from a benign beacon: truth, no games.
            self._reply(request, self.position)
        elif decision is ResponseKind.MALICIOUS:
            # The actual attack: lie about the location (and optionally bias
            # the ranging feature); the measured-vs-calculated distances
            # disagree by ~location_lie_ft, misleading localization.
            self._reply(
                request,
                self.lie_location_for(request.src_id),
                ranging_bias_ft=self.strategy.ranging_bias_ft,
            )
        elif decision is ResponseKind.MASK_WORMHOLE:
            # Convince the requester the signal came through a wormhole:
            # declare an out-of-range location and fake tunnel symptoms.
            self._reply(
                request,
                self._far_location_for(request.src_id),
                fake_wormhole_symptoms=True,
            )
        else:  # ResponseKind.MASK_LOCAL_REPLAY
            # Convince the requester the signal was locally replayed: add
            # (at least) one packet transmission time of delay, which the
            # RTT detector flags and discards.
            reply_bits = BeaconPacket(src_id=self.node_id, dst_id=0).size_bits
            self._reply(
                request,
                self.lie_location_for(request.src_id),
                extra_delay_cycles=packet_transmission_cycles(reply_bits),
            )

    def _reply(
        self,
        request: BeaconRequest,
        declared: Point,
        *,
        ranging_bias_ft: float = 0.0,
        extra_delay_cycles: float = 0.0,
        fake_wormhole_symptoms: bool = False,
    ) -> None:
        reply = BeaconPacket(
            src_id=self.node_id,
            dst_id=request.src_id,
            claimed_location=(declared.x, declared.y),
            nonce=request.nonce,
            sequence=self._sequence,
        )
        self.send(
            self.key_manager.sign(reply),
            ranging_bias_ft=ranging_bias_ft,
            extra_delay_cycles=extra_delay_cycles,
            fake_wormhole_symptoms=fake_wormhole_symptoms,
        )
