"""External attackers masquerading as beacon nodes (paper Figure 1a).

A masquerading attacker has **no valid keys**; its forged beacon packets
fail the pairwise-key authentication check at every compliant receiver,
which is the paper's baseline defence ("beacon packets forged by external
attackers that do not have the right keys can be easily filtered out").
"""

from __future__ import annotations

import os

from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.node import Node
from repro.sim.radio import Reception
from repro.utils.geometry import Point


class MasqueradeAttacker(Node):
    """A key-less node impersonating beacon identities.

    Args:
        node_id: the attacker's own (physical) id — used only for the
            simulator's bookkeeping, never claimed in packets.
        position: where it transmits from.
        impersonated_id: the beacon identity it pretends to be.
        fake_location: the location it declares.
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        *,
        impersonated_id: int,
        fake_location: Point,
    ) -> None:
        super().__init__(node_id, position, is_beacon=False)
        self.impersonated_id = impersonated_id
        self.fake_location = fake_location
        self.forged_sent = 0
        self.on(BeaconRequest, type(self)._answer_with_forgery)

    def _answer_with_forgery(self, reception: Reception) -> None:
        """Answer any overheard request with a forged beacon packet."""
        self.forge_beacon_to(reception.packet.src_id)

    def forge_beacon_to(self, victim_id: int) -> None:
        """Send a forged (unauthenticatable) beacon packet to ``victim_id``."""
        packet = BeaconPacket(
            src_id=self.impersonated_id,
            dst_id=victim_id,
            claimed_location=(self.fake_location.x, self.fake_location.y),
        )
        # A random tag: without the pairwise key the attacker can do no
        # better, and verification fails with overwhelming probability.
        packet.auth_tag = os.urandom(8)
        self.forged_sent += 1
        self.send(packet)
