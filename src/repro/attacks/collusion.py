"""Colluding false-alert reporters (paper Sections 3.1 and 4).

Malicious beacon nodes can report alerts against *benign* beacons. The
revocation scheme caps each reporter at ``tau_report`` accepted alerts, so
``N_a`` colluders can inject at most ``N_a * (tau_report + 1)`` alerts
(counting the one that trips the cap), revoking about
``N_a * (tau_report + 1) / (tau_alert + 1)`` benign beacons when they
concentrate fire. This module generates those alert schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ColludingReporters:
    """A coalition of malicious beacons flooding false alerts.

    Attributes:
        reporter_ids: the compromised beacon identities doing the reporting.
        tau_report: the base station's per-reporter quota (the coalition
            knows the system parameters and spends exactly the quota).
        tau_alert: alerts needed to revoke one target.
    """

    reporter_ids: Sequence[int]
    tau_report: int
    tau_alert: int

    def __post_init__(self) -> None:
        if self.tau_report < 0:
            raise ConfigurationError(
                f"tau_report must be >= 0, got {self.tau_report}"
            )
        if self.tau_alert < 0:
            raise ConfigurationError(f"tau_alert must be >= 0, got {self.tau_alert}")

    @property
    def total_alert_budget(self) -> int:
        """Accepted alerts the coalition can land: N_a * (tau_report + 1).

        Each reporter's alerts are accepted while its counter has *not
        exceeded* the threshold, so tau_report + 1 alerts get through.
        """
        return len(self.reporter_ids) * (self.tau_report + 1)

    def expected_benign_revocations(self) -> int:
        """How many benign beacons concentrated fire can revoke."""
        return self.total_alert_budget // (self.tau_alert + 1)

    # ------------------------------------------------------------------
    # Alert schedules
    # ------------------------------------------------------------------
    def concentrated_schedule(
        self, benign_targets: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """(reporter, target) pairs focusing tau_alert+1 alerts per target.

        The optimal strategy: pour alerts into one benign target until it
        is revoked, then move to the next. Reporters are rotated so each
        target's alerts come from as many *distinct* colluders as possible
        — equally effective against a counter that takes repeated alerts
        (the paper's base station) and one that counts each (reporter,
        target) pair once (our distributed ledgers).
        """
        quotas = {r: self.tau_report + 1 for r in self.reporter_ids}
        order = list(self.reporter_ids)
        schedule: List[Tuple[int, int]] = []
        per_target = self.tau_alert + 1
        cursor = 0
        for target in benign_targets:
            assigned = 0
            while assigned < per_target:
                # Find the next reporter (round-robin) with quota left.
                for _ in range(len(order)):
                    reporter = order[cursor % len(order)]
                    cursor += 1
                    if quotas[reporter] > 0:
                        break
                else:
                    return schedule  # every quota exhausted
                quotas[reporter] -= 1
                schedule.append((reporter, target))
                assigned += 1
        return schedule

    def spread_schedule(self, benign_targets: Sequence[int]) -> List[Tuple[int, int]]:
        """(reporter, target) pairs spread evenly — the naive strategy.

        Spreading rarely revokes anyone (each target collects few alerts);
        included as the contrast case for the collusion bench.
        """
        if not benign_targets:
            return []
        schedule: List[Tuple[int, int]] = []
        targets = list(benign_targets)
        index = 0
        for reporter in self._budget_iter():
            schedule.append((reporter, targets[index % len(targets)]))
            index += 1
        return schedule

    def _budget_iter(self) -> Iterator[int]:
        for reporter in self.reporter_ids:
            for _ in range(self.tau_report + 1):
                yield reporter
