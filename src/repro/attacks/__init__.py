"""Adversary substrate: every attack class the paper considers.

- :mod:`repro.attacks.strategy` — the compromised beacon's mixed strategy
  ``(p_n, p_w, p_l)`` from the paper's analysis (Section 2.3);
- :mod:`repro.attacks.compromised` — a compromised beacon node that lies
  about its location / manipulates its signal (Figure 1b);
- :mod:`repro.attacks.masquerade` — external attacker forging beacon
  packets without keys (Figure 1a);
- :mod:`repro.attacks.replay` — local replay of captured beacon signals
  (Section 2.2.2) and wormhole orchestration (Figure 1c);
- :mod:`repro.attacks.collusion` — malicious beacons flooding false alerts
  at the base station (Section 3/4).
"""

from repro.attacks.strategy import AdversaryStrategy, ResponseKind
from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.masquerade import MasqueradeAttacker
from repro.attacks.replay import LocalReplayAttacker, build_wormhole
from repro.attacks.collusion import ColludingReporters
from repro.attacks.inference import InferringMaliciousBeacon
from repro.attacks.aligned import SignalAligningLiar

__all__ = [
    "AdversaryStrategy",
    "ResponseKind",
    "MaliciousBeacon",
    "MasqueradeAttacker",
    "LocalReplayAttacker",
    "build_wormhole",
    "ColludingReporters",
    "InferringMaliciousBeacon",
    "SignalAligningLiar",
]
