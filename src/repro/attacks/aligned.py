"""The signal-aligning liar: a consistent-distance location lie.

The paper's §2.1 equivalence argument says a lie *consistent with the
measured distance* passes the distance check (and is harmless to a single
requester). This attacker weaponizes that: knowing (or inferring) the
requester's position, it declares a location **off the true bearing** but
at the right distance, and games its transmit power so the RSSI-measured
distance matches the lie. The distance check passes; localization from
multiple such lies is corrupted (the lies are requester-specific, so the
"it's equivalent to an honest beacon at the declared spot" argument breaks
down across requesters).

What it cannot fake is physics: the signal still *arrives from* the
attacker's true direction, so the AoA consistency check
(:class:`repro.core.detecting_aoa.AngleDetectingBeacon`) catches it —
the end-to-end demonstration of the §2.3 AoA extension's value.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy, ResponseKind
from repro.crypto.manager import KeyManager
from repro.sim.messages import BeaconRequest
from repro.sim.rng import derive_seed
from repro.utils.geometry import Point, distance


class SignalAligningLiar(MaliciousBeacon):
    """Lies off-ray while matching the measured distance to the lie.

    Args:
        known_requester_positions: requester id -> position. In the field
            the attacker learns these from its own AoA/ranging of the
            request signal; the simulation grants them directly (a strong
            attacker — exactly the one the distance-only detector loses
            to).
        lie_angle_rad: angular displacement of the lie, seen from the
            requester (default 60 degrees off the true direction).
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        key_manager: KeyManager,
        strategy: AdversaryStrategy,
        *,
        known_requester_positions: Dict[int, Point],
        lie_angle_rad: float = math.radians(60.0),
    ) -> None:
        super().__init__(node_id, position, key_manager, strategy)
        self.known_requester_positions = dict(known_requester_positions)
        self.lie_angle_rad = lie_angle_rad

    def respond_to(self, request: BeaconRequest) -> None:
        decision = self.strategy.decide(request.src_id)
        requester_pos = self.known_requester_positions.get(request.src_id)
        if decision is not ResponseKind.MALICIOUS or requester_pos is None:
            super().respond_to(request)
            return

        self.requests_served += 1
        self._sequence += 1
        self.responses_by_kind[ResponseKind.MALICIOUS] += 1

        true_dist = distance(self.position, requester_pos)
        # Rotate the true direction (requester -> me) by the lie angle and
        # declare a location at the same distance along the rotated ray.
        true_angle = math.atan2(
            self.position.y - requester_pos.y, self.position.x - requester_pos.x
        )
        sign = 1.0 if derive_seed(self.strategy.seed, f"s:{request.src_id}") % 2 else -1.0
        lie_angle = true_angle + sign * self.lie_angle_rad
        lie = Point(
            requester_pos.x + true_dist * math.cos(lie_angle),
            requester_pos.y + true_dist * math.sin(lie_angle),
        )
        # Transmit-power game: the measured distance already equals the
        # distance to the lie (same radius), so no bias is needed beyond
        # cancelling nothing — include the exact correction for generality.
        bias = distance(requester_pos, lie) - true_dist  # = 0 by construction
        self._reply(request, lie, ranging_bias_ft=bias)
