"""Replay attacks: local replay and wormhole construction.

Local replay (paper Section 2.2.2): an attacker captures a beacon signal
from a *benign* beacon and re-emits it. The packet's authentication is
intact (the attacker did not modify it), but the signal now physically
leaves from the attacker's position — corrupting the ranging measurement —
and arrives at least one packet transmission time late, which is what the
RTT detector exploits.

Wormholes (Figure 1c) are a property of the field, not of a node; the
:func:`build_wormhole` helper installs the tunnel used in the paper's
simulation (between (100,100) and (800,700)).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.sim.messages import BeaconPacket
from repro.sim.network import Network, WormholeLink
from repro.sim.node import Node
from repro.sim.radio import Reception
from repro.sim.timing import packet_transmission_cycles
from repro.utils.geometry import Point


class LocalReplayAttacker(Node):
    """Captures beacon packets off the air and replays them.

    The attacker is a plain radio node — no keys needed, because it replays
    packets verbatim (valid tags included).
    """

    def __init__(self, node_id: int, position: Point) -> None:
        super().__init__(node_id, position, is_beacon=False)
        self.captured: List[BeaconPacket] = []
        self.replays_sent = 0
        self.on(BeaconPacket, type(self)._capture)

    def _capture(self, reception: Reception) -> None:
        """Stash every overheard beacon packet for later replay."""
        self.captured.append(reception.packet)

    def replay(
        self,
        packet: BeaconPacket,
        *,
        extra_delay_cycles: Optional[float] = None,
    ) -> None:
        """Re-emit ``packet`` toward its original destination.

        Args:
            packet: a captured (still-authenticated) beacon packet.
            extra_delay_cycles: replay delay. Defaults to the physical
                minimum — one full packet transmission time (Section 2.3's
                "the delay of replaying a signal between two neighbor nodes
                is at least the transmission time of one entire packet").
        """
        if self.network is None:
            raise SimulationError("replay attacker is not attached to a network")
        if extra_delay_cycles is None:
            extra_delay_cycles = packet_transmission_cycles(packet.size_bits)
        self.replays_sent += 1
        self.network.unicast(
            self,
            packet,
            tx_origin=self.position,
            replayed_by=self.node_id,
            extra_delay_cycles=extra_delay_cycles,
        )

    def replay_all(self) -> int:
        """Replay every captured packet once; returns the count."""
        for packet in list(self.captured):
            self.replay(packet)
        return len(self.captured)


def build_wormhole(
    network: Network,
    end_a: Point,
    end_b: Point,
    *,
    latency_cycles: float = 0.0,
) -> WormholeLink:
    """Install a wormhole tunnel between two field locations.

    Returns the link so tests can assert against it. The paper's simulated
    tunnel "forwards every message received at one side immediately to the
    other side" — i.e. ``latency_cycles = 0``.
    """
    link = WormholeLink(end_a=end_a, end_b=end_b, latency_cycles=latency_cycles)
    network.add_wormhole(link)
    return link
