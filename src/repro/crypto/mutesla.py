"""µTESLA broadcast authentication (Perrig et al., SPINS, 2001).

The paper cites µTESLA as the sensor-network broadcast-authentication
primitive. We use it for two things:

- the base station's revocation notices (one sender, many receivers), and
- the distributed revocation extension, where *every beacon node* needs to
  authenticate its alerts to every other node without pairwise contact —
  exactly the asymmetry µTESLA's delayed key disclosure provides.

Mechanism: the sender builds a one-way key chain ``K_n -> ... -> K_0``
with ``K_i = H(K_{i+1})`` and publishes the anchor ``K_0`` (the
*commitment*). Time is divided into intervals; a packet sent in interval
``i`` is MACed with a key derived from ``K_i``; the sender discloses
``K_i`` only ``disclosure_lag`` intervals later. A receiver buffers the
packet, checks the **security condition** (the packet arrived before its
key could have been disclosed), later authenticates the disclosed key
against the anchor via repeated hashing, and only then verifies the MAC.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AuthenticationError, ConfigurationError

_HASH = hashlib.sha256


def _chain_step(key: bytes) -> bytes:
    """One application of the one-way function H."""
    return _HASH(b"chain|" + key).digest()[:16]


def _mac_key(key: bytes) -> bytes:
    """Derive the per-interval MAC key H'(K_i) from the chain key."""
    return _HASH(b"mac|" + key).digest()[:16]


@dataclass(frozen=True)
class MuTeslaTag:
    """Authentication data attached to one broadcast packet."""

    sender_id: int
    interval: int
    mac: bytes


class KeyChain:
    """A sender's one-way key chain over fixed time intervals.

    Args:
        seed: the secret chain head ``K_n``.
        length: number of usable intervals ``n``.
        interval_cycles: duration of each interval in simulation cycles.
        start_time: cycle at which interval 0 begins.
        disclosure_lag: intervals to wait before disclosing a key (>= 1).
    """

    def __init__(
        self,
        seed: bytes,
        length: int,
        *,
        interval_cycles: float,
        start_time: float = 0.0,
        disclosure_lag: int = 2,
    ) -> None:
        if length <= 0:
            raise ConfigurationError(f"length must be > 0, got {length}")
        if interval_cycles <= 0:
            raise ConfigurationError(
                f"interval_cycles must be > 0, got {interval_cycles}"
            )
        if disclosure_lag < 1:
            raise ConfigurationError(
                f"disclosure_lag must be >= 1, got {disclosure_lag}"
            )
        self.length = length
        self.interval_cycles = float(interval_cycles)
        self.start_time = float(start_time)
        self.disclosure_lag = disclosure_lag
        # keys[i] = K_i; build from K_n = H(seed) down to the anchor K_0.
        keys = [b""] * (length + 1)
        keys[length] = _chain_step(seed)
        for i in range(length - 1, -1, -1):
            keys[i] = _chain_step(keys[i + 1])
        self._keys = keys

    @property
    def commitment(self) -> bytes:
        """The public anchor ``K_0`` receivers are bootstrapped with."""
        return self._keys[0]

    def interval_at(self, time: float) -> int:
        """The interval index containing ``time`` (may exceed ``length``)."""
        if time < self.start_time:
            raise ConfigurationError(
                f"time {time} precedes chain start {self.start_time}"
            )
        return int((time - self.start_time) // self.interval_cycles)

    def key_for_interval(self, interval: int) -> bytes:
        """The chain key K_i (sender-side secret until disclosure)."""
        if not 1 <= interval <= self.length:
            raise ConfigurationError(
                f"interval must be in [1, {self.length}], got {interval}"
            )
        return self._keys[interval]

    def disclosable_interval(self, time: float) -> int:
        """The newest interval whose key may be disclosed at ``time``."""
        return self.interval_at(time) - self.disclosure_lag


class MuTeslaBroadcaster:
    """Sender side: MAC packets in the current interval, disclose old keys."""

    def __init__(self, sender_id: int, chain: KeyChain) -> None:
        self.sender_id = sender_id
        self.chain = chain

    def authenticate(self, payload: bytes, now: float) -> MuTeslaTag:
        """Produce the tag for ``payload`` sent at time ``now``.

        Raises:
            AuthenticationError: if the chain is exhausted (interval > n)
                or the time falls in interval 0 (whose key is the public
                anchor and must never be used for MACs).
        """
        interval = self.chain.interval_at(now)
        if interval < 1:
            raise AuthenticationError(
                "interval 0 cannot authenticate packets (its key is public)"
            )
        if interval > self.chain.length:
            raise AuthenticationError("key chain exhausted")
        mac = hmac.new(
            _mac_key(self.chain.key_for_interval(interval)),
            payload,
            _HASH,
        ).digest()[:8]
        return MuTeslaTag(sender_id=self.sender_id, interval=interval, mac=mac)

    def disclose(self, now: float) -> Optional[Tuple[int, bytes]]:
        """The (interval, key) pair safe to disclose at ``now``, if any."""
        interval = self.chain.disclosable_interval(now)
        if interval < 1:
            return None
        interval = min(interval, self.chain.length)
        return interval, self.chain.key_for_interval(interval)


@dataclass
class _Buffered:
    payload: bytes
    tag: MuTeslaTag
    arrival_time: float


class MuTeslaVerifier:
    """Receiver side: buffer, check the security condition, verify later.

    Args:
        commitment: the sender's anchor ``K_0`` (assumed predistributed).
        interval_cycles / start_time / disclosure_lag: chain parameters
            (public protocol constants).
    """

    def __init__(
        self,
        commitment: bytes,
        *,
        interval_cycles: float,
        start_time: float = 0.0,
        disclosure_lag: int = 2,
    ) -> None:
        self.commitment = commitment
        self.interval_cycles = interval_cycles
        self.start_time = start_time
        self.disclosure_lag = disclosure_lag
        self._verified_keys: Dict[int, bytes] = {0: commitment}
        self._highest_verified = 0
        self._buffer: List[_Buffered] = []
        self.rejected_unsafe = 0
        self.rejected_bad_mac = 0

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def interval_at(self, time: float) -> int:
        """Interval index for ``time`` under the public parameters."""
        return int((time - self.start_time) // self.interval_cycles)

    def buffer(self, payload: bytes, tag: MuTeslaTag, arrival_time: float) -> bool:
        """Accept a packet into the buffer if the security condition holds.

        The condition: at arrival, the sender cannot yet have disclosed the
        key of the packet's interval — otherwise an attacker who saw the
        disclosed key could have forged it.
        """
        if self.interval_at(arrival_time) >= tag.interval + self.disclosure_lag:
            self.rejected_unsafe += 1
            return False
        self._buffer.append(
            _Buffered(payload=payload, tag=tag, arrival_time=arrival_time)
        )
        return True

    # ------------------------------------------------------------------
    # Key disclosure
    # ------------------------------------------------------------------
    def accept_key(self, interval: int, key: bytes) -> bool:
        """Authenticate a disclosed key against the anchor; returns validity."""
        if interval <= self._highest_verified:
            return self._verified_keys.get(interval) == key
        # Hash the candidate down to the highest verified key.
        steps = interval - self._highest_verified
        candidate = key
        derived = {interval: key}
        for i in range(interval - 1, self._highest_verified - 1, -1):
            candidate = _chain_step(candidate)
            derived[i] = candidate
        if candidate != self._verified_keys[self._highest_verified]:
            return False
        self._verified_keys.update(derived)
        self._highest_verified = interval
        return True

    def release_verified(self) -> List[Tuple[bytes, MuTeslaTag]]:
        """Verify and pop every buffered packet whose key is now known."""
        ready: List[Tuple[bytes, MuTeslaTag]] = []
        remaining: List[_Buffered] = []
        for item in self._buffer:
            key = self._verified_keys.get(item.tag.interval)
            if key is None:
                remaining.append(item)
                continue
            expected = hmac.new(_mac_key(key), item.payload, _HASH).digest()[:8]
            if hmac.compare_digest(expected, item.tag.mac):
                ready.append((item.payload, item.tag))
            else:
                self.rejected_bad_mac += 1
        self._buffer = remaining
        return ready

    @property
    def pending(self) -> int:
        """Packets still waiting for their key."""
        return len(self._buffer)
