"""Network-wide key management: identities, detecting IDs, packet signing.

The :class:`KeyManager` is the deployment authority. It:

- issues key material for every node identity through a pluggable
  predistribution scheme (default: the paper's "unique pairwise key"
  assumption via :class:`FullPairwiseScheme`);
- allocates **detecting IDs** to beacon nodes (Section 2.1: extra non-beacon
  identities, with full key material, that a beacon node uses to probe its
  neighbours incognito);
- signs and verifies packets with the pairwise key of the claimed endpoints;
- manages the per-beacon base-station keys used to authenticate alerts.

Identity layout: detecting IDs are allocated from a reserved range above
``detecting_id_base`` so that they are recognizably *non-beacon* IDs (the
paper requires "this ID should be recognized as a non-beacon node ID").
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Set

from repro.crypto.keyring import KeyRing
from repro.crypto.mac import compute_tag, verify_tag
from repro.crypto.predistribution import (
    FullPairwiseScheme,
    KeyPredistributionScheme,
)
from repro.errors import AuthenticationError, ConfigurationError, KeyAgreementError
from repro.sim.messages import Packet

#: Detecting IDs are allocated upward from this base by default.
DEFAULT_DETECTING_ID_BASE = 1_000_000


class KeyManager:
    """Deployment-time key authority and runtime signing oracle.

    In a real network each node would hold only its own ring; centralizing
    the rings here is a simulation convenience that does not change any
    observable protocol behaviour (nodes still cannot authenticate packets
    for pairs they do not belong to, because signing is explicit about the
    claimed endpoints).
    """

    def __init__(
        self,
        scheme: Optional[KeyPredistributionScheme] = None,
        *,
        detecting_id_base: int = DEFAULT_DETECTING_ID_BASE,
        master_secret: bytes = b"repro-base-station",
    ) -> None:
        self.scheme = scheme if scheme is not None else FullPairwiseScheme()
        self._rings: Dict[int, KeyRing] = {}
        self._beacon_ids: Set[int] = set()
        self._detecting_owner: Dict[int, int] = {}
        self._detecting_ids: Dict[int, List[int]] = {}
        self._next_detecting_id = detecting_id_base
        self._detecting_id_base = detecting_id_base
        self._master = master_secret

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, node_id: int, *, is_beacon: bool = False) -> KeyRing:
        """Issue key material for a (primary) node identity."""
        if node_id >= self._detecting_id_base:
            raise ConfigurationError(
                f"node id {node_id} collides with the detecting-ID range "
                f"(>= {self._detecting_id_base})"
            )
        if node_id in self._rings:
            return self._rings[node_id]
        bs_key = self._base_station_key(node_id) if is_beacon else None
        ring = KeyRing(node_id, self.scheme, base_station_key=bs_key)
        self._rings[node_id] = ring
        if is_beacon:
            self._beacon_ids.add(node_id)
        return ring

    def allocate_detecting_ids(self, beacon_id: int, m: int) -> List[int]:
        """Give beacon ``beacon_id`` its ``m`` detecting identities.

        Each detecting ID gets full non-beacon key material, so peers cannot
        distinguish a probe from a genuine non-beacon request (Section 2.1).
        Idempotent: repeated calls return the same IDs (topping up to ``m``).
        """
        if beacon_id not in self._beacon_ids:
            raise ConfigurationError(
                f"{beacon_id} is not an enrolled beacon; cannot hold detecting IDs"
            )
        if m < 0:
            raise ConfigurationError(f"m must be >= 0, got {m}")
        ids = self._detecting_ids.setdefault(beacon_id, [])
        while len(ids) < m:
            did = self._next_detecting_id
            self._next_detecting_id += 1
            self._rings[did] = KeyRing(did, self.scheme)
            self._detecting_owner[did] = beacon_id
            ids.append(did)
        return list(ids[:m])

    # ------------------------------------------------------------------
    # Identity queries
    # ------------------------------------------------------------------
    def is_beacon_id(self, node_id: int) -> bool:
        """True for primary beacon identities (detecting IDs are *not*)."""
        return node_id in self._beacon_ids

    def is_detecting_id(self, node_id: int) -> bool:
        """True when ``node_id`` is an allocated detecting identity."""
        return node_id in self._detecting_owner

    def owner_of_detecting_id(self, detecting_id: int) -> int:
        """The beacon that owns ``detecting_id``.

        Simulation-/base-station-side knowledge only: in-field attackers
        cannot call this (that is the entire point of detecting IDs).
        """
        try:
            return self._detecting_owner[detecting_id]
        except KeyError:
            raise ConfigurationError(
                f"{detecting_id} is not an allocated detecting ID"
            ) from None

    def detecting_ids_of(self, beacon_id: int) -> List[int]:
        """All detecting IDs allocated to ``beacon_id``."""
        return list(self._detecting_ids.get(beacon_id, ()))

    def ring(self, node_id: int) -> KeyRing:
        """The key ring of an enrolled identity."""
        ring = self._rings.get(node_id)
        if ring is None:
            raise KeyAgreementError(f"identity {node_id} was never enrolled")
        return ring

    # ------------------------------------------------------------------
    # Pairwise keys and packet authentication
    # ------------------------------------------------------------------
    def pairwise_key(self, id_a: int, id_b: int) -> bytes:
        """The pairwise key between two enrolled identities."""
        return self.ring(id_a).pairwise_key_with(id_b)

    def sign(self, packet: Packet) -> Packet:
        """Return a copy of ``packet`` tagged under (src, dst)'s pairwise key."""
        key = self.pairwise_key(packet.src_id, packet.dst_id)
        return packet.with_auth(compute_tag(key, packet.wire_repr()))

    def verify(self, packet: Packet) -> bool:
        """Check the packet's tag against the claimed endpoints' key.

        Forged packets from external attackers (who lack the pairwise key)
        fail here — the paper's first line of defence.
        """
        try:
            key = self.pairwise_key(packet.src_id, packet.dst_id)
        except KeyAgreementError:
            return False
        return verify_tag(key, packet.wire_repr(), packet.auth_tag)

    def require_valid(self, packet: Packet) -> None:
        """Raise :class:`AuthenticationError` unless ``packet`` verifies."""
        if not self.verify(packet):
            raise AuthenticationError(
                f"packet {packet.kind()} from {packet.src_id} to "
                f"{packet.dst_id} failed authentication"
            )

    # ------------------------------------------------------------------
    # Base-station keys
    # ------------------------------------------------------------------
    def _base_station_key(self, beacon_id: int) -> bytes:
        digest = hashlib.sha256()
        digest.update(self._master)
        digest.update(beacon_id.to_bytes(8, "big"))
        return digest.digest()[:16]

    def base_station_key(self, beacon_id: int) -> bytes:
        """The unique key beacon ``beacon_id`` shares with the base station."""
        ring = self.ring(beacon_id)
        if ring.base_station_key is None:
            raise KeyAgreementError(
                f"identity {beacon_id} holds no base-station key (not a beacon)"
            )
        return ring.base_station_key

    def sign_alert_payload(self, beacon_id: int, payload: bytes) -> bytes:
        """MAC an alert payload with the beacon's base-station key."""
        return compute_tag(self.base_station_key(beacon_id), payload)

    def verify_alert_payload(self, beacon_id: int, payload: bytes, tag: bytes) -> bool:
        """Base-station-side verification of an alert's MAC."""
        try:
            key = self.base_station_key(beacon_id)
        except KeyAgreementError:
            return False
        return verify_tag(key, payload, tag)
