"""Key-management and packet-authentication substrate.

The paper assumes (Section 2): "two communicating nodes share a unique
pairwise key", established via random key predistribution, and every beacon
packet is authenticated with that key. This package implements the
predistribution schemes the paper cites — Eschenauer–Gligor's basic scheme,
Chan–Perrig–Song's q-composite variant, and the Blom-matrix construction
underlying Du et al. — plus the packet MAC layer and the detecting-ID key
material of Section 2.1.
"""

from repro.crypto.mac import compute_tag, verify_tag
from repro.crypto.predistribution import (
    BlomScheme,
    EschenauerGligorScheme,
    KeyPredistributionScheme,
    QCompositeScheme,
)
from repro.crypto.keyring import KeyRing
from repro.crypto.manager import KeyManager
from repro.crypto.mutesla import (
    KeyChain,
    MuTeslaBroadcaster,
    MuTeslaTag,
    MuTeslaVerifier,
)

__all__ = [
    "compute_tag",
    "verify_tag",
    "KeyPredistributionScheme",
    "EschenauerGligorScheme",
    "QCompositeScheme",
    "BlomScheme",
    "KeyRing",
    "KeyManager",
    "KeyChain",
    "MuTeslaBroadcaster",
    "MuTeslaTag",
    "MuTeslaVerifier",
]
