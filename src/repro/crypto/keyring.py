"""Per-node view of key material: the :class:`KeyRing`.

A node holds one ring per identity it owns — a beacon node with ``m``
detecting IDs owns ``m + 1`` rings. The ring caches established pairwise
keys so repeated exchanges with the same peer do not re-run agreement.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.predistribution import KeyPredistributionScheme
from repro.errors import KeyAgreementError


class KeyRing:
    """Key material owned by one identity.

    Args:
        owner_id: the identity this ring belongs to.
        scheme: the predistribution scheme that issued the material.
        base_station_key: the unique key shared with the base station
            (paper Section 3.1: "each beacon node shares a unique random
            key with the base station"); ``None`` for non-beacon identities.
    """

    def __init__(
        self,
        owner_id: int,
        scheme: KeyPredistributionScheme,
        *,
        base_station_key: Optional[bytes] = None,
    ) -> None:
        self.owner_id = owner_id
        self.scheme = scheme
        self.base_station_key = base_station_key
        self._cache: Dict[int, bytes] = {}
        scheme.issue(owner_id)

    def pairwise_key_with(self, peer_id: int) -> bytes:
        """Establish (or recall) the pairwise key with ``peer_id``.

        Raises:
            KeyAgreementError: if the scheme cannot link the two identities.
        """
        key = self._cache.get(peer_id)
        if key is None:
            key = self.scheme.pairwise_key(self.owner_id, peer_id)
            self._cache[peer_id] = key
        return key

    def can_communicate_with(self, peer_id: int) -> bool:
        """True when a pairwise key with ``peer_id`` exists/can be derived."""
        try:
            self.pairwise_key_with(peer_id)
        except KeyAgreementError:
            return False
        return True

    def established_peers(self) -> List[int]:
        """Peers with whom a key is already cached (sorted)."""
        return sorted(self._cache)

    def forget(self, peer_id: int) -> None:
        """Drop the cached key with ``peer_id`` (e.g. after its revocation)."""
        self._cache.pop(peer_id, None)
