"""Random key predistribution schemes.

Three classic constructions, each able to (a) issue per-node key material at
deployment time and (b) derive a pairwise key for two nodes that share the
right material:

- :class:`EschenauerGligorScheme` — the basic random-subset scheme
  (Eschenauer & Gligor, CCS 2002): each node stores a random ring of ``ring_size``
  keys drawn from a pool of ``pool_size``; two nodes that share at least one
  pool key derive a pairwise key from the shared keys.
- :class:`QCompositeScheme` — Chan, Perrig & Song (S&P 2003): like the basic
  scheme but requires at least ``q`` shared keys, hashing all of them.
- :class:`BlomScheme` — the λ-secure symmetric-matrix construction that
  underlies Du et al. (CCS 2003): *every* pair of nodes can compute a key,
  and the scheme resists coalitions of up to λ compromised nodes.

All schemes are deterministic given their RNG, so experiments reproduce.
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.errors import ConfigurationError, KeyAgreementError

#: Prime modulus for Blom arithmetic (Mersenne prime 2^31 - 1).
_BLOM_PRIME = 2_147_483_647


def _hash_key(*parts: bytes) -> bytes:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.digest()[:16]


class KeyPredistributionScheme(ABC):
    """Interface: issue node key material, then derive pairwise keys."""

    @abstractmethod
    def issue(self, node_id: int) -> object:
        """Create (and remember) the key material for ``node_id``."""

    @abstractmethod
    def pairwise_key(self, id_a: int, id_b: int) -> bytes:
        """Derive the pairwise key between two issued nodes.

        Raises:
            KeyAgreementError: when the two nodes cannot agree on a key
                (e.g. disjoint key rings in the basic scheme).
        """

    def can_communicate(self, id_a: int, id_b: int) -> bool:
        """True when :meth:`pairwise_key` would succeed."""
        try:
            self.pairwise_key(id_a, id_b)
        except KeyAgreementError:
            return False
        return True


@dataclass(frozen=True)
class _Ring:
    """A node's random subset of pool-key indices."""

    node_id: int
    key_ids: FrozenSet[int]


class EschenauerGligorScheme(KeyPredistributionScheme):
    """The basic random key predistribution scheme.

    Args:
        pool_size: number of keys in the global pool.
        ring_size: keys stored per node.
        rng: deterministic source for pool generation and ring draws.
    """

    #: Minimum number of shared pool keys needed for agreement.
    required_overlap = 1

    def __init__(self, pool_size: int, ring_size: int, rng: random.Random) -> None:
        if pool_size <= 0:
            raise ConfigurationError(f"pool_size must be > 0, got {pool_size}")
        if not 0 < ring_size <= pool_size:
            raise ConfigurationError(
                f"ring_size must be in (0, pool_size], got {ring_size}"
            )
        self.pool_size = pool_size
        self.ring_size = ring_size
        self._rng = rng
        self._pool: List[bytes] = [
            _hash_key(b"pool", rng.getrandbits(64).to_bytes(8, "big"))
            for _ in range(pool_size)
        ]
        self._rings: Dict[int, _Ring] = {}

    def issue(self, node_id: int) -> _Ring:
        """Draw a random key ring for ``node_id`` (idempotent per id)."""
        ring = self._rings.get(node_id)
        if ring is None:
            ids = frozenset(self._rng.sample(range(self.pool_size), self.ring_size))
            ring = _Ring(node_id=node_id, key_ids=ids)
            self._rings[node_id] = ring
        return ring

    def shared_key_ids(self, id_a: int, id_b: int) -> FrozenSet[int]:
        """Pool-key indices both nodes hold."""
        ring_a = self._require_ring(id_a)
        ring_b = self._require_ring(id_b)
        return ring_a.key_ids & ring_b.key_ids

    def pairwise_key(self, id_a: int, id_b: int) -> bytes:
        shared = self.shared_key_ids(id_a, id_b)
        if len(shared) < self.required_overlap:
            raise KeyAgreementError(
                f"nodes {id_a} and {id_b} share {len(shared)} pool keys; "
                f"need {self.required_overlap}"
            )
        lo, hi = sorted((id_a, id_b))
        material = [self._pool[i] for i in sorted(shared)]
        return _hash_key(
            b"pairwise",
            lo.to_bytes(8, "big"),
            hi.to_bytes(8, "big"),
            *material,
        )

    def _require_ring(self, node_id: int) -> _Ring:
        ring = self._rings.get(node_id)
        if ring is None:
            raise KeyAgreementError(f"node {node_id} was never issued a key ring")
        return ring

    # ------------------------------------------------------------------
    # Analytics (used by the key-distribution ablation bench)
    # ------------------------------------------------------------------
    def connectivity_probability(self) -> float:
        """P[two random rings share >= 1 key] (the EG closed form)."""
        p_disjoint = 1.0
        for i in range(self.ring_size):
            p_disjoint *= (self.pool_size - self.ring_size - i) / (self.pool_size - i)
        return 1.0 - p_disjoint


class QCompositeScheme(EschenauerGligorScheme):
    """q-composite predistribution: require >= q shared pool keys."""

    def __init__(
        self, pool_size: int, ring_size: int, q: int, rng: random.Random
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        super().__init__(pool_size, ring_size, rng)
        if q > ring_size:
            raise ConfigurationError(
                f"q ({q}) cannot exceed ring_size ({ring_size})"
            )
        self.required_overlap = q


class BlomScheme(KeyPredistributionScheme):
    """Blom's λ-secure pairwise key scheme over GF(2^31 - 1).

    Every issued pair derives the same key from both sides
    (``K_ij == K_ji``, by symmetry of D); an adversary must compromise more
    than ``lam`` nodes to learn anything about other pairs' keys.
    """

    def __init__(self, lam: int, rng: random.Random, *, prime: int = _BLOM_PRIME) -> None:
        if lam < 1:
            raise ConfigurationError(f"lambda must be >= 1, got {lam}")
        self.lam = lam
        self.prime = prime
        self._rng = rng
        size = lam + 1
        # Random symmetric (λ+1) x (λ+1) matrix D.
        d = [[0] * size for _ in range(size)]
        for i in range(size):
            for j in range(i, size):
                v = rng.randrange(prime)
                d[i][j] = v
                d[j][i] = v
        self._d = d
        self._rows: Dict[int, List[int]] = {}

    def _public_column(self, node_id: int) -> List[int]:
        """Vandermonde column g(id) = (1, s, s^2, ..., s^lam) mod p."""
        seed = (node_id % (self.prime - 1)) + 1  # non-zero element
        col = [1]
        for _ in range(self.lam):
            col.append((col[-1] * seed) % self.prime)
        return col

    def issue(self, node_id: int) -> List[int]:
        """Compute and store the node's private row A_i = (D * g(id))."""
        row = self._rows.get(node_id)
        if row is None:
            g = self._public_column(node_id)
            row = [
                sum(self._d[i][j] * g[j] for j in range(self.lam + 1)) % self.prime
                for i in range(self.lam + 1)
            ]
            self._rows[node_id] = row
        return row

    def pairwise_key(self, id_a: int, id_b: int) -> bytes:
        row = self._rows.get(id_a)
        if row is None:
            raise KeyAgreementError(f"node {id_a} was never issued Blom material")
        if id_b not in self._rows:
            raise KeyAgreementError(f"node {id_b} was never issued Blom material")
        g_b = self._public_column(id_b)
        scalar = sum(row[i] * g_b[i] for i in range(self.lam + 1)) % self.prime
        # Symmetrize explicitly: K(a,b) must equal K(b,a) even though the
        # raw Blom scalar already is symmetric; hashing sorted ids guards
        # against id-dependent context differences.
        lo, hi = sorted((id_a, id_b))
        return _hash_key(
            b"blom",
            scalar.to_bytes(8, "big"),
            lo.to_bytes(8, "big"),
            hi.to_bytes(8, "big"),
        )

    def key_scalar(self, id_a: int, id_b: int) -> int:
        """The raw Blom field element (exposed for symmetry tests)."""
        row = self._rows.get(id_a)
        if row is None:
            raise KeyAgreementError(f"node {id_a} was never issued Blom material")
        g_b = self._public_column(id_b)
        return sum(row[i] * g_b[i] for i in range(self.lam + 1)) % self.prime


class FullPairwiseScheme(KeyPredistributionScheme):
    """Oracle scheme: every issued pair shares a unique key.

    Matches the paper's working assumption ("we assume that two
    communicating nodes share a unique pairwise key") without the ring-size
    bookkeeping; used as the default by the experiment pipeline.
    """

    def __init__(self, master_secret: bytes = b"repro-master") -> None:
        self._master = master_secret
        self._issued: Dict[int, bool] = {}

    def issue(self, node_id: int) -> bool:
        self._issued[node_id] = True
        return True

    def pairwise_key(self, id_a: int, id_b: int) -> bytes:
        if id_a not in self._issued:
            raise KeyAgreementError(f"node {id_a} was never issued key material")
        if id_b not in self._issued:
            raise KeyAgreementError(f"node {id_b} was never issued key material")
        lo, hi = sorted((id_a, id_b))
        return _hash_key(
            self._master, lo.to_bytes(8, "big"), hi.to_bytes(8, "big")
        )
