"""Message authentication codes over simulated packets.

Real HMAC-SHA256, truncated to the 8-byte tags typical of sensor-network
protocols (TinySec and SPINS both use 4–8 byte MACs). Truncation length is
a parameter; the detection logic never depends on it.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import AuthenticationError

#: Tag length in bytes (TinySec-style truncated MAC).
TAG_LENGTH = 8


def compute_tag(key: bytes, message: bytes, *, length: int = TAG_LENGTH) -> bytes:
    """HMAC-SHA256 over ``message``, truncated to ``length`` bytes."""
    if not key:
        raise AuthenticationError("cannot MAC with an empty key")
    if length <= 0 or length > 32:
        raise AuthenticationError(f"tag length must be in [1, 32], got {length}")
    return hmac.new(key, message, hashlib.sha256).digest()[:length]


def verify_tag(
    key: bytes, message: bytes, tag: bytes, *, length: int = TAG_LENGTH
) -> bool:
    """Constant-time check that ``tag`` authenticates ``message`` under ``key``."""
    if tag is None:
        return False
    expected = compute_tag(key, message, length=length)
    return hmac.compare_digest(expected, tag)
