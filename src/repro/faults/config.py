"""Declarative fault-injection configuration.

:class:`FaultConfig` is the single value a scenario sets to turn faults
on: a frozen, fully scalar dataclass so it (a) nests inside the frozen
:class:`repro.core.pipeline.PipelineConfig`, (b) serializes through
``dataclasses.asdict`` into experiment manifests and the runner's
content-addressed cache keys, and (c) hashes stably. The all-zero default
is *disabled*: the pipeline builds no injector, draws no extra random
numbers, and produces bit-identical outputs to a run with ``faults=None``
(asserted in ``tests/core/test_pipeline_faults.py``).

Each field maps to one idealized assumption in the source paper; see
``docs/FAULTS.md`` for the full taxonomy and the worked examples.

Paper section: §2.2.2 (RTT margin), §3.2 (alert delivery assumption)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class FaultConfig:
    """Scenario-level fault switches; all-zero means "no faults".

    Attributes:
        packet_loss_rate: per-delivery Bernoulli drop probability applied
            to every scheduled packet copy (stresses the paper's §3.2
            "every alert ... can be successfully delivered" assumption).
        packet_duplication_rate: probability a delivered packet is also
            re-delivered once (stale-copy duplication, e.g. a late ARQ
            retransmission arriving after its original).
        duplicate_delay_cycles: extra delay carried by the duplicated copy.
        delivery_delay_rate: probability a delivery is delayed.
        delivery_delay_cycles: extra latency added to a delayed delivery.
        rtt_jitter_cycles: half-width of uniform noise added to every
            observed round-trip time — widens the true RTT distribution
            past the calibrated ``[x_min, x_max]`` window of §2.2.2.
        rtt_spike_rate: probability an RTT observation is an outlier.
        rtt_spike_cycles: magnitude of the outlier spike (added on top of
            jitter); spikes model GC-pause-like stalls and MAC retries
            that the paper's register-level measurement excludes.
        clock_drift_ppm: per-node relative clock-rate error bound in parts
            per million; each node draws a fixed drift in ``±ppm`` and its
            RTT observations scale by ``1 + drift`` (a requester's skewed
            oscillator mis-measures the window it timestamps).
        node_crash_rate: probability each node independently crashes
            during the run (crash/churn). A crashed node stops receiving
            and stops initiating protocol exchanges from its crash time.
        crash_horizon_cycles: crash times are drawn uniformly in
            ``[0, horizon]``; 0 means crashed nodes are down from the
            start (the worst case for detection coverage).
        recalibrate_under_faults: when True, the pipeline's Figure-4 RTT
            calibration itself observes the faulted distribution, so
            ``x_max`` absorbs the jitter (the "adaptive margin" regime);
            when False (default) calibration stays clean, reproducing a
            deployment whose margins were measured in the lab and then
            stressed in the field.
    """

    packet_loss_rate: float = 0.0
    packet_duplication_rate: float = 0.0
    duplicate_delay_cycles: float = 0.0
    delivery_delay_rate: float = 0.0
    delivery_delay_cycles: float = 0.0
    rtt_jitter_cycles: float = 0.0
    rtt_spike_rate: float = 0.0
    rtt_spike_cycles: float = 0.0
    clock_drift_ppm: float = 0.0
    node_crash_rate: float = 0.0
    crash_horizon_cycles: float = 0.0
    recalibrate_under_faults: bool = False

    def __post_init__(self) -> None:
        check_probability(self.packet_loss_rate, "packet_loss_rate")
        check_probability(self.packet_duplication_rate, "packet_duplication_rate")
        check_probability(self.delivery_delay_rate, "delivery_delay_rate")
        check_probability(self.rtt_spike_rate, "rtt_spike_rate")
        check_probability(self.node_crash_rate, "node_crash_rate")
        for name in (
            "duplicate_delay_cycles",
            "delivery_delay_cycles",
            "rtt_jitter_cycles",
            "rtt_spike_cycles",
            "clock_drift_ppm",
            "crash_horizon_cycles",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    @property
    def enabled(self) -> bool:
        """True when any fault is actually switched on.

        A disabled config is treated exactly like ``faults=None``: the
        pipeline builds no injector and consumes no fault RNG streams,
        which is what makes the off path bit-identical.
        """
        return any(
            getattr(self, f.name) > 0
            for f in dataclasses.fields(self)
            if f.name != "recalibrate_under_faults"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The config as a plain JSON-ready dict."""
        return dataclasses.asdict(self)


def fault_config_from_dict(data: Dict[str, Any]) -> FaultConfig:
    """Rebuild a :class:`FaultConfig`; unknown keys are rejected.

    Mirrors :func:`repro.experiments.config_io.config_from_dict` so stale
    or typo'd manifests fail loudly instead of silently running a
    different fault scenario.
    """
    known = {f.name for f in dataclasses.fields(FaultConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown fault config keys: {sorted(unknown)} (schema drift?)"
        )
    return FaultConfig(**data)
