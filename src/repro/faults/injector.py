"""The fault injector: composes fault models behind stable hook points.

:class:`FaultInjector` is what the simulation substrate actually talks
to. The network asks it about every scheduled delivery (drop? duplicate?
delay? is the receiver down?), the RTT measurement path routes observed
round-trip times through it, and the pipeline asks it whether a node may
initiate protocol exchanges. Each hook is a no-op returning the identity
answer when the corresponding model is absent, so a hook call on a
partially configured injector costs one attribute check.

Determinism/seeding rules (the contract ``docs/FAULTS.md`` documents):

- every stochastic model draws from its own named stream derived from
  the injector seed ("fault-loss", "fault-duplication", ...), so
  enabling one fault never shifts the draws of another;
- per-node faults (crash schedules, clock drifts) are derived from the
  seed *and the node id*, never from a shared sequential stream, so the
  answer for node ``k`` is independent of registration order;
- the injector seed is derived from the pipeline seed, so one
  ``PipelineConfig`` still fully determines a faulted run.

Paper section: §2.2.2, §3.2 (the assumptions the hooks perturb)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.faults.config import FaultConfig
from repro.faults.models import (
    ClockDriftFault,
    DelayFault,
    FaultModel,
    NodeCrashFault,
    PacketDuplicationFault,
    PacketLossFault,
    RttJitterFault,
)
from repro.sim.rng import derive_seed


class FaultInjector:
    """Runtime composition of the configured fault models.

    Build one per trial with :meth:`from_config`; share it between the
    :class:`~repro.sim.network.Network` and the pipeline so counters
    aggregate in one place. Constructing an injector directly from model
    instances is supported for unit tests and custom scenarios.
    """

    def __init__(
        self,
        *,
        loss: Optional[PacketLossFault] = None,
        duplication: Optional[PacketDuplicationFault] = None,
        delay: Optional[DelayFault] = None,
        rtt: Optional[RttJitterFault] = None,
        drift: Optional[ClockDriftFault] = None,
        crash: Optional[NodeCrashFault] = None,
    ) -> None:
        self.loss = loss
        self.duplication = duplication
        self.delay = delay
        self.rtt = rtt
        self.drift = drift
        self.crash = crash

    @classmethod
    def from_config(cls, config: FaultConfig, seed: int) -> "FaultInjector":
        """Instantiate exactly the models ``config`` switches on.

        Args:
            config: the scenario's fault switches.
            seed: injector master seed (the pipeline derives this from
                its own seed so a config + seed pair fully determines
                the faulted run).
        """

        def stream(name: str) -> random.Random:
            return random.Random(derive_seed(seed, f"fault-{name}"))

        loss = None
        if config.packet_loss_rate > 0:
            loss = PacketLossFault(config.packet_loss_rate, stream("loss"))
        duplication = None
        if config.packet_duplication_rate > 0:
            duplication = PacketDuplicationFault(
                config.packet_duplication_rate,
                config.duplicate_delay_cycles,
                stream("duplication"),
            )
        delay = None
        if config.delivery_delay_rate > 0:
            delay = DelayFault(
                config.delivery_delay_rate,
                config.delivery_delay_cycles,
                stream("delay"),
            )
        rtt = None
        if config.rtt_jitter_cycles > 0 or config.rtt_spike_rate > 0:
            rtt = RttJitterFault(
                config.rtt_jitter_cycles,
                config.rtt_spike_rate,
                config.rtt_spike_cycles,
                stream("rtt"),
            )
        drift = None
        if config.clock_drift_ppm > 0:
            drift = ClockDriftFault(
                config.clock_drift_ppm, derive_seed(seed, "fault-drift")
            )
        crash = None
        if config.node_crash_rate > 0:
            crash = NodeCrashFault(
                config.node_crash_rate,
                config.crash_horizon_cycles,
                derive_seed(seed, "fault-crash"),
            )
        return cls(
            loss=loss,
            duplication=duplication,
            delay=delay,
            rtt=rtt,
            drift=drift,
            crash=crash,
        )

    # ------------------------------------------------------------------
    # Delivery hooks (called by Network._schedule_delivery)
    # ------------------------------------------------------------------
    def drop_delivery(self) -> bool:
        """True when this scheduled packet copy should be lost."""
        return self.loss is not None and self.loss.should_drop()

    def duplicate_delay(self) -> Optional[float]:
        """Delay of a spurious duplicate copy, or None for no duplicate."""
        if self.duplication is None:
            return None
        return self.duplication.duplicate_delay()

    def delivery_delay(self) -> float:
        """Extra latency injected into one delivery (0 = on time)."""
        if self.delay is None:
            return 0.0
        return self.delay.extra_delay()

    # ------------------------------------------------------------------
    # Node-liveness hooks (network delivery + pipeline phase scheduling)
    # ------------------------------------------------------------------
    def is_crashed(self, node_id: int, now_cycles: float) -> bool:
        """True when the node is down at ``now_cycles``."""
        return self.crash is not None and self.crash.is_crashed(
            node_id, now_cycles
        )

    # ------------------------------------------------------------------
    # Measurement hooks (Network.measure_rtt / RTT calibration)
    # ------------------------------------------------------------------
    def perturb_rtt(self, rtt_cycles: float, *, observer_id: Optional[int] = None) -> float:
        """One faulted RTT observation.

        The observer's clock drift scales the interval first (it is the
        requester's oscillator doing the timestamping), then channel-level
        jitter/spikes are added.
        """
        observed = rtt_cycles
        if self.drift is not None and observer_id is not None:
            observed = self.drift.skew(observer_id, observed)
        if self.rtt is not None:
            observed = self.rtt.perturb(observed)
        return observed

    def perturbs_rtt(self) -> bool:
        """True when RTT observations are modified at all."""
        return self.rtt is not None or self.drift is not None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def models(self) -> List[FaultModel]:
        """The active models, in a stable order."""
        return [
            m
            for m in (
                self.loss,
                self.duplication,
                self.delay,
                self.rtt,
                self.drift,
                self.crash,
            )
            if m is not None
        ]

    def counters(self) -> Dict[str, int]:
        """Aggregated fault-event counters (JSON-ready, profile-mergeable)."""
        merged: Dict[str, int] = {}
        for model in self.models():
            merged.update(model.counters())
        return merged

    def record_metrics(self, registry) -> None:
        """Flush fault counters into a metrics registry (end of trial).

        Each per-model counter (already ``fault_``-prefixed) becomes one
        ``fault_events_total{kind=...}`` series, so sweeps can compare
        injected-fault volume across configurations.
        """
        for name, value in self.counters().items():
            kind = name[len("fault_"):] if name.startswith("fault_") else name
            registry.counter("fault_events_total", kind=kind).inc(value)
