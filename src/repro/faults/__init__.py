"""Deterministic, seeded fault injection for the simulated network.

The paper's scheme is evaluated under idealized conditions: §3.2 assumes
every alert reaches the base station ("using some standard fault tolerant
techniques"), and the §2.2.2 replay filter assumes the tight Figure-4 RTT
window holds at run time. This package makes those assumptions *levers*
instead of axioms:

- :class:`FaultConfig` — the declarative, serializable scenario knob
  (nested in ``PipelineConfig.faults``; all-zero default = off =
  bit-identical to an un-faulted run);
- :mod:`repro.faults.models` — one composable model per fault: packet
  loss, duplication, delayed delivery, RTT jitter/outlier spikes, clock
  drift, node crash/churn;
- :class:`FaultInjector` — the runtime composition the network, RTT
  path, and pipeline hook into.

See ``docs/FAULTS.md`` for the taxonomy, the mapping from each fault to
a paper assumption, and the determinism/seeding rules.

Paper section: §2.2.2, §3.2 (the stressed assumptions)
"""

from repro.faults.config import FaultConfig, fault_config_from_dict
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    ClockDriftFault,
    DelayFault,
    FaultModel,
    NodeCrashFault,
    PacketDuplicationFault,
    PacketLossFault,
    RttJitterFault,
)

__all__ = [
    "FaultConfig",
    "fault_config_from_dict",
    "FaultInjector",
    "FaultModel",
    "PacketLossFault",
    "PacketDuplicationFault",
    "DelayFault",
    "RttJitterFault",
    "ClockDriftFault",
    "NodeCrashFault",
]
