"""Composable fault models: one class per fault in the taxonomy.

Every model is a small, independently testable object with (a) its own
named random stream — so enabling one fault never perturbs the draws of
another (the same variance-control discipline as
:mod:`repro.sim.rng`) — and (b) its own counters, which the injector
aggregates into the pipeline's profile snapshot. Models are composed by
:class:`repro.faults.injector.FaultInjector`; nothing in this module
touches the network directly.

The taxonomy maps to the paper's idealized assumptions:

- :class:`PacketLossFault`, :class:`PacketDuplicationFault`,
  :class:`DelayFault` stress the §3.2 delivery assumption ("every alert
  ... can be successfully delivered to the base station");
- :class:`RttJitterFault` and :class:`ClockDriftFault` stress the §2.2.2
  assumption that the tight Figure-4 RTT window holds at run time;
- :class:`NodeCrashFault` removes the implicit assumption that every
  deployed node stays up for the whole experiment.

Paper section: §2.2.2 (RTT window), §3.2 (alert delivery)
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.sim.rng import derive_seed


class FaultModel:
    """Base class: a named fault with integer counters.

    Subclasses implement whichever hook applies to them; the injector
    only calls hooks on the models registered for that hook, so a model
    never pays for faults it does not implement.
    """

    #: Stable name used for RNG stream derivation and counter reporting.
    name: str = "fault"

    def __init__(self) -> None:
        self.events = 0

    def counters(self) -> Dict[str, int]:
        """This model's event counts, keyed for the profile snapshot."""
        return {f"fault_{self.name}": self.events}


class PacketLossFault(FaultModel):
    """Independent per-delivery packet drop (§3.2 stress).

    Unlike :class:`repro.sim.reliable.LossModel` — which models the lossy
    *link* an ARQ channel retries over — this fault drops scheduled
    deliveries inside the network itself, so every protocol message
    (probes, beacon replies, revocation notices) is exposed.
    """

    name = "packet_loss"

    def __init__(self, rate: float, rng: random.Random) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng

    def should_drop(self) -> bool:
        """Draw one delivery; True means the packet copy is lost."""
        if self.rng.random() < self.rate:
            self.events += 1
            return True
        return False


class PacketDuplicationFault(FaultModel):
    """Spurious re-delivery of a packet copy (stale-duplicate fault)."""

    name = "packet_duplication"

    def __init__(
        self, rate: float, delay_cycles: float, rng: random.Random
    ) -> None:
        super().__init__()
        self.rate = rate
        self.delay_cycles = delay_cycles
        self.rng = rng

    def duplicate_delay(self) -> Optional[float]:
        """Extra delay of a duplicated copy, or None for no duplication."""
        if self.rng.random() < self.rate:
            self.events += 1
            return self.delay_cycles
        return None


class DelayFault(FaultModel):
    """Randomly delayed delivery (queueing / interference stall)."""

    name = "delivery_delay"

    def __init__(
        self, rate: float, delay_cycles: float, rng: random.Random
    ) -> None:
        super().__init__()
        self.rate = rate
        self.delay_cycles = delay_cycles
        self.rng = rng

    def extra_delay(self) -> float:
        """Additional delivery latency for one packet copy (0 = on time)."""
        if self.rate > 0 and self.rng.random() < self.rate:
            self.events += 1
            return self.delay_cycles
        return 0.0


class RttJitterFault(FaultModel):
    """Jitter plus outlier spikes on observed round-trip times (§2.2.2).

    The paper's replay filter rests on the honest RTT support being a
    ~4.5-bit-time window; this fault widens the *observed* distribution
    with uniform jitter and occasional large spikes, producing exactly
    the false-positive regime the ``RTT > x_max`` test is vulnerable to.
    """

    name = "rtt_jitter"

    def __init__(
        self,
        jitter_cycles: float,
        spike_rate: float,
        spike_cycles: float,
        rng: random.Random,
    ) -> None:
        super().__init__()
        self.jitter_cycles = jitter_cycles
        self.spike_rate = spike_rate
        self.spike_cycles = spike_cycles
        self.rng = rng
        self.spikes = 0

    def perturb(self, rtt_cycles: float) -> float:
        """One faulted RTT observation (never below zero)."""
        self.events += 1
        perturbed = rtt_cycles
        if self.jitter_cycles > 0:
            perturbed += self.rng.uniform(-self.jitter_cycles, self.jitter_cycles)
        if self.spike_rate > 0 and self.rng.random() < self.spike_rate:
            self.spikes += 1
            perturbed += self.spike_cycles
        return max(0.0, perturbed)

    def counters(self) -> Dict[str, int]:
        """Observation and spike counts."""
        return {
            f"fault_{self.name}": self.events,
            "fault_rtt_spikes": self.spikes,
        }


class ClockDriftFault(FaultModel):
    """Fixed per-node oscillator drift scaling local time measurements.

    Each node's drift is derived from the fault seed and its node id, so
    it is stable across the run and independent of the order nodes first
    measure anything. A requester with drift ``delta`` observes every
    interval scaled by ``1 + delta``; at hundreds of ppm this moves an
    honest RTT by a few cycles, and at extreme (faulty-oscillator)
    magnitudes it pushes honest exchanges past ``x_max``.
    """

    name = "clock_drift"

    def __init__(self, drift_ppm: float, seed: int) -> None:
        super().__init__()
        self.drift_ppm = drift_ppm
        self.seed = seed
        self._drifts: Dict[int, float] = {}

    def drift_of(self, node_id: int) -> float:
        """The node's relative rate error (dimensionless, in ±ppm/1e6)."""
        drift = self._drifts.get(node_id)
        if drift is None:
            rng = random.Random(derive_seed(self.seed, f"drift:{node_id}"))
            drift = rng.uniform(-self.drift_ppm, self.drift_ppm) / 1e6
            self._drifts[node_id] = drift
        return drift

    def skew(self, node_id: int, interval_cycles: float) -> float:
        """An interval as measured by the node's drifting clock."""
        self.events += 1
        return interval_cycles * (1.0 + self.drift_of(node_id))


class NodeCrashFault(FaultModel):
    """Per-node crash/churn schedule.

    Each node independently crashes with probability ``rate``; its crash
    time is drawn uniformly in ``[0, horizon]`` (horizon 0 = down from
    the start). The schedule is derived per node id from the fault seed —
    *not* drawn from a shared stream — so whether node 7 crashes never
    depends on how many other nodes were registered first.
    """

    name = "node_crash"

    def __init__(self, rate: float, horizon_cycles: float, seed: int) -> None:
        super().__init__()
        self.rate = rate
        self.horizon_cycles = horizon_cycles
        self.seed = seed
        self._crash_times: Dict[int, Optional[float]] = {}

    def crash_time(self, node_id: int) -> Optional[float]:
        """The node's crash time in cycles, or None if it never crashes."""
        if node_id in self._crash_times:
            return self._crash_times[node_id]
        rng = random.Random(derive_seed(self.seed, f"crash:{node_id}"))
        time: Optional[float] = None
        if rng.random() < self.rate:
            time = (
                rng.uniform(0.0, self.horizon_cycles)
                if self.horizon_cycles > 0
                else 0.0
            )
            self.events += 1
        self._crash_times[node_id] = time
        return time

    def is_crashed(self, node_id: int, now_cycles: float) -> bool:
        """True when the node is down at simulation time ``now_cycles``."""
        crash = self.crash_time(node_id)
        return crash is not None and now_cycles >= crash

    def crashed_ids(self) -> Dict[int, float]:
        """Known crashed nodes and their crash times (for traces/tests)."""
        return {
            node_id: time
            for node_id, time in self._crash_times.items()
            if time is not None
        }
