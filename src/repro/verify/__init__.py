"""Paper-fidelity conformance harness (differential oracles + gates).

``repro.verify`` answers one question the unit suites cannot: *does the
production implementation still compute what the paper specifies?* It
holds three independent instruments:

- :mod:`repro.verify.oracles` — deliberately-naive reference
  reimplementations of the §2.1 signal check, the §2.2 filter cascade,
  the §2.2.2 RTT window extraction, and the §3.1 base-station counter
  machine, written straight from the paper text with none of the
  production code's structure;
- :mod:`repro.verify.differential` — seeded scenario generators that
  drive production and oracle side by side over thousands of randomized
  cases (boundary-heavy), plus two whole-pipeline bit-identity checks:
  the semantics-neutral axes (``use_spatial_index``, ``observe``,
  all-zero ``faults``) and the scalar-vs-vectorized batch core
  (``use_vectorized_core``, across wormhole/fault/loss envelopes);
- :mod:`repro.verify.invariants` — executable paper invariants replayed
  over any :class:`repro.sim.trace.TraceRecorder` stream post-hoc;
- :mod:`repro.verify.statgate` — a statistical gate re-running the
  Figure 12-14 sweeps at reduced trial counts against committed golden
  JSON (trend directions + tolerance bands).

Run everything via ``python -m repro.verify`` (or the ``repro-verify``
console script); CI runs it as a dedicated conformance job. See
``docs/VERIFY.md``.

Paper section: §2.1, §2.2, §3.1, §4 (conformance of the reproduction)
"""

from repro.verify.differential import (
    DifferentialReport,
    Divergence,
    differential_base_station,
    differential_cascade,
    differential_pipeline_axes,
    differential_rtt_window,
    differential_signal_check,
    differential_vectorized_core,
    run_differential_suite,
)
from repro.verify.invariants import (
    InvariantViolation,
    check_alert_quota,
    check_consistent_never_indicts,
    check_honest_rtt_window,
    check_revocation_monotone,
    run_invariants,
)
from repro.verify.oracles import (
    OracleBaseStation,
    oracle_cascade,
    oracle_rtt_window,
    oracle_signal_check,
)
from repro.verify.statgate import (
    GOLDEN_PATH,
    StatGateViolation,
    evaluate_statgate,
    load_golden,
    run_statgate,
    write_golden,
)

__all__ = [
    "DifferentialReport",
    "Divergence",
    "GOLDEN_PATH",
    "InvariantViolation",
    "OracleBaseStation",
    "StatGateViolation",
    "check_alert_quota",
    "check_consistent_never_indicts",
    "check_honest_rtt_window",
    "check_revocation_monotone",
    "differential_base_station",
    "differential_cascade",
    "differential_pipeline_axes",
    "differential_rtt_window",
    "differential_signal_check",
    "differential_vectorized_core",
    "evaluate_statgate",
    "load_golden",
    "oracle_cascade",
    "oracle_rtt_window",
    "oracle_signal_check",
    "run_differential_suite",
    "run_invariants",
    "run_statgate",
    "write_golden",
]
