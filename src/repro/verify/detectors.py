"""Conformance checks for the pluggable detector arena.

The differential/invariant stages pin the **paper** detector to the
paper's behaviour; this stage pins the *rival* detectors from
:mod:`repro.detectors` to the two properties every arena entrant must
satisfy regardless of its decision rule:

1. **Clean anchors are never indicted at zero noise.** In a deployment
   with no malicious beacons, no wormhole, and zero ranging error, every
   residual is exactly 0 and every RTT is an honest in-range sample —
   a detector that indicts anything in that world is broken, not
   strict. Asserted per detector on a seeded pipeline: no alerts
   reach the base station, no benign beacon is revoked, and the
   undefined ``detection_rate`` stays ``None`` (never coerced to 0).

2. **Determinism and worker-count insensitivity.** The same seeded
   adversarial scenario must produce byte-identical metric dicts when
   run twice serially and when sharded across worker processes — a
   detector that hides order-dependent or unseeded state would diverge
   here.

Paper section: §4 (conformance gate extended to the detector arena)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.detectors import available_detectors

#: Reduced deployment the checks run on (seconds, not minutes).
_CLEAN_KWARGS = dict(
    n_total=140,
    n_beacons=20,
    n_malicious=0,
    field_width_ft=500.0,
    field_height_ft=500.0,
    max_ranging_error_ft=0.0,
    rtt_calibration_samples=200,
    wormhole_endpoints=None,
    use_vectorized_core=False,
)

_ADVERSARIAL_KWARGS = dict(
    n_total=140,
    n_beacons=20,
    n_malicious=4,
    field_width_ft=500.0,
    field_height_ft=500.0,
    p_prime=0.5,
    rtt_calibration_samples=200,
    use_vectorized_core=False,
)


def check_clean_anchor(
    detector: str, seed: int
) -> List[str]:
    """Property 1: a noise-free clean deployment produces zero alerts."""
    from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline

    violations: List[str] = []
    pipeline = SecureLocalizationPipeline(
        PipelineConfig(detector=detector, seed=seed, **_CLEAN_KWARGS)
    )
    result = pipeline.run()
    alerts = len(pipeline.base_station.log)
    indicted = sorted(
        target
        for beacon in pipeline.benign_beacons
        for target in beacon.alerted_targets
    )
    if indicted or alerts:
        violations.append(
            f"detector {detector!r}: indicted clean anchors {indicted} "
            f"({alerts} alert(s)) in a zero-noise attack-free deployment"
        )
    if result.revoked_benign:
        violations.append(
            f"detector {detector!r}: revoked {result.revoked_benign} "
            "benign beacon(s) in a zero-noise attack-free deployment"
        )
    if result.false_positive_rate != 0.0:
        violations.append(
            f"detector {detector!r}: false_positive_rate "
            f"{result.false_positive_rate!r} != 0.0 with benign beacons present"
        )
    if result.detection_rate is not None:
        violations.append(
            f"detector {detector!r}: detection_rate "
            f"{result.detection_rate!r} with no malicious beacons — an "
            "undefined rate must stay None, never 0"
        )
    return violations


def check_worker_invariance(
    detector: str, seed: int, worker_counts=(2,)
) -> List[str]:
    """Property 2: serial re-runs and sharded runs are byte-identical."""
    from repro.core.pipeline import PipelineConfig
    from repro.experiments.runner import ExperimentRunner

    violations: List[str] = []
    configs = [
        PipelineConfig(detector=detector, seed=seed + i, **_ADVERSARIAL_KWARGS)
        for i in range(4)
    ]
    keys = [f"verify:{detector}:seed{c.seed}" for c in configs]

    def _run(workers: int) -> List[Optional[Dict[str, float]]]:
        with ExperimentRunner(n_workers=workers) as runner:
            return runner.run_pipeline_configs(configs, keys=keys)

    serial = _run(1)
    if serial != _run(1):
        violations.append(
            f"detector {detector!r}: two serial runs of the same seeded "
            "scenario diverged (unseeded or global state)"
        )
    for workers in worker_counts:
        if serial != _run(workers):
            violations.append(
                f"detector {detector!r}: {workers}-worker run diverged "
                "from serial (order-sensitive state)"
            )
    return violations


def run_detector_checks(seed: int = 0) -> Dict[str, List[str]]:
    """Run both properties for every registered detector.

    Returns ``{detector_name: [violation, ...]}`` with empty lists for
    conforming detectors, so the CLI can print a per-detector verdict.
    """
    report: Dict[str, List[str]] = {}
    for name in available_detectors():
        violations = check_clean_anchor(name, seed + 211)
        violations += check_worker_invariance(name, seed + 301)
        report[name] = violations
    return report
