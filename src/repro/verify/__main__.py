"""``python -m repro.verify`` — run the conformance gate.

Paper section: §4 (conformance gate entry point)
"""

import sys

from repro.verify.cli import main

if __name__ == "__main__":
    sys.exit(main())
