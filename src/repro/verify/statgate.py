"""Statistical gate: reduced Figure 12-14 sweeps vs committed golden data.

The gate re-runs the paper's simulation figures at drastically reduced
grids (two ``P'`` points for Figures 12/13, one operating point for
Figure 14 — five full-size pipeline runs in total), then asserts two
independent things:

1. **Trend directions** from the paper, with no reference data at all:
   detection rate rises with ``P'`` and is upper-bounded by the
   closed-form theory; only a few non-beacon nodes are ever affected;
   the ROC operating point detects better than it false-positives.
2. **Tolerance bands** against ``golden_figures.json``, committed next
   to this module. All runs are seed-deterministic, so the bands only
   need to absorb cross-platform float drift and deliberate, reviewed
   semantic changes — when production behavior legitimately moves,
   regenerate with ``repro-verify --update-golden`` and commit the diff.

Paper section: §4 (Figures 12-14, simulation validation)
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner

#: The committed golden data (regenerate via ``repro-verify --update-golden``).
GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_figures.json")

#: Reduced P' grid shared by the Figure 12/13 gate runs.
P_GRID: Tuple[float, float] = (0.1, 0.4)

#: Band half-widths: rates (dimensionless) and N' (node counts).
RATE_TOLERANCE = 0.15
AFFECTED_TOLERANCE = 3.0

#: The paper's qualitative bound: "only a few non-beacon nodes" accept a
#: malicious signal before revocation cuts the beacon off.
AFFECTED_CEILING = 15.0


@dataclass(frozen=True)
class StatGateViolation:
    """One failed trend assertion or out-of-band comparison."""

    figure: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.figure}] {self.detail}"


def collect_observations(
    *, trials: int = 1, runner: Optional[ExperimentRunner] = None
) -> Dict[str, dict]:
    """Run the reduced Figure 12-14 sweeps and flatten them to JSON form.

    Keys mirror the figure series; ``P'`` points are string-keyed (JSON
    objects cannot have float keys) with fixed one-decimal formatting.
    """
    fig12 = figures.figure12_sim_detection_rate(
        p_grid=P_GRID, trials=trials, runner=runner
    )
    fig13 = figures.figure13_sim_affected(
        p_grid=P_GRID, trials=trials, runner=runner
    )
    fig14 = figures.figure14_roc(
        n_as=(5,), tau_reports=(2,), tau_alerts=(2,), trials=trials,
        runner=runner,
    )
    (roc_series,) = fig14.series.values()
    return {
        "figure12": {
            "simulation": {_key(p): fig12.series["simulation"].y_at(p) for p in P_GRID},
            "theory": {_key(p): fig12.series["theory"].y_at(p) for p in P_GRID},
        },
        "figure13": {
            "simulation": {_key(p): fig13.series["simulation"].y_at(p) for p in P_GRID},
        },
        "figure14": {
            "false_positive": roc_series.x[0],
            "detection": roc_series.y[0],
        },
    }


def _key(p: float) -> str:
    return f"{p:.1f}"


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def evaluate_statgate(
    observed: Dict[str, dict], golden: Optional[Dict[str, dict]]
) -> List[StatGateViolation]:
    """Check trends (always) and tolerance bands (when golden exists)."""
    violations: List[StatGateViolation] = []
    violations.extend(_check_trends(observed))
    if golden is not None:
        violations.extend(_check_bands(observed, golden))
    return violations


def _check_trends(observed: Dict[str, dict]) -> List[StatGateViolation]:
    violations: List[StatGateViolation] = []
    low, high = _key(P_GRID[0]), _key(P_GRID[1])
    sim12 = observed["figure12"]["simulation"]
    theory12 = observed["figure12"]["theory"]
    if not sim12[low] < sim12[high]:
        violations.append(
            StatGateViolation(
                "figure12",
                "detection rate must rise with P': "
                f"sim({low})={sim12[low]:.3f} !< sim({high})={sim12[high]:.3f}",
            )
        )
    for p in (low, high):
        # The closed-form theory assumes every unmasked malicious signal
        # reaches a detecting node; the §2.2.1 range check discards some,
        # so theory upper-bounds simulation (small slack for seed noise).
        if sim12[p] > theory12[p] + 0.05:
            violations.append(
                StatGateViolation(
                    "figure12",
                    f"simulation exceeds the theoretical bound at P'={p}: "
                    f"{sim12[p]:.3f} > {theory12[p]:.3f} + 0.05",
                )
            )
    for p, value in observed["figure13"]["simulation"].items():
        if value > AFFECTED_CEILING:
            violations.append(
                StatGateViolation(
                    "figure13",
                    f"N'={value:.2f} at P'={p} exceeds the paper's "
                    f"'only a few nodes' ceiling ({AFFECTED_CEILING})",
                )
            )
    roc = observed["figure14"]
    if not 0.0 <= roc["false_positive"] <= 0.5:
        violations.append(
            StatGateViolation(
                "figure14",
                f"false positive rate {roc['false_positive']:.3f} outside [0, 0.5]",
            )
        )
    if roc["detection"] < roc["false_positive"]:
        violations.append(
            StatGateViolation(
                "figure14",
                "operating point detects worse than it false-positives: "
                f"det={roc['detection']:.3f} < fp={roc['false_positive']:.3f}",
            )
        )
    return violations


def _check_bands(
    observed: Dict[str, dict], golden: Dict[str, dict]
) -> List[StatGateViolation]:
    violations: List[StatGateViolation] = []

    def band(figure: str, label: str, got: float, want: float, tol: float) -> None:
        if abs(got - want) > tol:
            violations.append(
                StatGateViolation(
                    figure,
                    f"{label}: observed {got:.4f} vs golden {want:.4f} "
                    f"(tolerance {tol})",
                )
            )

    for series in ("simulation", "theory"):
        for p, want in golden["figure12"][series].items():
            band(
                "figure12",
                f"{series} @ P'={p}",
                observed["figure12"][series][p],
                want,
                RATE_TOLERANCE,
            )
    for p, want in golden["figure13"]["simulation"].items():
        band(
            "figure13",
            f"N' @ P'={p}",
            observed["figure13"]["simulation"][p],
            want,
            AFFECTED_TOLERANCE,
        )
    band(
        "figure14",
        "false positive rate",
        observed["figure14"]["false_positive"],
        golden["figure14"]["false_positive"],
        RATE_TOLERANCE,
    )
    band(
        "figure14",
        "detection rate",
        observed["figure14"]["detection"],
        golden["figure14"]["detection"],
        RATE_TOLERANCE,
    )
    return violations


# ----------------------------------------------------------------------
# Golden file I/O
# ----------------------------------------------------------------------
def load_golden(path: Optional[pathlib.Path] = None) -> Optional[Dict[str, dict]]:
    """The committed golden data, or None when the file does not exist."""
    golden_path = path if path is not None else GOLDEN_PATH
    if not golden_path.exists():
        return None
    return json.loads(golden_path.read_text())


def write_golden(
    observed: Dict[str, dict], path: Optional[pathlib.Path] = None
) -> pathlib.Path:
    """Commit ``observed`` as the new golden data; returns the path."""
    golden_path = path if path is not None else GOLDEN_PATH
    golden_path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
    return golden_path


def run_statgate(
    *,
    trials: int = 1,
    runner: Optional[ExperimentRunner] = None,
    golden_path: Optional[pathlib.Path] = None,
    update_golden: bool = False,
) -> Tuple[Dict[str, dict], List[StatGateViolation]]:
    """Run the gate end to end; returns ``(observations, violations)``.

    With ``update_golden=True`` the observations are written as the new
    golden file after the trend checks pass (never commit data that
    breaks the paper's own trends), and band checks are skipped.
    """
    observed = collect_observations(trials=trials, runner=runner)
    if update_golden:
        violations = _check_trends(observed)
        if not violations:
            write_golden(observed, golden_path)
        return observed, violations
    golden = load_golden(golden_path)
    return observed, evaluate_statgate(observed, golden)
