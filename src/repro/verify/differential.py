"""Differential testing: production vs oracle over seeded scenarios.

Every generator below derives an independent :class:`random.Random` per
scenario from ``(seed, component, index)`` via
:func:`repro.sim.rng.derive_seed`, drives the production implementation
and the matching :mod:`repro.verify.oracles` reference over the same
inputs, and records a :class:`Divergence` for any disagreement. Scenario
draws are boundary-heavy: thresholds are hit exactly, one ulp past, and
far away, because the paper's rules are all strict inequalities.

:func:`differential_pipeline_axes` is the odd one out: it has no oracle.
It asserts the documented *semantics-neutrality* of three pipeline knobs
— ``use_spatial_index``, ``observe``, and an all-zero ``faults`` config
— by running the same seeded deployment with each knob toggled and
requiring bit-identical metrics.

Paper section: §2.1, §2.2, §3.1, §4 (differential conformance)
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, RttCalibration, calibration_from_samples
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.errors import CalibrationError
from repro.sim.messages import BeaconPacket
from repro.sim.radio import Reception
from repro.sim.rng import derive_seed
from repro.sim.trace import TraceRecorder
from repro.utils.geometry import Point
from repro.verify.oracles import (
    OracleBaseStation,
    oracle_cascade,
    oracle_rtt_window,
    oracle_signal_check,
)
from repro.wormhole.detector import WormholeDetector


@dataclass(frozen=True)
class Divergence:
    """One production/oracle disagreement (or axis non-identity)."""

    component: str
    scenario: int
    detail: str


@dataclass
class DifferentialReport:
    """Outcome of one component's differential run."""

    component: str
    scenarios: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every scenario agreed."""
        return not self.divergences

    def summary(self) -> str:
        """One status line for CLI output."""
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return f"{self.component}: {self.scenarios} scenarios, {status}"


def _rng(seed: int, component: str, index: int) -> random.Random:
    return random.Random(derive_seed(seed, f"verify:{component}:{index}"))


# ----------------------------------------------------------------------
# §2.1 — distance-consistency check
# ----------------------------------------------------------------------
def differential_signal_check(
    scenarios: int = 1000, seed: int = 0
) -> DifferentialReport:
    """Production §2.1 check vs :func:`oracle_signal_check`."""
    report = DifferentialReport("signal_check", scenarios)
    for i in range(scenarios):
        rng = _rng(seed, "signal", i)
        own = Point(rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0))
        declared = Point(
            own.x + rng.uniform(-300.0, 300.0), own.y + rng.uniform(-300.0, 300.0)
        )
        max_error = rng.choice([1e-6, 5.0, 10.0, rng.uniform(0.1, 50.0)])
        calculated = math.hypot(own.x - declared.x, own.y - declared.y)
        # Boundary-heavy measured distances: at the threshold, one ulp
        # past it, and uniformly around it.
        delta = rng.choice(
            [
                0.0,
                max_error,
                -max_error,
                math.nextafter(max_error, math.inf),
                math.nextafter(max_error, -math.inf),
                rng.uniform(-3.0 * max_error, 3.0 * max_error),
            ]
        )
        measured = max(0.0, calculated + delta)
        detector = MaliciousSignalDetector(max_error_ft=max_error)
        check = detector.check(own, declared, measured)
        expected = oracle_signal_check(
            own.x, own.y, declared.x, declared.y, measured, max_error
        )
        if check.is_malicious != expected:
            report.divergences.append(
                Divergence(
                    "signal_check",
                    i,
                    f"production={check.is_malicious} oracle={expected} "
                    f"(calculated={calculated!r}, measured={measured!r}, "
                    f"max_error={max_error!r})",
                )
            )
    return report


# ----------------------------------------------------------------------
# §2.2 — replay-filter cascade
# ----------------------------------------------------------------------
class _ScriptedWormholeDetector(WormholeDetector):
    """A detector whose verdict is fixed by the scenario, not by chance."""

    def __init__(self, verdict: bool) -> None:
        self.verdict = verdict

    def detect(self, reception: Reception, receiver_position: Point) -> bool:
        """The scripted verdict, regardless of the reception."""
        return self.verdict


def differential_cascade(
    scenarios: int = 1000, seed: int = 0
) -> DifferentialReport:
    """Production §2.2 cascade vs :func:`oracle_cascade`.

    The wormhole detector's coin flip is scripted per scenario so both
    sides see the same verdict; the declared-location distance and the
    observed RTT are drawn boundary-heavy around the radio range and the
    calibrated ``x_max``.
    """
    report = DifferentialReport("cascade", scenarios)
    comm_range = 150.0
    x_min, x_max = 15_480.0, 17_208.0
    calibration = RttCalibration(x_min=x_min, x_max=x_max, samples=1000)
    for i in range(scenarios):
        rng = _rng(seed, "cascade", i)
        knows_location = rng.random() < 0.5
        detector_flags = rng.random() < 0.5
        # Declared-location distance around the range boundary.
        dist = rng.choice(
            [
                rng.uniform(0.0, comm_range),
                comm_range,
                math.nextafter(comm_range, math.inf),
                rng.uniform(comm_range, 3.0 * comm_range),
            ]
        )
        angle = rng.uniform(0.0, 2.0 * math.pi)
        receiver = Point(rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0))
        declared = Point(
            receiver.x + dist * math.cos(angle), receiver.y + dist * math.sin(angle)
        )
        rtt = rng.choice(
            [
                rng.uniform(x_min, x_max),
                x_max,
                math.nextafter(x_max, math.inf),
                x_max + rng.uniform(1.0, 200_000.0),
            ]
        )
        cascade = ReplayFilterCascade(
            wormhole_detector=_ScriptedWormholeDetector(detector_flags),
            local_replay_detector=LocalReplayDetector(calibration),
            comm_range_ft=comm_range,
        )
        packet = BeaconPacket(
            src_id=1, dst_id=2, claimed_location=(declared.x, declared.y)
        )
        # The cascade only reads the packet's claimed location; the
        # ground-truth transmission metadata is irrelevant here.
        reception = Reception(
            packet=packet,
            arrival_time=0.0,
            measured_distance_ft=dist,
            transmission=None,  # type: ignore[arg-type]
        )
        decision = cascade.evaluate(
            reception, receiver, rtt, receiver_knows_location=knows_location
        )
        expected = oracle_cascade(
            receiver_knows_location=knows_location,
            distance_to_declared_ft=receiver.distance_to(declared),
            comm_range_ft=comm_range,
            detector_flags=detector_flags,
            observed_rtt_cycles=rtt,
            x_max_cycles=x_max,
        )
        if decision.value != expected:
            report.divergences.append(
                Divergence(
                    "cascade",
                    i,
                    f"production={decision.value} oracle={expected} "
                    f"(knows={knows_location}, dist={dist!r}, "
                    f"flagged={detector_flags}, rtt={rtt!r})",
                )
            )
    return report


# ----------------------------------------------------------------------
# §2.2.2 — RTT window extraction
# ----------------------------------------------------------------------
def differential_rtt_window(
    scenarios: int = 1000, seed: int = 0
) -> DifferentialReport:
    """Production window extraction vs :func:`oracle_rtt_window`.

    Includes single-sample, duplicate-heavy, and empty inputs; for the
    empty case both sides must refuse (production with
    :class:`repro.errors.CalibrationError`).
    """
    report = DifferentialReport("rtt_window", scenarios)
    for i in range(scenarios):
        rng = _rng(seed, "window", i)
        n = rng.choice([0, 1, 2, rng.randint(3, 200)])
        values = [rng.uniform(10_000.0, 20_000.0) for _ in range(n)]
        if n >= 2 and rng.random() < 0.5:
            values[rng.randrange(n)] = values[0]  # force a duplicate
        if n == 0:
            production_raised = False
            try:
                calibration_from_samples(iter(values))
            except CalibrationError:
                production_raised = True
            oracle_raised = False
            try:
                oracle_rtt_window(values)
            except ValueError:
                oracle_raised = True
            if not (production_raised and oracle_raised):
                report.divergences.append(
                    Divergence(
                        "rtt_window",
                        i,
                        "empty input: production_raised="
                        f"{production_raised} oracle_raised={oracle_raised}",
                    )
                )
            continue
        calibration = calibration_from_samples(iter(values))
        x_min, x_max, count = oracle_rtt_window(values)
        got = (calibration.x_min, calibration.x_max, calibration.samples)
        if got != (x_min, x_max, count):
            report.divergences.append(
                Divergence(
                    "rtt_window",
                    i,
                    f"production={got} oracle={(x_min, x_max, count)}",
                )
            )
    return report


# ----------------------------------------------------------------------
# §3.1 — base-station counter machine
# ----------------------------------------------------------------------
def differential_base_station(
    scenarios: int = 1000, seed: int = 0
) -> DifferentialReport:
    """Production :class:`BaseStation` vs :class:`OracleBaseStation`.

    Random alert sequences over small id pools (so quota exhaustion,
    threshold crossings, and post-revocation alerts all occur often);
    compares per-alert acceptance, both counter maps, the revoked set,
    and the revocation order from the production trace.
    """
    report = DifferentialReport("base_station", scenarios)
    for i in range(scenarios):
        rng = _rng(seed, "station", i)
        tau_report = rng.randint(0, 3)
        tau_alert = rng.randint(0, 3)
        ids = list(range(1, rng.randint(3, 9)))
        alerts = [
            (rng.choice(ids), rng.choice(ids))
            for _ in range(rng.randint(1, 60))
        ]
        trace = TraceRecorder()
        station = BaseStation(
            KeyManager(),
            RevocationConfig(tau_report=tau_report, tau_alert=tau_alert),
            trace=trace,
        )
        oracle = OracleBaseStation(tau_report=tau_report, tau_alert=tau_alert)
        for step, (detector, target) in enumerate(alerts):
            accepted = station.submit_alert(detector, target, verify=False)
            expected = oracle.submit(detector, target)
            if accepted != expected:
                report.divergences.append(
                    Divergence(
                        "base_station",
                        i,
                        f"alert {step} ({detector}->{target}): "
                        f"production={accepted} oracle={expected}",
                    )
                )
                break
        else:
            revoke_order = [e["target"] for e in trace.of_kind("revoke")]
            mismatches = []
            if station.revoked != oracle.revoked:
                mismatches.append(
                    f"revoked {station.revoked} != {oracle.revoked}"
                )
            if revoke_order != oracle.revocation_order:
                mismatches.append(
                    f"order {revoke_order} != {oracle.revocation_order}"
                )
            if station.alert_counters != oracle.alert_counters:
                mismatches.append("alert counters differ")
            if station.report_counters != oracle.report_counters:
                mismatches.append("report counters differ")
            if mismatches:
                report.divergences.append(
                    Divergence("base_station", i, "; ".join(mismatches))
                )
    return report


# ----------------------------------------------------------------------
# §4 — semantics-neutral pipeline axes
# ----------------------------------------------------------------------
def _metrics_equal(a: Dict[str, float], b: Dict[str, float]) -> bool:
    """Bit-identical metric dicts (NaN compares equal to NaN)."""
    if a.keys() != b.keys():
        return False
    for key in a:
        va, vb = a[key], b[key]
        if math.isnan(va) and math.isnan(vb):
            continue
        if va != vb:
            return False
    return True


def differential_pipeline_axes(
    scenarios: int = 4,
    seed: int = 0,
    *,
    base_kwargs: Optional[dict] = None,
) -> DifferentialReport:
    """Bit-identity of the semantics-neutral pipeline knobs.

    For each scenario, one small randomized deployment runs four times:
    the baseline, ``use_spatial_index=False``, ``observe=ObserveConfig()``,
    and ``faults=FaultConfig()`` (all-zero). All four metric dicts must
    be identical to the last bit — these knobs are documented as
    changing *how* the pipeline computes, never *what*.
    """
    from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
    from repro.experiments.runner import collect_metrics
    from repro.faults.config import FaultConfig
    from repro.obs import ObserveConfig

    report = DifferentialReport("pipeline_axes", scenarios)
    overrides = dict(base_kwargs or {})
    for i in range(scenarios):
        rng = _rng(seed, "axes", i)
        kwargs = dict(
            n_total=rng.randint(40, 70),
            n_beacons=rng.randint(8, 14),
            n_malicious=rng.randint(0, 3),
            field_width_ft=500.0,
            field_height_ft=500.0,
            m_detecting_ids=4,
            p_prime=rng.choice([0.1, 0.3, 0.6]),
            rtt_calibration_samples=500,
            seed=derive_seed(seed, f"axes-config:{i}") % (2**31),
        )
        kwargs.update(overrides)

        def run(component: str, **extra) -> Dict[str, float]:
            config = PipelineConfig(**kwargs, **extra)
            return collect_metrics(SecureLocalizationPipeline(config).run())

        baseline = run("baseline")
        variants: List[tuple] = [
            ("use_spatial_index=False", dict(use_spatial_index=False)),
            ("observe=ObserveConfig()", dict(observe=ObserveConfig())),
            ("faults=FaultConfig()", dict(faults=FaultConfig())),
        ]
        for label, extra in variants:
            metrics = run(label, **extra)
            if not _metrics_equal(baseline, metrics):
                diff_keys = sorted(
                    k
                    for k in baseline.keys() | metrics.keys()
                    if baseline.get(k) != metrics.get(k)
                )
                report.divergences.append(
                    Divergence(
                        "pipeline_axes",
                        i,
                        f"{label} diverged on {diff_keys}",
                    )
                )
    return report


def differential_vectorized_core(
    scenarios: int = 8, seed: int = 0
) -> DifferentialReport:
    """Bit-identity of the vectorized batch core against the scalar path.

    Each scenario builds one small randomized deployment and runs it
    twice — ``use_vectorized_core`` off and on — cycling the wormhole
    axis every scenario and the delivery envelope every other one
    (clean, injected faults, link loss, probabilistic false alarms), so
    both tiers of the batch path are exercised: the fully array-built
    turbo tier on clean and false-alarm configurations and the
    per-delivery replay tier under faults/loss.
    The complete ``PipelineResult`` objects must compare equal — every
    rate, every localization error, every affected-node id, to the
    last bit. "Tolerance-identical" for this substrate *is* exact
    equality; ``docs/PERFORMANCE.md`` makes the argument (shared RNG
    streams consumed in scalar order, scalar ``math.hypot`` for every
    protocol-feeding distance, closed-form solver arithmetic).
    """
    import dataclasses as _dc

    from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
    from repro.faults.config import FaultConfig

    report = DifferentialReport("vectorized_core", scenarios)
    for i in range(scenarios):
        rng = _rng(seed, "veccore", i)
        # 0: clean, 1: faulted, 2: lossy, 3: probabilistic false alarms
        envelope = (i // 2) % 4
        kwargs = dict(
            n_total=rng.randint(40, 70),
            n_beacons=rng.randint(8, 14),
            n_malicious=rng.randint(0, 3),
            field_width_ft=500.0,
            field_height_ft=500.0,
            m_detecting_ids=4,
            p_prime=rng.choice([0.1, 0.3, 0.6]),
            rtt_calibration_samples=500,
            seed=derive_seed(seed, f"veccore-config:{i}") % (2**31),
            wormhole_endpoints=(
                ((100.0, 100.0), (400.0, 350.0)) if i % 2 == 0 else None
            ),
        )
        if envelope == 1:
            kwargs["faults"] = FaultConfig(
                packet_loss_rate=0.05,
                delivery_delay_rate=0.1,
                delivery_delay_cycles=1500.0,
                rtt_jitter_cycles=40.0,
            )
        elif envelope == 2:
            kwargs["network_loss_rate"] = 0.1
        elif envelope == 3:
            kwargs["wormhole_false_alarm_rate"] = rng.choice([0.05, 0.2])
        scalar = SecureLocalizationPipeline(PipelineConfig(**kwargs)).run()
        vectorized = SecureLocalizationPipeline(
            PipelineConfig(**kwargs, use_vectorized_core=True)
        ).run()
        if scalar != vectorized:
            diff_fields = sorted(
                f.name
                for f in _dc.fields(scalar)
                if getattr(scalar, f.name) != getattr(vectorized, f.name)
            )
            report.divergences.append(
                Divergence(
                    "vectorized_core",
                    i,
                    f"scalar/vectorized results differ on {diff_fields}",
                )
            )
    return report


#: Component name -> differential runner, in CLI order.
COMPONENTS: Dict[str, Callable[[int, int], DifferentialReport]] = {
    "signal_check": differential_signal_check,
    "cascade": differential_cascade,
    "rtt_window": differential_rtt_window,
    "base_station": differential_base_station,
}


def run_differential_suite(
    scenarios: int = 1000,
    seed: int = 0,
    *,
    axes_scenarios: int = 4,
    vec_scenarios: int = 8,
) -> List[DifferentialReport]:
    """Run every differential component plus the whole-pipeline checks.

    The oracle components run ``scenarios`` cases each; the two
    whole-pipeline bit-identity checks (semantics-neutral axes and the
    vectorized batch core) run their own, much smaller counts — each
    of their scenarios is a pair of full pipeline executions.
    """
    reports = [fn(scenarios, seed) for fn in COMPONENTS.values()]
    reports.append(differential_pipeline_axes(axes_scenarios, seed))
    reports.append(differential_vectorized_core(vec_scenarios, seed))
    return reports
