"""Executable paper invariants, checked post-hoc over trace streams.

Each checker consumes a :class:`repro.sim.trace.TraceRecorder` (or, for
:func:`check_honest_rtt_window`, a calibration plus observed RTTs) and
returns a list of :class:`InvariantViolation` — empty when the invariant
holds. They never mutate the trace and can run over any recorded stream:
a unit-test fixture, a full pipeline run, or a replayed log.

The invariants, straight from the paper:

- **Collusion quota** (§3.1): any single detector gets at most
  ``tau_report + 1`` alerts accepted, so ``N_a`` colluding reporters can
  land at most ``N_a * (tau_report + 1)`` accepted alerts in total.
- **Revocation monotonicity** (§3.1): a beacon is revoked exactly at its
  ``tau_alert + 1``-th accepted alert, exactly once, and no alert
  against it is accepted afterwards.
- **Consistent never indicts** (§2.1): a probe whose signal passes the
  distance-consistency check ends in the ``"consistent"`` outcome —
  never in a replay verdict or an alert (and vice versa: an
  inconsistent signal is never recorded consistent).
- **Honest RTT window** (§2.2.2): with zero jitter, an honest exchange's
  RTT never exceeds the calibrated ``x_max`` — the local-replay filter
  must not flag honest traffic.

Paper section: §2.1, §2.2.2, §3.1 (invariants of the protocol)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.core.rtt import RttCalibration
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class InvariantViolation:
    """One broken paper invariant, with enough detail to debug it."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


# ----------------------------------------------------------------------
# §3.1 — collusion quota
# ----------------------------------------------------------------------
def check_alert_quota(
    trace: TraceRecorder,
    tau_report: int,
    reporter_ids: Optional[Set[int]] = None,
) -> List[InvariantViolation]:
    """No detector lands more than ``tau_report + 1`` accepted alerts.

    Args:
        trace: stream containing base-station ``"alert"`` events.
        tau_report: the per-detector quota threshold.
        reporter_ids: optionally, a set of (e.g. colluding/malicious)
            detector ids; their combined accepted alerts must then also
            stay within ``len(reporter_ids) * (tau_report + 1)`` — the
            paper's bound on colluder damage.
    """
    violations: List[InvariantViolation] = []
    per_detector: Dict[int, int] = {}
    for event in trace.of_kind("alert"):
        if event["accepted"]:
            detector = event["detector"]
            per_detector[detector] = per_detector.get(detector, 0) + 1
    cap = tau_report + 1
    for detector, count in sorted(per_detector.items()):
        if count > cap:
            violations.append(
                InvariantViolation(
                    "alert-quota",
                    f"detector {detector} landed {count} accepted alerts; "
                    f"quota allows {cap}",
                )
            )
    if reporter_ids is not None:
        pool_cap = len(reporter_ids) * cap
        pool = sum(per_detector.get(d, 0) for d in reporter_ids)
        if pool > pool_cap:
            violations.append(
                InvariantViolation(
                    "alert-quota",
                    f"{len(reporter_ids)} reporters landed {pool} accepted "
                    f"alerts; N_a * (tau_report + 1) = {pool_cap}",
                )
            )
    return violations


# ----------------------------------------------------------------------
# §3.1 — revocation monotonicity
# ----------------------------------------------------------------------
def check_revocation_monotone(
    trace: TraceRecorder, tau_alert: int
) -> List[InvariantViolation]:
    """Revocation happens exactly at the threshold, once, and is final.

    Walks the interleaved ``"alert"``/``"revoke"`` stream in record
    order and asserts:

    - no alert against an already-revoked target is accepted;
    - every ``"revoke"`` fires at exactly ``tau_alert + 1`` accepted
      alerts against its target, and never twice;
    - no target ends the trace above the threshold without a revocation.
    """
    violations: List[InvariantViolation] = []
    accepted: Dict[int, int] = {}
    revoked: Set[int] = set()
    for event in trace:
        if event.kind == "alert" and event["accepted"]:
            target = event["target"]
            if target in revoked:
                violations.append(
                    InvariantViolation(
                        "revocation-monotone",
                        f"alert against revoked beacon {target} was "
                        f"accepted at t={event.time}",
                    )
                )
            accepted[target] = accepted.get(target, 0) + 1
        elif event.kind == "revoke":
            target = event["target"]
            if target in revoked:
                violations.append(
                    InvariantViolation(
                        "revocation-monotone",
                        f"beacon {target} revoked twice (t={event.time})",
                    )
                )
                continue
            revoked.add(target)
            if accepted.get(target, 0) != tau_alert + 1:
                violations.append(
                    InvariantViolation(
                        "revocation-monotone",
                        f"beacon {target} revoked at {accepted.get(target, 0)} "
                        f"accepted alerts; expected exactly {tau_alert + 1}",
                    )
                )
    for target, count in sorted(accepted.items()):
        if count > tau_alert and target not in revoked:
            violations.append(
                InvariantViolation(
                    "revocation-monotone",
                    f"beacon {target} crossed the threshold "
                    f"({count} > {tau_alert}) but was never revoked",
                )
            )
    return violations


# ----------------------------------------------------------------------
# §2.1 — consistent never indicts
# ----------------------------------------------------------------------
def check_consistent_never_indicts(
    trace: TraceRecorder,
) -> List[InvariantViolation]:
    """A signal passing the §2.1 check never reaches the replay filters.

    Consumes the ``"probe"`` events recorded by
    :class:`repro.core.detecting.DetectingBeacon`, which carry the §2.1
    verdict (``signal_consistent``) next to the final ``decision``. The
    two must agree in both directions: consistent ⇒ ``"consistent"``,
    and ``"consistent"`` ⇒ consistent.
    """
    violations: List[InvariantViolation] = []
    for event in trace.of_kind("probe"):
        consistent = event["signal_consistent"]
        decision = event["decision"]
        if consistent and decision != "consistent":
            violations.append(
                InvariantViolation(
                    "consistent-never-indicts",
                    f"probe {event['detecting_id']}->{event['target']} "
                    f"passed the signal check but ended as {decision!r}",
                )
            )
        elif not consistent and decision == "consistent":
            violations.append(
                InvariantViolation(
                    "consistent-never-indicts",
                    f"probe {event['detecting_id']}->{event['target']} "
                    "failed the signal check but was recorded consistent",
                )
            )
    return violations


# ----------------------------------------------------------------------
# §2.2.2 — honest RTT window
# ----------------------------------------------------------------------
def check_honest_rtt_window(
    calibration: RttCalibration, rtts: Iterable[float]
) -> List[InvariantViolation]:
    """Honest RTTs never trip the local-replay filter.

    With zero per-hop jitter every honest exchange's RTT is bounded by
    the calibration window's ``x_max`` (calibration at the radio range
    dominates the flight term of any in-range exchange), so
    ``rtt > x_max`` on honest traffic means the filter would flag an
    honest beacon — a false local-replay verdict.
    """
    violations: List[InvariantViolation] = []
    for index, rtt in enumerate(rtts):
        if rtt > calibration.x_max:
            violations.append(
                InvariantViolation(
                    "honest-rtt-window",
                    f"honest RTT #{index} = {rtt!r} cycles exceeds "
                    f"x_max = {calibration.x_max!r}: the local-replay "
                    "filter would flag an honest exchange",
                )
            )
    return violations


def run_invariants(
    trace: TraceRecorder,
    *,
    tau_report: int,
    tau_alert: int,
    reporter_ids: Optional[Set[int]] = None,
) -> List[InvariantViolation]:
    """Run every trace-based invariant over one recorded stream."""
    violations: List[InvariantViolation] = []
    violations.extend(check_alert_quota(trace, tau_report, reporter_ids))
    violations.extend(check_revocation_monotone(trace, tau_alert))
    violations.extend(check_consistent_never_indicts(trace))
    return violations
