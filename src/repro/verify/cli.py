"""The ``repro-verify`` command-line conformance gate.

Runs, in order: the differential oracle suite, the trace-invariant pass
over a freshly-run pipeline, the zero-jitter honest-RTT check, the
detector-arena conformance checks (every registered rival detector:
clean anchors never indicted at zero noise, byte-identical under
re-runs and worker sharding — see :mod:`repro.verify.detectors`), and
the Figure 12-14 statistical gate. Exit status 0 means full
conformance; 1 means at least one divergence/violation (each printed
on stderr).

Typical invocations::

    repro-verify                          # everything, CI defaults
    repro-verify --scenarios 200          # quick local differential run
    repro-verify --only differential      # one stage
    repro-verify --update-golden          # re-commit the statgate golden

Paper section: §4 (conformance gate over the reproduction)
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.core.rtt import calibrate_rtt
from repro.sim.timing import RttModel
from repro.verify.differential import run_differential_suite
from repro.verify.invariants import (
    InvariantViolation,
    check_honest_rtt_window,
    run_invariants,
)
from repro.verify.statgate import run_statgate

STAGES = ("differential", "invariants", "detectors", "statgate")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Paper-fidelity conformance gate (oracles, invariants, figures).",
    )
    parser.add_argument(
        "--scenarios",
        type=int,
        default=1000,
        help="differential scenarios per component (default: 1000)",
    )
    parser.add_argument(
        "--axes-scenarios",
        type=int,
        default=4,
        help="pipeline bit-identity scenarios (default: 4)",
    )
    parser.add_argument(
        "--vec-scenarios",
        type=int,
        default=8,
        help="vectorized-core bit-identity scenarios (default: 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master scenario seed (default: 0)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1,
        help="Monte-Carlo trials per statgate point (default: 1)",
    )
    parser.add_argument(
        "--only",
        choices=STAGES,
        default=None,
        help="run a single stage instead of all three",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="re-commit the statgate golden data (trend checks still apply)",
    )
    return parser


def _run_differential(args: argparse.Namespace) -> int:
    failures = 0
    reports = run_differential_suite(
        args.scenarios,
        args.seed,
        axes_scenarios=args.axes_scenarios,
        vec_scenarios=args.vec_scenarios,
    )
    for report in reports:
        print(report.summary())
        for divergence in report.divergences:
            failures += 1
            print(
                f"  scenario {divergence.scenario}: {divergence.detail}",
                file=sys.stderr,
            )
    return failures


def _run_invariants(args: argparse.Namespace) -> int:
    # Deferred import: the pipeline pulls in the whole simulator.
    from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline

    config = PipelineConfig(
        n_total=200,
        n_beacons=30,
        n_malicious=4,
        field_width_ft=600.0,
        field_height_ft=600.0,
        p_prime=0.5,
        rtt_calibration_samples=1000,
        seed=args.seed + 101,
    )
    pipeline = SecureLocalizationPipeline(config)
    pipeline.run()
    violations: List[InvariantViolation] = run_invariants(
        pipeline.trace,
        tau_report=config.tau_report,
        tau_alert=config.tau_alert,
        reporter_ids={b.node_id for b in pipeline.malicious_beacons},
    )

    # §2.2.2 honest-window check under zero jitter: calibrate at the
    # radio range (as the pipeline does) and confirm no honest in-range
    # exchange would trip the local-replay filter.
    model = RttModel(jitter_cycles=0.0)
    rng = random.Random(args.seed)
    calibration = calibrate_rtt(
        model, rng, samples=64, distance_ft=config.comm_range_ft
    )
    honest = [
        model.sample(rng, distance_ft=d).rtt
        for d in [
            config.comm_range_ft * i / 50 for i in range(51)
        ]
    ]
    violations.extend(check_honest_rtt_window(calibration, honest))

    print(
        f"invariants: {len(pipeline.trace)} trace events, "
        + ("OK" if not violations else f"{len(violations)} VIOLATIONS")
    )
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    return len(violations)


def _run_detectors(args: argparse.Namespace) -> int:
    # Deferred import: pulls in the pipeline and the runner.
    from repro.verify.detectors import run_detector_checks

    report = run_detector_checks(seed=args.seed)
    failures = 0
    for name, violations in report.items():
        print(
            f"detectors[{name}]: "
            + ("OK" if not violations else f"{len(violations)} VIOLATIONS")
        )
        for violation in violations:
            failures += 1
            print(f"  {violation}", file=sys.stderr)
    return failures


def _run_statgate(args: argparse.Namespace) -> int:
    observed, violations = run_statgate(
        trials=args.trials, update_golden=args.update_golden
    )
    if args.update_golden and not violations:
        print("statgate: golden data updated")
    print(
        "statgate: "
        + ("OK" if not violations else f"{len(violations)} VIOLATIONS")
    )
    for figure, data in sorted(observed.items()):
        print(f"  {figure}: {data}")
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    return len(violations)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    stages = (args.only,) if args.only else STAGES
    failures = 0
    if "differential" in stages:
        failures += _run_differential(args)
    if "invariants" in stages:
        failures += _run_invariants(args)
    if "detectors" in stages:
        failures += _run_detectors(args)
    if "statgate" in stages:
        failures += _run_statgate(args)
    if failures:
        print(f"repro-verify: FAILED ({failures} findings)", file=sys.stderr)
        return 1
    print("repro-verify: all conformance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
