"""Reference oracles: the paper's rules, reimplemented naively.

Each oracle is written directly from the paper text with the simplest
possible code — plain scalars in, plain values out, no shared helpers
with the production modules — so that a semantic drift in production
shows up as a differential divergence rather than being replicated here.
They are deliberately slow and structure-free; never use them on a hot
path.

Correspondence:

- :func:`oracle_signal_check`   <-> :class:`repro.core.signal_detector.MaliciousSignalDetector`
- :func:`oracle_cascade`        <-> :class:`repro.core.replay_filter.ReplayFilterCascade`
- :func:`oracle_rtt_window`     <-> :func:`repro.core.rtt.calibration_from_samples`
- :class:`OracleBaseStation`    <-> :class:`repro.core.revocation.BaseStation`

Paper section: §2.1, §2.2, §2.2.2, §3.1 (the checked rules)
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Set, Tuple


def oracle_signal_check(
    own_x: float,
    own_y: float,
    declared_x: float,
    declared_y: float,
    measured_distance_ft: float,
    max_error_ft: float,
) -> bool:
    """§2.1: True when the signal is malicious.

    "A beacon signal is considered malicious when the difference between
    the calculated distance and the measured distance is greater than
    the maximum ranging error" — strictly greater: a discrepancy exactly
    at the bound is still explainable by measurement error.
    """
    calculated = math.hypot(own_x - declared_x, own_y - declared_y)
    return abs(calculated - measured_distance_ft) > max_error_ft


def oracle_cascade(
    *,
    receiver_knows_location: bool,
    distance_to_declared_ft: float,
    comm_range_ft: float,
    detector_flags: bool,
    observed_rtt_cycles: float,
    x_max_cycles: float,
) -> str:
    """§2.2: the filter cascade on one reception, as plain scalars.

    Returns ``"replayed_wormhole"``, ``"replayed_local"``, or
    ``"accept"`` — the first filter that fires wins:

    1. §2.2.1 wormhole filter. For a receiver that knows its location, a
       declared location strictly farther than the radio range "cannot
       have arrived directly" — wormhole replay regardless of the
       detector. Otherwise (in range, or location unknown) the imperfect
       detector's verdict decides.
    2. §2.2.2 local-replay filter: RTT strictly above the calibrated
       ``x_max`` means the signal was replayed locally.
    """
    if receiver_knows_location and distance_to_declared_ft > comm_range_ft:
        return "replayed_wormhole"
    if detector_flags:
        return "replayed_wormhole"
    if observed_rtt_cycles > x_max_cycles:
        return "replayed_local"
    return "accept"


def oracle_rtt_window(rtts: Iterable[float]) -> Tuple[float, float, int]:
    """§2.2.2: ``(x_min, x_max, n)`` of an attack-free RTT sample.

    "x_min is the largest x value for which F(x) = 0, and x_max the
    smallest x value for which F(x) = 1" — for an empirical CDF these
    are the observed minimum and maximum. ``n`` is the observed sample
    count.

    Raises:
        ValueError: ``rtts`` is empty — no window without measurements.
    """
    data = sorted(float(r) for r in rtts)
    if not data:
        raise ValueError("oracle_rtt_window needs at least one sample")
    return data[0], data[-1], len(data)


class OracleBaseStation:
    """§3.1: the two-counter revocation machine, minimally.

    Processes already-authenticated ``(detector, target)`` alerts in
    order. Per the paper:

    - an alert from a detector whose **report counter** exceeds
      ``tau_report`` is ignored (the collusion quota);
    - an alert against an already-revoked target is ignored;
    - otherwise the target's **alert counter** and the detector's report
      counter both increment;
    - a target whose alert counter exceeds ``tau_alert`` is revoked —
      once, immediately, at the crossing;
    - a revoked detector's alerts still count (no pre-emptive
      silencing).
    """

    def __init__(self, tau_report: int, tau_alert: int) -> None:
        self.tau_report = tau_report
        self.tau_alert = tau_alert
        self.alert_counters: Dict[int, int] = {}
        self.report_counters: Dict[int, int] = {}
        self.revoked: Set[int] = set()
        #: Revocations in the order they happened (for order checks).
        self.revocation_order: List[int] = []

    def submit(self, detector_id: int, target_id: int) -> bool:
        """Process one authenticated alert; True when accepted."""
        if self.report_counters.get(detector_id, 0) > self.tau_report:
            return False
        if target_id in self.revoked:
            return False
        self.alert_counters[target_id] = self.alert_counters.get(target_id, 0) + 1
        self.report_counters[detector_id] = (
            self.report_counters.get(detector_id, 0) + 1
        )
        if self.alert_counters[target_id] > self.tau_alert:
            self.revoked.add(target_id)
            self.revocation_order.append(target_id)
        return True
