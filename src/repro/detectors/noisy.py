"""Noisy-channel sequential threshold detector (Mandal-Ghosh-style rival).

Treats each probe exchange as one Bernoulli observation of the
hypothesis "this beacon lies about its position": the observation is
*suspicious* when the §2.1 residual exceeds the maximum measurement
error. Instead of indicting on a single suspicious observation, a
Wald sequential probability ratio test (SPRT) accumulates evidence per
(detecting beacon, target) pair:

    H0 (honest):    P(suspicious) = p0   (channel noise only)
    H1 (malicious): P(suspicious) = p1

    llr += log(p1/p0)             on a suspicious observation
    llr += log((1-p1)/(1-p0))     on a clean observation

    indict when llr >= log((1-beta)/alpha)

The accept boundary ``log(beta/(1-alpha))`` clamps the ratio from
below rather than terminating, so a beacon that turns malicious late is
still caught. The design goal is robustness to *channel noise*: a few
noise-induced residual excursions are absorbed instead of indicted,
at the cost of needing ~2 consistent lies before an indictment — with
``m`` detecting identities per beacon the paper's probing schedule
supplies them in one round.

Like the Mahalanobis rival — and unlike the paper's suite — there is no
replay filtering, so wormhole-replayed benign signals accumulate
evidence against their benign victims. The detector never consults the
RTT and draws no randomness at all (calibration is closed-form), which
makes it the cheapest per decision in the arena.

Paper section: §2.1 (the residual test hardened into a sequential test;
cf. Mandal-Ghosh, PAPERS.md)
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.detectors.base import (
    DECISION_ALERT,
    DECISION_CONSISTENT,
    Detector,
    DetectorContext,
    Exchange,
    Verdict,
    register,
)
from repro.errors import ConfigurationError
from repro.utils.geometry import distance


@register
class NoisySequentialDetector(Detector):
    """Per-pair SPRT over binary residual-exceedance observations.

    Args:
        p_noise: assumed probability an *honest* exchange trips the
            residual test (channel noise); must be in (0, 1).
        p_malicious: assumed probability a *lying* beacon trips it.
        alpha: tolerated false-indictment rate (sets the upper boundary).
        beta: tolerated missed-detection rate (sets the lower clamp).
    """

    name = "noisy"

    def __init__(
        self,
        p_noise: float = 0.05,
        p_malicious: float = 0.9,
        alpha: float = 0.01,
        beta: float = 0.01,
    ) -> None:
        if not 0.0 < p_noise < p_malicious < 1.0:
            raise ConfigurationError(
                f"need 0 < p_noise < p_malicious < 1, got {p_noise}, {p_malicious}"
            )
        if not (0.0 < alpha < 1.0 and 0.0 < beta < 1.0):
            raise ConfigurationError(
                f"alpha/beta must be in (0, 1), got {alpha}, {beta}"
            )
        self._step_up = math.log(p_malicious / p_noise)
        self._step_down = math.log((1.0 - p_malicious) / (1.0 - p_noise))
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))
        self._llr: Dict[Tuple[int, int], float] = {}
        self._max_error_ft = 0.0
        self.evaluated = 0
        self.indicted_pairs = 0

    def calibrate(self, context: DetectorContext) -> None:
        """Closed-form: only the residual threshold is taken from context."""
        self._max_error_ft = context.max_ranging_error_ft

    def evaluate(self, exchange: Exchange) -> Verdict:
        """Advance the pair's likelihood ratio and test the boundary."""
        self.evaluated += 1
        calculated = distance(
            exchange.detector_position, exchange.declared_position
        )
        residual = abs(calculated - exchange.measured_distance_ft)
        suspicious = residual > self._max_error_ft
        key = (exchange.detector_id, exchange.target_id)
        llr = self._llr.get(key, 0.0)
        llr += self._step_up if suspicious else self._step_down
        llr = max(llr, self._lower)
        self._llr[key] = llr
        if llr >= self._upper:
            self.indicted_pairs += 1
            return Verdict(
                DECISION_ALERT,
                indict=True,
                signal_consistent=not suspicious,
                detail=f"llr={llr:.2f}>={self._upper:.2f}",
            )
        if not suspicious:
            return Verdict(
                DECISION_CONSISTENT, indict=False, signal_consistent=True
            )
        return Verdict(
            "sequential_pending",
            indict=False,
            signal_consistent=False,
            detail=f"llr={llr:.2f}",
        )

    def diagnostics(self) -> Dict[str, object]:
        """Boundary parameters plus evaluation counters."""
        return {
            "pairs_tracked": len(self._llr),
            "evaluated": self.evaluated,
            "indicted_pairs": self.indicted_pairs,
            "upper_boundary": self._upper,
        }
