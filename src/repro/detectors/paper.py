"""The paper's detection suite behind the :class:`Detector` protocol.

:class:`PaperDetector` is a thin adapter over the components every
:class:`~repro.core.detecting.DetectingBeacon` already owns — the §2.1
:class:`~repro.core.signal_detector.MaliciousSignalDetector` and the
§2.2 :class:`~repro.core.replay_filter.ReplayFilterCascade` — preserving
the exact evaluation order of the pre-arena reply handler:

1. distance-consistency check (no RNG);
2. only on inconsistency: measure the RTT (consumes measurement-stream
   draws) and run the wormhole + local-replay cascade;
3. indict only a malicious signal that survives both filters.

Because the adapter holds each beacon's *own* cascade objects (the
shared wormhole detector's coin stream included), a pipeline configured
with ``detector="paper"`` is bit-identical to the pre-arena pipeline —
the seam tests pin this against captured golden metrics.

Unlike the rival detectors, one instance serves one beacon (the cascade
counters are per-beacon state the vectorized kernels also mutate), so
the pipeline leaves construction to the beacon itself.

Paper section: §2.1-§2.2 (the reference detection suite)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.replay_filter import FilterDecision, ReplayFilterCascade
from repro.core.signal_detector import MaliciousSignalDetector
from repro.detectors.base import (
    DECISION_ALERT,
    DECISION_CONSISTENT,
    Detector,
    Exchange,
    Verdict,
    register,
)


@register
class PaperDetector(Detector):
    """The §2.1 consistency check plus the §2.2 replay-filter cascade.

    Args:
        signal_detector: the beacon's distance-consistency check. The
            registry factory leaves both components ``None`` (the
            pipeline builds bound instances per beacon); an unbound
            instance cannot evaluate.
        filter_cascade: the beacon's wormhole + RTT replay filters.
    """

    name = "paper"

    def __init__(
        self,
        signal_detector: Optional[MaliciousSignalDetector] = None,
        filter_cascade: Optional[ReplayFilterCascade] = None,
    ) -> None:
        self.signal_detector = signal_detector
        self.filter_cascade = filter_cascade

    def evaluate(self, exchange: Exchange) -> Verdict:
        """Replicate ``DetectingBeacon._handle_probe_reply`` exactly."""
        check = self.signal_detector.check(
            exchange.detector_position,
            exchange.declared_position,
            exchange.measured_distance_ft,
        )
        consistent = not check.is_malicious
        if consistent:
            return Verdict(
                DECISION_CONSISTENT, indict=False, signal_consistent=True
            )
        # Malicious signal: make sure it is not a replay before indicting.
        rtt = exchange.rtt_cycles()
        decision = self.filter_cascade.evaluate(
            exchange.reception,
            exchange.detector_position,
            rtt,
            receiver_knows_location=True,
        )
        if decision is FilterDecision.REPLAYED_WORMHOLE:
            return Verdict(
                "replayed_wormhole", indict=False, signal_consistent=False
            )
        if decision is FilterDecision.REPLAYED_LOCAL:
            return Verdict(
                "replayed_local", indict=False, signal_consistent=False
            )
        return Verdict(DECISION_ALERT, indict=True, signal_consistent=False)

    def diagnostics(self) -> Dict[str, object]:
        """The local-replay filter's check/flag counters."""
        local = self.filter_cascade.local_replay_detector
        return {"rtt_checks": local.checks, "rtt_flagged": local.flagged}
