"""Mahalanobis-distance residual detector (Kuriakose-style rival).

Models an honest exchange as a two-dimensional feature vector — the
signed localization residual ``calculated - measured`` and the
register-level RTT — and calibrates its mean and covariance from
simulated attack-free exchanges. At run time each exchange's squared
Mahalanobis distance

    d^2 = (x - mu)^T  Sigma^{-1}  (x - mu)

is compared against a threshold set to the largest calibration ``d^2``
times a safety margin (the same empirical-support convention the paper
uses for ``x_max`` in §2.2.2): anything inside the honest ellipse is
accepted, anything outside indicts the sender immediately.

The contrast with the paper's suite is deliberate: there is **no replay
filtering**. A wormhole-replayed benign signal has a huge residual and
RTT, lands far outside the honest ellipse, and indicts the *benign*
victim — the arena report shows this as a high false-positive rate in
wormhole scenarios, which is exactly the failure mode the paper's §2.2
cascade exists to prevent.

Calibration draws only from the dedicated ``detector-calibration``
stream, so enabling this detector never perturbs the protocol RNG.

Paper section: §2.1 (the residual test generalised to a multivariate
outlier test; cf. Kuriakose et al., PAPERS.md)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.detectors.base import (
    DECISION_ALERT,
    DECISION_CONSISTENT,
    Detector,
    DetectorContext,
    Exchange,
    Verdict,
    register,
)
from repro.errors import CalibrationError
from repro.utils.geometry import distance


def _mean_and_covariance(
    samples: List[Tuple[float, float]],
) -> Tuple[Tuple[float, float], Tuple[float, float, float]]:
    """Sample mean and (regularised) covariance of 2-d feature vectors."""
    n = len(samples)
    mean_r = sum(s[0] for s in samples) / n
    mean_t = sum(s[1] for s in samples) / n
    var_r = var_t = cov_rt = 0.0
    for r, t in samples:
        dr = r - mean_r
        dt = t - mean_t
        var_r += dr * dr
        var_t += dt * dt
        cov_rt += dr * dt
    denom = max(1, n - 1)
    var_r /= denom
    var_t /= denom
    cov_rt /= denom
    # Regularise: a degenerate axis (e.g. zero ranging noise) must not
    # make the ellipse infinitely thin.
    eps = 1e-9 * max(var_r, var_t, 1.0)
    return (mean_r, mean_t), (var_r + eps, var_t + eps, cov_rt)


@register
class MahalanobisDetector(Detector):
    """Multivariate outlier test over (residual, RTT) features.

    Args:
        calibration_samples: attack-free exchanges simulated during
            :meth:`calibrate`.
        threshold_margin: multiplier on the largest calibration ``d^2``;
            > 1 keeps bounded honest noise strictly inside the ellipse.
    """

    name = "mahalanobis"

    def __init__(
        self,
        calibration_samples: int = 512,
        threshold_margin: float = 1.5,
    ) -> None:
        self.calibration_samples = calibration_samples
        self.threshold_margin = threshold_margin
        self._mean: Optional[Tuple[float, float]] = None
        self._inv_cov: Optional[Tuple[float, float, float]] = None
        self.threshold_d2: Optional[float] = None
        self._max_error_ft = 0.0
        self.evaluated = 0
        self.outliers = 0

    def calibrate(self, context: DetectorContext) -> None:
        """Fit the honest (residual, RTT) ellipse from simulated exchanges."""
        rng = context.rng
        e = context.max_ranging_error_ft
        self._max_error_ft = e
        samples: List[Tuple[float, float]] = []
        for _ in range(self.calibration_samples):
            residual = rng.uniform(-e, e)
            d = rng.uniform(0.0, context.comm_range_ft)
            rtt = context.rtt_model.sample(rng, distance_ft=d).rtt
            samples.append((residual, rtt))
        mean, (var_r, var_t, cov_rt) = _mean_and_covariance(samples)
        det = var_r * var_t - cov_rt * cov_rt
        if det <= 0.0:
            raise CalibrationError(
                f"degenerate calibration covariance (det={det})"
            )
        self._mean = mean
        self._inv_cov = (var_t / det, var_r / det, -cov_rt / det)
        worst = max(self._d2(r, t) for r, t in samples)
        self.threshold_d2 = worst * self.threshold_margin

    def _d2(self, residual: float, rtt: float) -> float:
        dr = residual - self._mean[0]
        dt = rtt - self._mean[1]
        a, b, c = self._inv_cov  # inv = [[a, c], [c, b]]
        return a * dr * dr + 2.0 * c * dr * dt + b * dt * dt

    def evaluate(self, exchange: Exchange) -> Verdict:
        """Accept inside the honest ellipse, indict outside it."""
        if self.threshold_d2 is None:
            raise CalibrationError("MahalanobisDetector used before calibrate()")
        calculated = distance(
            exchange.detector_position, exchange.declared_position
        )
        residual = calculated - exchange.measured_distance_ft
        consistent = abs(residual) <= self._max_error_ft
        d2 = self._d2(residual, exchange.rtt_cycles())
        self.evaluated += 1
        if d2 <= self.threshold_d2:
            if consistent:
                return Verdict(
                    DECISION_CONSISTENT, indict=False, signal_consistent=True
                )
            return Verdict(
                "mahalanobis_accept",
                indict=False,
                signal_consistent=False,
                detail=f"d2={d2:.3f}",
            )
        self.outliers += 1
        return Verdict(
            DECISION_ALERT,
            indict=True,
            signal_consistent=consistent,
            detail=f"d2={d2:.3f}>{self.threshold_d2:.3f}",
        )

    def diagnostics(self) -> Dict[str, object]:
        """Calibrated ellipse parameters plus evaluation counters."""
        return {
            "threshold_d2": self.threshold_d2,
            "evaluated": self.evaluated,
            "outliers": self.outliers,
        }
