"""The pluggable detector protocol and registry.

A :class:`Detector` consumes one probe **exchange** at a time — the
detecting identity, the target's declared location, the measured
distance, and a lazily measured round-trip time — and returns a
:class:`Verdict`: a decision label for the trace, whether the target
should be indicted to the base station, and the §2.1 consistency flag
that post-hoc invariant checkers rely on.

The lifecycle is ``calibrate -> evaluate (per exchange) -> diagnostics``:

1. :meth:`Detector.calibrate` runs once per pipeline with a
   :class:`DetectorContext` (error bound, radio range, the attack-free
   RTT window, and a dedicated named RNG stream). Detectors that need
   reference statistics — e.g. the Mahalanobis residual model — draw
   them here, on their own stream, so the paper path stays bit-identical.
2. :meth:`Detector.evaluate` maps one :class:`Exchange` to a
   :class:`Verdict`. The RTT is measured lazily (``exchange.rtt_cycles()``)
   because measuring it consumes RNG draws: the paper's detector only
   measures inconsistent signals, and rivals must be free to make the
   same economy.
3. :meth:`Detector.diagnostics` reports counters for reports/benches.

Rival detectors register under a short name (``register``); the
pipeline resolves :attr:`PipelineConfig.detector
<repro.core.pipeline.PipelineConfig>` through :func:`make_detector`.

Paper section: §2.1-§2.2 (generalised; the reference implementation is
the paper's detection suite, see :mod:`repro.detectors.paper`)
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional

from repro.core.rtt import RttCalibration
from repro.errors import ConfigurationError
from repro.sim.radio import Reception
from repro.sim.timing import RttModel
from repro.utils.geometry import Point

#: Decision labels shared by every detector. A detector may add its own
#: labels for non-indicting outcomes, but ``"consistent"`` is reserved
#: for exchanges that pass the §2.1 distance-consistency test and
#: ``"alert"`` for exchanges that indict — the trace invariants
#: (:mod:`repro.verify.invariants`) depend on that contract.
DECISION_CONSISTENT = "consistent"
DECISION_ALERT = "alert"


@dataclass
class Exchange:
    """One probe reply as seen by a detecting identity.

    Attributes:
        detector_id: the detecting beacon's primary (reporting) identity.
        detecting_id: the probing identity the reply answered.
        target_id: the beacon identity that sent the reply.
        detector_position: the detecting beacon's exact location.
        declared_position: the location claimed in the beacon packet.
        measured_distance_ft: the ranging estimate from the signal.
        reception: the raw reception (ground-truth metadata included),
            for filters that need the transmission context.
        rtt_provider: measures the register-level RTT of this exchange.
            Calling it consumes RNG draws on the measurement stream, so
            detectors must call :meth:`rtt_cycles` (which memoizes) and
            only when they actually consult the RTT.
    """

    detector_id: int
    detecting_id: int
    target_id: int
    detector_position: Point
    declared_position: Point
    measured_distance_ft: float
    reception: Reception
    rtt_provider: Callable[[], float]
    _rtt: Optional[float] = field(default=None, repr=False)

    def rtt_cycles(self) -> float:
        """The exchange's RTT, measured on first use and memoized."""
        if self._rtt is None:
            self._rtt = self.rtt_provider()
        return self._rtt


@dataclass(frozen=True)
class Verdict:
    """A detector's conclusion about one exchange.

    Attributes:
        decision: trace label (``"consistent"``, ``"alert"``, or a
            detector-specific non-indicting label such as
            ``"replayed_wormhole"``).
        indict: whether the detecting beacon should report the target.
        signal_consistent: the §2.1 distance-consistency outcome for
            this exchange — recorded next to the decision so the
            consistent-never-indicts invariant holds for every detector.
        detail: optional free-form diagnostic (e.g. a test statistic).
    """

    decision: str
    indict: bool
    signal_consistent: bool
    detail: str = ""

    def __post_init__(self) -> None:
        if self.indict and self.decision != DECISION_ALERT:
            raise ConfigurationError(
                f"indicting verdicts must use decision={DECISION_ALERT!r}, "
                f"got {self.decision!r}"
            )
        if self.decision == DECISION_CONSISTENT and not self.signal_consistent:
            raise ConfigurationError(
                "decision='consistent' requires signal_consistent=True"
            )


@dataclass(frozen=True)
class DetectorContext:
    """Everything a detector may calibrate against.

    Attributes:
        max_ranging_error_ft: the §2.1 maximum measurement error bound.
        comm_range_ft: the radio range (the §2.2.1 distance condition).
        rtt_model: the register-level RTT hardware model, for detectors
            that build their own honest-RTT reference statistics.
        rtt_calibration: the attack-free §2.2.2 window (x_min/x_max).
        rng: a dedicated named RNG stream (``"detector-calibration"``).
            Calibration draws happen here and nowhere else, so enabling
            a rival detector never perturbs the protocol streams.
    """

    max_ranging_error_ft: float
    comm_range_ft: float
    rtt_model: RttModel
    rtt_calibration: RttCalibration
    rng: random.Random


class Detector(abc.ABC):
    """Base class for pluggable malicious-beacon detectors.

    One instance serves a whole pipeline: :class:`Exchange` carries the
    detecting beacon's identity and position, so per-pair state (e.g. a
    sequential test's likelihood ratio) is keyed inside the detector.
    The paper's reference detector is the exception — it wraps each
    beacon's own filter-cascade objects and is built per beacon (see
    :mod:`repro.detectors.paper`).
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    def calibrate(self, context: DetectorContext) -> None:
        """Build reference statistics; default detectors need none."""

    @abc.abstractmethod
    def evaluate(self, exchange: Exchange) -> Verdict:
        """Judge one probe exchange."""

    def diagnostics(self) -> Dict[str, object]:
        """Counters and calibrated parameters for reports/benches."""
        return {}


_REGISTRY: Dict[str, Callable[[], Detector]] = {}


def register(cls: type) -> type:
    """Class decorator: add a :class:`Detector` subclass to the registry."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate detector name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def available_detectors() -> List[str]:
    """Registered detector names, sorted (``"paper"`` first)."""
    names = sorted(_REGISTRY)
    if "paper" in names:
        names.remove("paper")
        names.insert(0, "paper")
    return names


def make_detector(name: str) -> Detector:
    """Instantiate a registered detector by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector {name!r}; available: {available_detectors()}"
        ) from None
    return factory()
