"""Pluggable malicious-beacon detectors and the head-to-head arena.

The package defines the :class:`~repro.detectors.base.Detector`
protocol (calibrate -> per-exchange verdict -> diagnostics), the
registry that :attr:`PipelineConfig.detector
<repro.core.pipeline.PipelineConfig>` resolves through, and four
implementations:

- ``paper`` — the reference: §2.1 consistency check + §2.2 replay
  cascade (:mod:`repro.detectors.paper`); bit-identical to the
  pre-arena pipeline.
- ``mahalanobis`` — multivariate outlier test over (residual, RTT)
  features (:mod:`repro.detectors.mahalanobis`).
- ``noisy`` — per-pair sequential probability ratio test over binary
  residual exceedances (:mod:`repro.detectors.noisy`).
- ``consistency`` — the cascade's deterministic filters only
  (:mod:`repro.detectors.consistency`).

See ``docs/ARENA.md`` for the protocol contract, the rivals' math, and
how to reproduce the committed comparison report.

Paper section: §2.1-§2.2 (the detection suite, generalised to rivals)
"""

from repro.detectors.base import (
    DECISION_ALERT,
    DECISION_CONSISTENT,
    Detector,
    DetectorContext,
    Exchange,
    Verdict,
    available_detectors,
    make_detector,
    register,
)
from repro.detectors.consistency import ConsistencyDetector
from repro.detectors.mahalanobis import MahalanobisDetector
from repro.detectors.noisy import NoisySequentialDetector
from repro.detectors.paper import PaperDetector

__all__ = [
    "DECISION_ALERT",
    "DECISION_CONSISTENT",
    "Detector",
    "DetectorContext",
    "Exchange",
    "Verdict",
    "available_detectors",
    "make_detector",
    "register",
    "PaperDetector",
    "MahalanobisDetector",
    "NoisySequentialDetector",
    "ConsistencyDetector",
]
