"""Deterministic in-range consistency detector (Delaët-style rival).

A fully deterministic variant of the paper's cascade: every filter is a
geometric or calibrated-bound test, with the probabilistic (rate
``p_d``) wormhole detector removed. An inconsistent signal is

1. **discarded** when the declared location is farther than the radio
   range (it cannot have arrived directly — the §2.2.1 distance
   condition, here the *only* wormhole defence);
2. **discarded** when the measured RTT exceeds the calibrated §2.2.2
   ``x_max`` (a local replay);
3. **indicted** otherwise.

Determinism is the selling point — verdicts are a pure function of the
exchange, no coins anywhere — and the arena quantifies its price:
wormhole replays whose declared location happens to land inside the
receiver's range pass filter 1 with probability 1 (the paper's detector
catches them at rate ``p_d``), and each such survivor indicts a benign
victim. The RTT is only measured for inconsistent, in-range signals,
mirroring the paper detector's lazy-measurement economy.

Paper section: §2.2 (the cascade restricted to its deterministic
filters; cf. Delaët et al., PAPERS.md)
"""

from __future__ import annotations

from typing import Dict

from repro.detectors.base import (
    DECISION_ALERT,
    DECISION_CONSISTENT,
    Detector,
    DetectorContext,
    Exchange,
    Verdict,
    register,
)
from repro.utils.geometry import distance


@register
class ConsistencyDetector(Detector):
    """The paper's deterministic filters, without the ``p_d`` coin."""

    name = "consistency"

    def __init__(self) -> None:
        self._max_error_ft = 0.0
        self._comm_range_ft = 0.0
        self._x_max = float("inf")
        self.evaluated = 0
        self.discarded_out_of_range = 0
        self.discarded_rtt = 0

    def calibrate(self, context: DetectorContext) -> None:
        """Take the error bound, radio range, and honest-RTT ceiling."""
        self._max_error_ft = context.max_ranging_error_ft
        self._comm_range_ft = context.comm_range_ft
        self._x_max = context.rtt_calibration.x_max

    def evaluate(self, exchange: Exchange) -> Verdict:
        """Consistency, range, and RTT bounds — in that order."""
        self.evaluated += 1
        calculated = distance(
            exchange.detector_position, exchange.declared_position
        )
        residual = abs(calculated - exchange.measured_distance_ft)
        if residual <= self._max_error_ft:
            return Verdict(
                DECISION_CONSISTENT, indict=False, signal_consistent=True
            )
        if calculated > self._comm_range_ft:
            self.discarded_out_of_range += 1
            return Verdict(
                "replayed_wormhole", indict=False, signal_consistent=False
            )
        if exchange.rtt_cycles() > self._x_max:
            self.discarded_rtt += 1
            return Verdict(
                "replayed_local", indict=False, signal_consistent=False
            )
        return Verdict(DECISION_ALERT, indict=True, signal_consistent=False)

    def diagnostics(self) -> Dict[str, object]:
        """Calibrated bounds plus discard counters."""
        return {
            "x_max": self._x_max,
            "evaluated": self.evaluated,
            "discarded_out_of_range": self.discarded_out_of_range,
            "discarded_rtt": self.discarded_rtt,
        }
