"""Routing quality metrics: delivery ratio and path stretch."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.routing.gpsr import GpsrRouter
from repro.sim.network import Network


def physical_graph(network: Network) -> nx.Graph:
    """The ground-truth connectivity graph (radio range edges)."""
    graph = nx.Graph()
    for node in network.nodes():
        graph.add_node(node.node_id)
    for node in network.nodes():
        for neighbor in network.neighbors_of(node):
            if node.node_id < neighbor.node_id:
                graph.add_edge(node.node_id, neighbor.node_id)
    return graph


def delivery_ratio(
    router: GpsrRouter, pairs: Sequence[Tuple[int, int]]
) -> float:
    """Fraction of (src, dst) pairs the router delivers."""
    if not pairs:
        return 0.0
    delivered = sum(1 for s, d in pairs if router.route(s, d).delivered)
    return delivered / len(pairs)


def mean_path_stretch(
    router: GpsrRouter,
    pairs: Sequence[Tuple[int, int]],
    *,
    graph: Optional[nx.Graph] = None,
) -> float:
    """Mean (GPSR hops / shortest-path hops) over delivered pairs.

    Pairs the router fails to deliver, or that are physically
    disconnected, are skipped; returns NaN when nothing is comparable.
    """
    g = graph if graph is not None else physical_graph(router.network)
    stretches: List[float] = []
    for src, dst in pairs:
        result = router.route(src, dst)
        if not result.delivered:
            continue
        try:
            optimal = nx.shortest_path_length(g, src, dst)
        except nx.NetworkXNoPath:
            continue
        if optimal == 0:
            continue
        stretches.append(result.hops / optimal)
    if not stretches:
        return float("nan")
    return sum(stretches) / len(stretches)
