"""GPSR: greedy perimeter stateless routing (Karp & Kung, 2000).

Two modes, exactly as in the original protocol:

- **Greedy**: forward to the physical neighbour whose *believed* position
  is closest to the destination's believed position, requiring strict
  progress.
- **Perimeter**: at a local minimum (no neighbour closer than self),
  planarize the neighbourhood with the Gabriel-graph test and walk faces
  with the right-hand rule, switching faces where the walked edge crosses
  the line from the perimeter entry point ``L_p`` to the destination;
  return to greedy as soon as the current node is closer to the
  destination than ``L_p`` was.

All geometry uses *believed* positions (a lying beacon corrupts them);
connectivity uses physical positions (radio truth). A hop limit bounds
pathological perimeter walks caused by corrupted coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.routing.table import PositionTable
from repro.sim.network import Network
from repro.utils.geometry import Point, distance


@dataclass
class RouteResult:
    """Outcome of routing one packet.

    Attributes:
        delivered: True when the packet reached the destination node.
        path: node ids visited, starting at the source.
        greedy_hops / perimeter_hops: per-mode hop counts.
        failure_reason: why routing stopped, when not delivered.
    """

    delivered: bool
    path: List[int] = field(default_factory=list)
    greedy_hops: int = 0
    perimeter_hops: int = 0
    failure_reason: str = ""

    @property
    def hops(self) -> int:
        """Total hops taken."""
        return max(0, len(self.path) - 1)


def _segments_cross(a: Point, b: Point, c: Point, d: Point) -> bool:
    """True when open segments ab and cd properly intersect."""

    def orient(p: Point, q: Point, r: Point) -> float:
        return (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)

    o1 = orient(a, b, c)
    o2 = orient(a, b, d)
    o3 = orient(c, d, a)
    o4 = orient(c, d, b)
    return (o1 * o2 < 0) and (o3 * o4 < 0)


class GpsrRouter:
    """Routes packets over a network snapshot using believed positions.

    Args:
        network: physical topology (who can hear whom).
        table: believed positions (possibly corrupted).
        hop_limit: safety bound on route length.
    """

    def __init__(
        self,
        network: Network,
        table: PositionTable,
        *,
        hop_limit: int = 200,
    ) -> None:
        if hop_limit < 1:
            raise ConfigurationError(f"hop_limit must be >= 1, got {hop_limit}")
        self.network = network
        self.table = table
        self.hop_limit = hop_limit
        self._neighbors: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> List[int]:
        """Physical radio neighbours that have believed positions."""
        cached = self._neighbors.get(node_id)
        if cached is None:
            node = self.network.node(node_id)
            cached = [
                n.node_id
                for n in self.network.neighbors_of(node)
                if self.table.knows(n.node_id)
            ]
            self._neighbors[node_id] = cached
        return cached

    def planar_neighbors(self, node_id: int) -> List[int]:
        """Gabriel-graph filter over believed positions.

        Edge (u, v) survives iff no common-range witness w lies strictly
        inside the circle with diameter uv.
        """
        u = self.table.position_of(node_id)
        kept = []
        candidates = self.neighbors(node_id)
        for v_id in candidates:
            v = self.table.position_of(v_id)
            mid = Point((u.x + v.x) / 2.0, (u.y + v.y) / 2.0)
            radius = distance(u, v) / 2.0
            blocked = False
            for w_id in candidates:
                if w_id == v_id:
                    continue
                w = self.table.position_of(w_id)
                if distance(w, mid) < radius - 1e-9:
                    blocked = True
                    break
            if not blocked:
                kept.append(v_id)
        return kept

    # ------------------------------------------------------------------
    # Forwarding rules
    # ------------------------------------------------------------------
    def _greedy_next(self, current: int, dst: int) -> Optional[int]:
        dst_pos = self.table.position_of(dst)
        best_id = None
        best_dist = self.table.position_of(current).distance_to(dst_pos)
        for n_id in self.neighbors(current):
            d = self.table.position_of(n_id).distance_to(dst_pos)
            if d < best_dist - 1e-12:
                best_dist = d
                best_id = n_id
        return best_id

    def _right_hand_next(
        self, current: int, came_from_bearing: float
    ) -> Optional[int]:
        """First planar edge counterclockwise from the incoming bearing."""
        u = self.table.position_of(current)
        best_id = None
        best_sweep = None
        for v_id in self.planar_neighbors(current):
            v = self.table.position_of(v_id)
            bearing = math.atan2(v.y - u.y, v.x - u.x)
            sweep = (bearing - came_from_bearing) % (2.0 * math.pi)
            if sweep < 1e-12:
                sweep = 2.0 * math.pi  # the incoming edge itself: last resort
            if best_sweep is None or sweep < best_sweep:
                best_sweep = sweep
                best_id = v_id
        return best_id

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> RouteResult:
        """Route a packet from ``src`` to ``dst``."""
        if src == dst:
            return RouteResult(delivered=True, path=[src])
        if not (self.table.knows(src) and self.table.knows(dst)):
            return RouteResult(
                delivered=False, path=[src], failure_reason="unknown-position"
            )

        result = RouteResult(delivered=False, path=[src])
        current = src
        mode = "greedy"
        entry_point: Optional[Point] = None  # L_p
        prev: Optional[int] = None
        dst_pos = self.table.position_of(dst)

        while result.hops < self.hop_limit:
            if current == dst:
                result.delivered = True
                return result

            if mode == "greedy":
                nxt = self._greedy_next(current, dst)
                if nxt is not None:
                    result.greedy_hops += 1
                    prev, current = current, nxt
                    result.path.append(current)
                    continue
                # Local minimum: enter perimeter mode.
                mode = "perimeter"
                entry_point = self.table.position_of(current)
                # Start the walk as if arriving along the L_p->D direction.
                prev = None

            # Perimeter mode.
            cur_pos = self.table.position_of(current)
            if cur_pos.distance_to(dst_pos) < entry_point.distance_to(dst_pos) - 1e-12:
                mode = "greedy"
                entry_point = None
                continue
            if prev is None:
                came_bearing = math.atan2(
                    dst_pos.y - cur_pos.y, dst_pos.x - cur_pos.x
                )
            else:
                prev_pos = self.table.position_of(prev)
                came_bearing = math.atan2(
                    prev_pos.y - cur_pos.y, prev_pos.x - cur_pos.x
                )
            nxt = self._right_hand_next(current, came_bearing)
            if nxt is None:
                result.failure_reason = "isolated-node"
                return result
            # Face change: if the edge crosses L_p -> D nearer to D, resume
            # the walk on the new face (re-anchor the entry point).
            nxt_pos = self.table.position_of(nxt)
            if entry_point is not None and _segments_cross(
                entry_point, dst_pos, cur_pos, nxt_pos
            ):
                crossing_progress = min(
                    cur_pos.distance_to(dst_pos), nxt_pos.distance_to(dst_pos)
                )
                if crossing_progress < entry_point.distance_to(dst_pos):
                    entry_point = (
                        cur_pos
                        if cur_pos.distance_to(dst_pos)
                        < nxt_pos.distance_to(dst_pos)
                        else nxt_pos
                    )
            result.perimeter_hops += 1
            prev, current = current, nxt
            result.path.append(current)

        result.failure_reason = "hop-limit"
        return result
