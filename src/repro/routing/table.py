"""Position tables: what each node *believes* about locations.

Radio connectivity is physical (ground truth), but routing decisions use
*believed* positions — the output of localization, possibly corrupted by
malicious beacons. Keeping the two separate is what lets the routing bench
measure the damage of location attacks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.utils.geometry import Point


class PositionTable:
    """A mapping from node id to believed position.

    Args:
        positions: initial beliefs.
    """

    def __init__(self, positions: Optional[Dict[int, Point]] = None) -> None:
        self._positions: Dict[int, Point] = dict(positions or {})

    @classmethod
    def ground_truth(cls, network: Network) -> "PositionTable":
        """Beliefs equal to physical reality (the no-attack baseline)."""
        return cls({n.node_id: n.position for n in network.nodes()})

    @classmethod
    def from_estimates(
        cls,
        network: Network,
        estimates: Dict[int, Point],
        *,
        fallback_to_truth: bool = True,
    ) -> "PositionTable":
        """Beliefs from localization output.

        Args:
            network: supplies the node universe.
            estimates: node_id -> estimated position (e.g. from the
                pipeline's agents).
            fallback_to_truth: nodes without an estimate (beacons, unsolved
                sensors) use their true position when True, else they are
                absent from the table (and unroutable).
        """
        table: Dict[int, Point] = {}
        for node in network.nodes():
            if node.node_id in estimates:
                table[node.node_id] = estimates[node.node_id]
            elif fallback_to_truth:
                table[node.node_id] = node.position
        return cls(table)

    def knows(self, node_id: int) -> bool:
        """True when the table has a belief for ``node_id``."""
        return node_id in self._positions

    def position_of(self, node_id: int) -> Point:
        """The believed position of ``node_id``."""
        try:
            return self._positions[node_id]
        except KeyError:
            raise ConfigurationError(
                f"no believed position for node {node_id}"
            ) from None

    def set(self, node_id: int, position: Point) -> None:
        """Overwrite one belief (used by attack injection in tests)."""
        self._positions[node_id] = position

    def node_ids(self) -> Iterable[int]:
        """Ids with a believed position."""
        return self._positions.keys()

    def believed_distance(self, a: int, b: int) -> float:
        """Distance between two believed positions."""
        return self.position_of(a).distance_to(self.position_of(b))
