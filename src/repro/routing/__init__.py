"""Geographic routing substrate (GPSR — Karp & Kung, MobiCom 2000).

The paper's introduction motivates secure localization partly through
geographic routing: "in geographical routing (e.g., GPSR), sensor nodes
make routing decisions at least partially based on their own and their
neighbors' locations". This package implements GPSR — greedy forwarding
plus perimeter (face) routing on a Gabriel-graph planarization — over the
simulator, so the downstream damage of corrupted positions (and the
benefit of the paper's defence) can be measured end to end.
"""

from repro.routing.table import PositionTable
from repro.routing.gpsr import GpsrRouter, RouteResult
from repro.routing.metrics import delivery_ratio, mean_path_stretch

__all__ = [
    "PositionTable",
    "GpsrRouter",
    "RouteResult",
    "delivery_ratio",
    "mean_path_stretch",
]
