"""Ablation: the TDoA caveat (paper §2.3).

"When TDoA technique is used for measuring distances to beacon nodes, the
proposed techniques do not work as effective as in other techniques (e.g.,
RSSI, ToA), since it is usually more difficult to protect ultrasound
signals."

We model the attack that sentence implies: an external attacker near a
link injects/advances the ultrasound pulse of a **benign** beacon's reply
(no keys needed), biasing the measurement. The detecting node's
consistency check then fires against the *benign* beacon. The bench sweeps
the attacker's manipulation probability and compares false-accusation
rates for TDoA (unprotected feature) vs RSSI (feature manipulation
requires being the authenticated transmitter, i.e. impossible for an
external attacker).
"""

import random

from repro.core.signal_detector import MaliciousSignalDetector
from repro.experiments.series import FigureData
from repro.localization.measurement import RssiModel, TdoaModel
from repro.utils.geometry import Point


def sweep_manipulation(
    probs=(0.0, 0.1, 0.2, 0.4), trials=500, seed=67, injection_ft=-30.0
):
    rng = random.Random(seed)
    fig = FigureData(
        figure_id="ablation_tdoa",
        title="False accusations of benign beacons: TDoA vs RSSI",
        x_label="external ultrasound-manipulation probability",
        y_label="benign beacons falsely flagged",
        notes=f"injection shifts TDoA by {injection_ft} ft; RSSI immune",
    )
    models = {"tdoa": TdoaModel(), "rssi": RssiModel()}
    series = {name: fig.new_series(name) for name in models}

    for p_m in probs:
        flagged = {name: 0 for name in models}
        for _ in range(trials):
            detector_pos = Point(0.0, 0.0)
            beacon_pos = Point(rng.uniform(60, 140), rng.uniform(-40, 40))
            true_dist = detector_pos.distance_to(beacon_pos)
            manipulated = rng.random() < p_m
            for name, model in models.items():
                # External manipulation only lands on unprotected features.
                bias = (
                    injection_ft
                    if manipulated and not model.protects_ranging_feature
                    else 0.0
                )
                measured = model.measure_distance(true_dist, rng, bias_ft=bias)
                check = MaliciousSignalDetector(
                    max_error_ft=model.max_error_ft
                )
                if check.is_malicious(detector_pos, beacon_pos, measured):
                    flagged[name] += 1
        for name in models:
            series[name].append(p_m, flagged[name] / trials)
    return fig


def test_ablation_tdoa(run_once, save_figure):
    fig = run_once(sweep_manipulation)
    save_figure(fig)
    tdoa = fig.series["tdoa"]
    rssi = fig.series["rssi"]
    # RSSI: external attackers cannot touch the feature — no false alarms.
    assert max(rssi.y) == 0.0
    # TDoA: false accusations track the manipulation probability.
    assert tdoa.y_at(0.0) == 0.0
    assert tdoa.y_at(0.4) > 0.25
    assert tdoa.y_at(0.4) > tdoa.y_at(0.1)
