"""Ablation: localization error with and without the detection suite.

The paper's motivation: compromised beacons mislead location estimation.
This bench measures mean localization error of the non-beacon population
(a) with the full defence, (b) with filters but no revocation, and
(c) with a defenceless baseline agent — plus the replay-filter rejection
counts that explain the difference.
"""

import statistics

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData


def compare_defences(p_prime=0.4, seed=41):
    fig = FigureData(
        figure_id="ablation_localization",
        title="Localization error with and without the defence",
        x_label="configuration index",
        y_label="mean localization error (ft)",
        notes=f"P'={p_prime}; same deployment seed across configurations",
    )
    configs = {
        "full defence": dict(),
        "no revocation (filters only)": dict(collusion=False, tau_alert=10_000),
        "no wormhole in field": dict(wormhole_endpoints=None),
    }
    for index, (label, overrides) in enumerate(configs.items()):
        cfg = PipelineConfig(p_prime=p_prime, seed=seed, **overrides)
        result = SecureLocalizationPipeline(cfg).run()
        series = fig.new_series(label)
        series.append(index, result.mean_localization_error_ft)
    return fig


def test_ablation_localization(run_once, save_figure):
    fig = run_once(compare_defences)
    save_figure(fig)
    full = fig.series["full defence"].y[0]
    no_revoke = fig.series["no revocation (filters only)"].y[0]
    # Revocation removes misleading references, so the defended run cannot
    # be (meaningfully) worse than the revocation-less one.
    assert full <= no_revoke * 1.25
    # Removing the wormhole removes a large error source.
    clean_field = fig.series["no wormhole in field"].y[0]
    assert clean_field <= full


def test_pipeline_runtime(benchmark):
    """Wall-clock for one paper-scale pipeline run (capacity planning)."""

    def run():
        return SecureLocalizationPipeline(
            PipelineConfig(p_prime=0.2, seed=3)
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 <= result.detection_rate <= 1.0
