"""Performance: the pipeline's fast paths vs their reference twins.

Each benchmarked fast path is asserted *identical* to the slow path it
replaces before its clock is read — a wrong fast path must never look
like a fast one:

- **reachability** (`_reachable_beacons`): beacon-grid query + cached
  wormhole-endpoint sets vs the full O(N_b) scan with pairwise
  ``wormhole_between`` checks. The speedup is asserted >= 3x.
- **metrics collection** (`_requester_counts`): one grid query per
  malicious beacon vs an O(N) scan per malicious beacon.
- **full trial**: end-to-end `run()` with the vectorized batch core
  (``use_vectorized_core=True``, the ``repro.vec`` SoA kernels) vs the
  scalar event-driven reference. The ``PipelineResult`` objects must
  compare equal to the last bit, and the speedup is asserted
  >= 10x (``--quick`` smoke mode relaxes the floor, not the equality).

Every measurement lands in ``BENCH_pipeline.json`` at the repo root so
future PRs have a perf trajectory to compare against; per-phase cost
tables derived from these numbers live in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

#: The paper's Section 4 deployment — the workload the fast paths exist for.
PAPER_CONFIG = PipelineConfig()

#: The full-trial comparison runs the paper deployment end to end, once
#: per path (~1.7 s scalar): the honest number, since it includes the
#: build/calibration work the batch core cannot touch.
TRIAL_CONFIG = PipelineConfig(seed=11)

#: Smoke-mode deployment (--quick): same shape, ~6x fewer nodes.
QUICK_TRIAL_CONFIG = PipelineConfig(
    n_total=150,
    n_beacons=25,
    n_malicious=4,
    field_width_ft=500.0,
    field_height_ft=500.0,
    rtt_calibration_samples=300,
    seed=11,
)

ASSERTED_REACHABILITY_SPEEDUP = 3.0
ASSERTED_FULL_TRIAL_SPEEDUP = 10.0


def _best_of(fn, repeats=3):
    """Minimum wall clock of ``repeats`` runs (noise-robust micro timing)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _record_baseline(name, fast_s, naive_s):
    """Merge one benchmark's numbers into BENCH_pipeline.json."""
    try:
        data = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data.setdefault("schema", 1)
    data["environment"] = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    data.setdefault("benchmarks", {})[name] = {
        "fast_s": round(fast_s, 6),
        "naive_s": round(naive_s, 6),
        "speedup": round(naive_s / fast_s, 2),
    }
    BASELINE_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data["benchmarks"][name]


def _speedup_figure(
    figure_id, title, fast_s, naive_s, notes,
    x_label="path (1=naive, 2=spatial index)",
):
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="seconds",
        notes=notes,
    )
    wall = fig.new_series("wall clock (s)")
    wall.append(1, naive_s)
    wall.append(2, fast_s)
    return fig


def test_reachability_fast_path(save_figure):
    """Beacon reachability: grid + wormhole cache vs the naive scan."""
    pipeline = SecureLocalizationPipeline(PAPER_CONFIG).build()
    queriers = pipeline.agents + pipeline.benign_beacons

    def fast():
        return [pipeline._reachable_beacons(n) for n in queriers]

    def naive():
        return [pipeline._reachable_beacons_naive(n) for n in queriers]

    fast_s, fast_result = _best_of(fast)
    naive_s, naive_result = _best_of(naive)

    # Correctness before speed: same beacons, same order, every querier.
    assert [[b.node_id for b in r] for r in fast_result] == [
        [b.node_id for b in r] for r in naive_result
    ]

    entry = _record_baseline("reachability", fast_s, naive_s)
    save_figure(
        _speedup_figure(
            "perf_reachability",
            "Reachability query: naive scan vs spatial index",
            fast_s,
            naive_s,
            notes=(
                f"{len(queriers)} queriers x {PAPER_CONFIG.n_beacons} beacons "
                f"(paper deployment); speedup {entry['speedup']}x"
            ),
        )
    )
    assert naive_s / fast_s >= ASSERTED_REACHABILITY_SPEEDUP, (
        f"reachability fast path only {naive_s / fast_s:.2f}x faster "
        f"(need >= {ASSERTED_REACHABILITY_SPEEDUP}x)"
    )


def test_metrics_collection_fast_path(save_figure):
    """Requesters-per-malicious scan: grid query vs full population scan."""
    pipeline = SecureLocalizationPipeline(PAPER_CONFIG).build()
    malicious_ids = {b.node_id for b in pipeline.malicious_beacons}
    naive_config = dataclasses.replace(PAPER_CONFIG, use_spatial_index=False)

    def fast():
        pipeline.config = PAPER_CONFIG
        return [
            pipeline._requester_counts(malicious_ids) for _ in range(10)
        ][-1]

    def naive():
        pipeline.config = naive_config
        return [
            pipeline._requester_counts(malicious_ids) for _ in range(10)
        ][-1]

    fast_s, fast_counts = _best_of(fast)
    naive_s, naive_counts = _best_of(naive)
    pipeline.config = PAPER_CONFIG
    assert fast_counts == naive_counts

    entry = _record_baseline("metrics_collection", fast_s, naive_s)
    save_figure(
        _speedup_figure(
            "perf_metrics",
            "Metrics requester scan: naive vs spatial index",
            fast_s,
            naive_s,
            notes=(
                f"{PAPER_CONFIG.n_malicious} malicious beacons x "
                f"{PAPER_CONFIG.n_total - PAPER_CONFIG.n_malicious} "
                f"candidates, 10 rounds; speedup {entry['speedup']}x"
            ),
        )
    )
    # Informative floor only: the asserted bar lives on reachability.
    assert naive_s / fast_s > 1.0


def test_full_trial_speedup(save_figure, quick):
    """End-to-end trial, vectorized core vs scalar: identical, >= 10x.

    The scalar run is the reference oracle; the vectorized run must
    reproduce its ``PipelineResult`` exactly (the ``repro.vec`` stream-
    parity rules make that a bit-identity, not a tolerance). Only then
    do the clocks count. ``--quick`` keeps the equality assertion on a
    smaller deployment but drops the 10x floor — CI smoke runners have
    noisy clocks and should gate on correctness, not timing.
    """
    scalar_config = QUICK_TRIAL_CONFIG if quick else TRIAL_CONFIG
    vec_config = dataclasses.replace(scalar_config, use_vectorized_core=True)

    # Best-of timing, like every other bench here: the first vectorized
    # run pays one-time NumPy/kernel import costs that say nothing about
    # the steady-state cost of a trial.
    scalar_s, scalar_result = _best_of(
        lambda: SecureLocalizationPipeline(scalar_config).run(),
        repeats=1 if quick else 2,
    )
    vec_s, vec_result = _best_of(
        lambda: SecureLocalizationPipeline(vec_config).run(),
        repeats=2 if quick else 3,
    )

    # The whole point: the batch core changes nothing but the clock.
    assert vec_result == scalar_result

    if quick:
        # Smoke floor only: the batch path must not be a slowdown.
        assert scalar_s / vec_s > 1.0
        return

    entry = _record_baseline("full_trial", vec_s, scalar_s)
    save_figure(
        _speedup_figure(
            "perf_full_trial",
            "Full pipeline trial: scalar core vs vectorized core",
            vec_s,
            scalar_s,
            notes=(
                f"{scalar_config.n_total} nodes, "
                f"{scalar_config.n_beacons} beacons, wormhole on; "
                f"bit-identical results; speedup {entry['speedup']}x"
            ),
            x_label="path (1=scalar core, 2=vectorized core)",
        )
    )
    assert scalar_s / vec_s >= ASSERTED_FULL_TRIAL_SPEEDUP, (
        f"vectorized core only {scalar_s / vec_s:.2f}x faster "
        f"(need >= {ASSERTED_FULL_TRIAL_SPEEDUP}x)"
    )
