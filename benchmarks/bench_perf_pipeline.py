"""Performance: spatial-index fast paths vs the naive reference oracle.

Three hot paths gained grid-index fast paths (PipelineConfig
``use_spatial_index``); each is benchmarked against the naive scan it
replaced, on the same deployment, with results asserted identical first
— a wrong fast path must never look like a fast one:

- **reachability** (`_reachable_beacons`): beacon-grid query + cached
  wormhole-endpoint sets vs the full O(N_b) scan with pairwise
  ``wormhole_between`` checks. The speedup is asserted >= 3x.
- **metrics collection** (`_requester_counts`): one grid query per
  malicious beacon vs an O(N) scan per malicious beacon.
- **full trial**: end-to-end `run()` with the index on vs off
  (bit-identical `PipelineResult`, measured speedup recorded).

Every measurement lands in ``BENCH_pipeline.json`` at the repo root so
future PRs have a perf trajectory to compare against.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

#: The paper's Section 4 deployment — the workload the fast paths exist for.
PAPER_CONFIG = PipelineConfig()

#: The full-trial comparison runs the paper deployment end to end, once
#: per path (~1.5 s each): the honest number, since engine/crypto work
#: the index cannot touch dominates a whole trial.
TRIAL_CONFIG = PipelineConfig(seed=11)

ASSERTED_REACHABILITY_SPEEDUP = 3.0


def _best_of(fn, repeats=3):
    """Minimum wall clock of ``repeats`` runs (noise-robust micro timing)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _record_baseline(name, fast_s, naive_s):
    """Merge one benchmark's numbers into BENCH_pipeline.json."""
    try:
        data = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data.setdefault("schema", 1)
    data["environment"] = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    data.setdefault("benchmarks", {})[name] = {
        "fast_s": round(fast_s, 6),
        "naive_s": round(naive_s, 6),
        "speedup": round(naive_s / fast_s, 2),
    }
    BASELINE_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data["benchmarks"][name]


def _speedup_figure(figure_id, title, fast_s, naive_s, notes):
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label="path (1=naive, 2=spatial index)",
        y_label="seconds",
        notes=notes,
    )
    wall = fig.new_series("wall clock (s)")
    wall.append(1, naive_s)
    wall.append(2, fast_s)
    return fig


def test_reachability_fast_path(save_figure):
    """Beacon reachability: grid + wormhole cache vs the naive scan."""
    pipeline = SecureLocalizationPipeline(PAPER_CONFIG).build()
    queriers = pipeline.agents + pipeline.benign_beacons

    def fast():
        return [pipeline._reachable_beacons(n) for n in queriers]

    def naive():
        return [pipeline._reachable_beacons_naive(n) for n in queriers]

    fast_s, fast_result = _best_of(fast)
    naive_s, naive_result = _best_of(naive)

    # Correctness before speed: same beacons, same order, every querier.
    assert [[b.node_id for b in r] for r in fast_result] == [
        [b.node_id for b in r] for r in naive_result
    ]

    entry = _record_baseline("reachability", fast_s, naive_s)
    save_figure(
        _speedup_figure(
            "perf_reachability",
            "Reachability query: naive scan vs spatial index",
            fast_s,
            naive_s,
            notes=(
                f"{len(queriers)} queriers x {PAPER_CONFIG.n_beacons} beacons "
                f"(paper deployment); speedup {entry['speedup']}x"
            ),
        )
    )
    assert naive_s / fast_s >= ASSERTED_REACHABILITY_SPEEDUP, (
        f"reachability fast path only {naive_s / fast_s:.2f}x faster "
        f"(need >= {ASSERTED_REACHABILITY_SPEEDUP}x)"
    )


def test_metrics_collection_fast_path(save_figure):
    """Requesters-per-malicious scan: grid query vs full population scan."""
    pipeline = SecureLocalizationPipeline(PAPER_CONFIG).build()
    malicious_ids = {b.node_id for b in pipeline.malicious_beacons}
    naive_config = dataclasses.replace(PAPER_CONFIG, use_spatial_index=False)

    def fast():
        pipeline.config = PAPER_CONFIG
        return [
            pipeline._requester_counts(malicious_ids) for _ in range(10)
        ][-1]

    def naive():
        pipeline.config = naive_config
        return [
            pipeline._requester_counts(malicious_ids) for _ in range(10)
        ][-1]

    fast_s, fast_counts = _best_of(fast)
    naive_s, naive_counts = _best_of(naive)
    pipeline.config = PAPER_CONFIG
    assert fast_counts == naive_counts

    entry = _record_baseline("metrics_collection", fast_s, naive_s)
    save_figure(
        _speedup_figure(
            "perf_metrics",
            "Metrics requester scan: naive vs spatial index",
            fast_s,
            naive_s,
            notes=(
                f"{PAPER_CONFIG.n_malicious} malicious beacons x "
                f"{PAPER_CONFIG.n_total - PAPER_CONFIG.n_malicious} "
                f"candidates, 10 rounds; speedup {entry['speedup']}x"
            ),
        )
    )
    # Informative floor only: the asserted bar lives on reachability.
    assert naive_s / fast_s > 1.0


def test_full_trial_speedup(save_figure):
    """End-to-end trial with the index on vs off: identical, measured."""
    fast_config = TRIAL_CONFIG
    naive_config = dataclasses.replace(TRIAL_CONFIG, use_spatial_index=False)

    start = time.perf_counter()
    fast_result = SecureLocalizationPipeline(fast_config).run()
    fast_s = time.perf_counter() - start

    start = time.perf_counter()
    naive_result = SecureLocalizationPipeline(naive_config).run()
    naive_s = time.perf_counter() - start

    # The whole point: the fast path changes nothing but the clock.
    assert fast_result == naive_result

    entry = _record_baseline("full_trial", fast_s, naive_s)
    save_figure(
        _speedup_figure(
            "perf_full_trial",
            "Full pipeline trial: naive vs spatial index",
            fast_s,
            naive_s,
            notes=(
                f"{fast_config.n_total} nodes, {fast_config.n_beacons} "
                f"beacons, wormhole on; bit-identical results; "
                f"speedup {entry['speedup']}x"
            ),
        )
    )
