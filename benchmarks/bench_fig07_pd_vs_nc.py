"""Figure 7: detection rate vs the number of requesting nodes N_c.

Paper series: P' in {0.1, 0.2, 0.3, 0.4} with m = 8, tau = 1. Shape: more
requesters mean more alerts, so P_d grows monotonically in N_c.
"""

from repro.experiments import figures


def test_figure07_pd_vs_nc(run_once, save_figure):
    fig = run_once(figures.figure07_detection_vs_nc)
    save_figure(fig)
    for s in fig.series.values():
        assert s.y == sorted(s.y)
    assert fig.series["P'=0.4"].y_at(100) > 0.9
