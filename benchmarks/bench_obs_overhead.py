"""Observability overhead: observe=off must cost nothing, observe=on little.

Three comparisons on the paper's Section 4 deployment, results asserted
bit-identical first — instrumentation that changed a number would be a
bug, not an overhead:

- **observe=off** (``observe=None``, the default): the only cost is a
  handful of ``is None`` checks, so the trial must stay within 2% of
  the ``full_trial.naive_s`` baseline in ``BENCH_pipeline.json`` — the
  scalar end-to-end reference, the same code path this bench runs
  (``fast_s`` now times the ``repro.vec`` batch core, a different
  engine; re-run ``bench_perf_pipeline.py`` first on a new machine);
- **observe=off, idle TelemetryServer attached**: a live
  :class:`repro.obs.TelemetryServer` bound on an ephemeral port but
  never scraped must leave the same 2% gate intact — serving telemetry
  is daemon-thread territory, not hot-path work;
- **observe=on** (``ObserveConfig()``): spans, RTT histograms, and the
  finalize-time metric fold. Recorded, not asserted — the on-path is
  opt-in and its cost is the price of the telemetry.

Every measurement lands in ``BENCH_obs.json`` at the repo root so
future PRs have an overhead trajectory to compare against
(``tools/bench_report.py`` tracks the headline seconds over time).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.obs import ObserveConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_pipeline.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_obs.json"

#: Same trial the full_trial baseline in BENCH_pipeline.json times.
TRIAL_CONFIG = PipelineConfig(seed=11)

#: observe=off may not cost more than this over the recorded baseline.
MAX_OFF_OVERHEAD = 0.02


def _best_of(fn, repeats=3):
    """Minimum wall clock of ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _run(observe):
    config = PipelineConfig(seed=TRIAL_CONFIG.seed, observe=observe)
    return SecureLocalizationPipeline(config).run()


def _baseline_seconds():
    # naive_s is the scalar end-to-end trial — the path this bench runs;
    # fast_s times the vectorized batch core, a different engine.
    data = json.loads(BASELINE_PATH.read_text())
    return data["benchmarks"]["full_trial"]["naive_s"]


def _record(off_s, idle_server_s, on_s, baseline_s):
    data = {
        "schema": 1,
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": {
            "full_trial_observe_off": {
                "seconds": round(off_s, 6),
                "vs_baseline_pct": round(100 * (off_s / baseline_s - 1), 2),
            },
            "full_trial_observe_off_idle_server": {
                "seconds": round(idle_server_s, 6),
                "vs_baseline_pct": round(
                    100 * (idle_server_s / baseline_s - 1), 2
                ),
            },
            "full_trial_observe_on": {
                "seconds": round(on_s, 6),
                "vs_baseline_pct": round(100 * (on_s / baseline_s - 1), 2),
            },
            "baseline_full_trial_s": round(baseline_s, 6),
        },
    }
    OUTPUT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def test_observe_overhead():
    """observe=off within 2% of the recorded baseline; on-path recorded."""
    from repro.obs import TelemetryServer

    baseline_s = _baseline_seconds()

    off_s, off_result = _best_of(lambda: _run(None))
    with TelemetryServer(port=0):
        idle_server_s, idle_result = _best_of(lambda: _run(None))
    on_s, on_result = _best_of(lambda: _run(ObserveConfig()))

    # Correctness before speed: observation never changes a result.
    assert on_result == off_result
    assert idle_result == off_result

    data = _record(off_s, idle_server_s, on_s, baseline_s)
    print(json.dumps(data["benchmarks"], indent=2, sort_keys=True))

    for label, seconds in (
        ("observe=off", off_s),
        ("observe=off + idle telemetry server", idle_server_s),
    ):
        assert seconds <= baseline_s * (1 + MAX_OFF_OVERHEAD), (
            f"{label} trial took {seconds:.3f}s vs baseline "
            f"{baseline_s:.3f}s (> {MAX_OFF_OVERHEAD:.0%} overhead); if the "
            f"machine changed, re-run bench_perf_pipeline.py to refresh "
            f"BENCH_pipeline.json"
        )


if __name__ == "__main__":
    test_observe_overhead()
