"""Ablation: the detecting-ID arms race (paper §2.1 discussion).

An inferring attacker matches each request's measured distance against
the known beacon-to-beacon distance rings and plays innocent toward
suspected probes. The bench sweeps the detecting nodes' probe-power
randomization (the paper's prescribed countermeasure) and reports how
often the attacker evades an alert.
"""

import random

from repro.attacks.inference import InferringMaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy
from repro.core.detecting import DetectingBeacon
from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.experiments.series import FigureData
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


def _duel(
    randomization_ft: float,
    seed: int,
    *,
    mobility_step_ft: float = 0.0,
    lie_ft: float = 150.0,
) -> bool:
    """One detector-vs-inferring-attacker duel; True when an alert fired.

    ``mobility_step_ft`` > 0 models the paper's other countermeasure
    ("if sensor nodes have certain mobility"): the detecting node moves a
    random step between probes, so its request distances no longer match
    the attacker's beacon-ring table.

    ``lie_ft`` sizes the attacker's declared-location lie. A lie large
    enough to push the declared location out of radio range is discarded
    by the Section 2.2.1 range check as a wormhole replay (no alert, but
    also no misled victim), so the mobility series uses an in-range lie
    to measure detection of *effective* attacks.
    """
    engine = Engine()
    rngs = RngRegistry(seed)
    net = Network(engine, rngs=rngs)
    km = KeyManager()
    bs = BaseStation(km, RevocationConfig(tau_report=5, tau_alert=0))
    cal = calibrate_rtt(net.rtt_model, rngs.stream("cal"), samples=500)
    rng = random.Random(seed)

    detector_pos = Point(0.0, 0.0)
    attacker_pos = Point(rng.uniform(60, 140), rng.uniform(-60, 60))

    km.enroll(1, is_beacon=True)
    detector = DetectingBeacon(
        1,
        detector_pos,
        km,
        signal_detector=MaliciousSignalDetector(max_error_ft=10.0),
        filter_cascade=ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                1.0, rngs.stream("wd")
            ),
            local_replay_detector=LocalReplayDetector(cal),
            comm_range_ft=net.radio.comm_range_ft,
        ),
        base_station=bs,
        detecting_ids=km.allocate_detecting_ids(1, 8),
        probe_power_randomization_ft=randomization_ft,
    )
    net.add_node(detector)
    for did in detector.detecting_ids:
        net.add_alias(did, 1)

    km.enroll(2, is_beacon=True)
    net.add_node(
        InferringMaliciousBeacon(
            2,
            attacker_pos,
            km,
            AdversaryStrategy(p_n=0.0, location_lie_ft=lie_ft, seed=seed),
            known_beacon_positions={1: detector_pos},
            ring_tolerance_ft=22.0,
        )
    )
    if mobility_step_ft <= 0.0:
        detector.probe_all_ids(2)
        engine.run()
        return bs.is_revoked(2)

    # Mobile detector: step to a new spot around home before each probe
    # (stepping from home rather than a cumulative walk keeps the duel
    # inside radio range of the attacker).
    for did in detector.detecting_ids:
        offset = Point(
            detector_pos.x + rng.uniform(-mobility_step_ft, mobility_step_ft),
            detector_pos.y + rng.uniform(-mobility_step_ft, mobility_step_ft),
        )
        net.update_position(detector, offset)
        detector.probe(2, did)
        engine.run()
    return bs.is_revoked(2)


def sweep_randomization(levels=(0.0, 20.0, 40.0, 80.0), duels=40, seed=83):
    fig = FigureData(
        figure_id="ablation_inference",
        title="Detection vs an inferring attacker: probe-power randomization",
        x_label="probe-power randomization (± ft)",
        y_label="attacker detected (fraction of duels)",
        notes="attacker plays innocent toward requests on a beacon ring; "
        "'mobility' series moves the detector +-40 ft between probes instead",
    )
    series = fig.new_series("detection rate")
    for level in levels:
        wins = sum(
            1 for d in range(duels) if _duel(level, seed + 101 * d)
        )
        series.append(level, wins / duels)
    mobile = fig.new_series("mobility countermeasure")
    for level in levels:
        wins = sum(
            1
            for d in range(duels)
            if _duel(0.0, seed + 101 * d, mobility_step_ft=40.0, lie_ft=50.0)
        )
        mobile.append(level, wins / duels)
    return fig


def test_ablation_inference(run_once, save_figure):
    fig = run_once(sweep_randomization)
    save_figure(fig)
    s = fig.series["detection rate"]
    # Naive probes (no randomization) are mostly unmasked and evaded...
    assert s.y_at(0.0) < 0.4
    # ...while strong randomization restores detection.
    assert s.y_at(80.0) > 0.7
    assert s.y_at(80.0) > s.y_at(0.0)
    # Mobility (the paper's other countermeasure) works too.
    assert fig.series["mobility countermeasure"].y_at(0.0) > 0.7
