"""Figure 11: random deployment of beacon nodes in the sensing field.

Paper: 1,000 sensor nodes in a 1000x1000 ft field; 110 beacons of which 10
are compromised (solid circles). This bench regenerates the scatter data.
"""

from repro.experiments import figures


def test_figure11_deployment(run_once, save_figure):
    fig = run_once(figures.figure11_deployment, seed=0)
    save_figure(fig)
    assert len(fig.series["benign beacons"].x) == 100
    assert len(fig.series["malicious beacons"].x) == 10
    for s in fig.series.values():
        assert all(0 <= x <= 1000 for x in s.x)
        assert all(0 <= y <= 1000 for y in s.y)
