"""Sensitivity of the detection scheme to injected faults.

The paper's evaluation (§4) assumes a clean network: no message loss
beyond what ARQ absorbs (§3.2) and RTTs inside the calibrated Figure-4
window (§2.2.2). These benches measure how the headline metrics —
detection rate, false positive rate, and N' (affected non-beacon nodes
per malicious beacon) — degrade as those assumptions are violated by the
:mod:`repro.faults` injection layer:

- **loss sweep**: Bernoulli packet loss applied to every delivery
  (requests, replies, probes, alerts alike);
- **jitter sweep**: uniform RTT perturbation approaching the calibrated
  window's half-width, pushing genuine malicious-signal RTTs out of the
  §2.2.2 acceptance region so they are misread as local replays.

The zero-fault point of each sweep is asserted bit-identical to a plain
(``faults=None``) run — the sweeps anchor to the paper curves exactly.
Every measurement lands in ``BENCH_faults.json`` at the repo root so
future PRs can track fault tolerance alongside performance.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.runner import collect_metrics
from repro.experiments.series import FigureData
from repro.faults import FaultConfig

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: The paper's §4 deployment; the sweeps perturb only the fault layer.
PAPER_CONFIG = PipelineConfig(seed=11)

#: Independent deployments averaged per sweep point.
TRIALS = 2

#: Bernoulli per-delivery loss probabilities (0 = the paper's clean net).
LOSS_RATES = (0.0, 0.05, 0.15, 0.3)

#: Uniform RTT jitter amplitudes (cycles). The calibrated §2.2.2 window
#: is ~1600 cycles wide, so the top amplitude pushes a large share of
#: genuine malicious-signal RTTs outside it.
JITTER_CYCLES = (0.0, 250.0, 750.0, 1500.0)

#: Metrics tracked by both sweeps.
METRICS = (
    "detection_rate",
    "false_positive_rate",
    "affected_non_beacons_per_malicious",
)


def _record_baseline(name, points):
    """Merge one sweep's points into BENCH_faults.json."""
    try:
        data = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data.setdefault("schema", 1)
    data["environment"] = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    data.setdefault("benchmarks", {})[name] = points
    BASELINE_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return points


def _sweep(bench_runner, fault_of, levels):
    """Mean metrics per level: ``{level: {metric: value}}``.

    ``fault_of(level)`` maps a sweep level to a :class:`FaultConfig`
    (``None`` for the clean anchor). Each level runs ``TRIALS``
    deployments (seeds ``seed .. seed + TRIALS - 1``) through the shared
    bench runner, so ``REPRO_BENCH_WORKERS``/``REPRO_BENCH_CACHE``
    shard and cache the sweep like any other simulation bench.
    """
    configs = []
    keys = []
    for level in levels:
        for trial in range(TRIALS):
            configs.append(
                dataclasses.replace(
                    PAPER_CONFIG,
                    seed=PAPER_CONFIG.seed + trial,
                    faults=fault_of(level),
                )
            )
            keys.append(f"level:{level}/trial:{trial}")
    results = bench_runner.run_pipeline_configs(configs, keys=keys)
    points = {}
    for i, level in enumerate(levels):
        rows = results[i * TRIALS : (i + 1) * TRIALS]
        points[level] = {
            metric: sum(row[metric] for row in rows) / len(rows)
            for metric in METRICS
        }
    return points


def _sweep_figure(figure_id, title, x_label, points, notes):
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="metric value",
        notes=notes,
    )
    series = {metric: fig.new_series(metric) for metric in METRICS}
    for level, values in points.items():
        for metric in METRICS:
            series[metric].append(level, values[metric])
    return fig


def _assert_clean_anchor(points, zero_level):
    """The zero-fault sweep point must equal the plain (faults=None) run."""
    plain = [
        collect_metrics(
            SecureLocalizationPipeline(
                dataclasses.replace(PAPER_CONFIG, seed=PAPER_CONFIG.seed + t)
            ).run()
        )
        for t in range(TRIALS)
    ]
    expected = {
        metric: sum(row[metric] for row in plain) / len(plain)
        for metric in METRICS
    }
    assert points[zero_level] == expected, (
        "zero-fault sweep point drifted from the faults=None baseline: "
        f"{points[zero_level]} != {expected}"
    )


def test_detection_vs_loss_rate(save_figure, bench_runner):
    """Detection metrics vs Bernoulli per-delivery packet loss."""

    def fault_of(rate):
        if rate == 0.0:
            return None
        return FaultConfig(packet_loss_rate=rate)

    points = _sweep(bench_runner, fault_of, LOSS_RATES)
    _assert_clean_anchor(points, 0.0)
    _record_baseline(
        "detection_vs_loss",
        {str(rate): values for rate, values in points.items()},
    )
    save_figure(
        _sweep_figure(
            "faults_loss",
            "Detection metrics vs packet loss rate",
            "per-delivery loss probability",
            points,
            notes=(
                f"paper deployment, {TRIALS} trials/point; zero-loss point "
                "asserted identical to the clean pipeline"
            ),
        )
    )
    # Losing packets can only suppress probes/alerts, never invent them:
    # the false positive rate must not rise above the clean anchor by
    # more than trial noise allows (exactly 0 new alert content exists).
    clean = points[0.0]["detection_rate"]
    lossy = points[max(LOSS_RATES)]["detection_rate"]
    assert lossy <= clean + 1e-9, (
        f"detection rate rose under loss ({clean} -> {lossy})"
    )


def test_detection_vs_rtt_jitter(save_figure, bench_runner):
    """Detection metrics vs uniform RTT jitter amplitude."""

    def fault_of(amplitude):
        if amplitude == 0.0:
            return None
        return FaultConfig(rtt_jitter_cycles=amplitude)

    points = _sweep(bench_runner, fault_of, JITTER_CYCLES)
    _assert_clean_anchor(points, 0.0)
    _record_baseline(
        "detection_vs_rtt_jitter",
        {str(amplitude): values for amplitude, values in points.items()},
    )
    save_figure(
        _sweep_figure(
            "faults_jitter",
            "Detection metrics vs RTT jitter amplitude",
            "jitter amplitude (cycles)",
            points,
            notes=(
                f"paper deployment, {TRIALS} trials/point; window width "
                "~1600 cycles, so the top amplitude breaks the "
                "section 2.2.2 acceptance region"
            ),
        )
    )
