"""Ablation: revocation-notice dissemination under radio loss.

The paper assumes revocation messages "can reach most of sensor nodes"
(§3.2). This bench replaces the oracle with the actual mechanism —
µTESLA-authenticated notices flooded hop by hop — and degrades the radio:
at higher loss rates, rebroadcasts die out, fewer agents learn the
revocations, and the whole localization pipeline (probes, replies, alerts'
radio legs) suffers alongside. Reported: detection rate, the fraction of
agents that learned at least one revocation, and N'.
"""

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData


def sweep_loss(loss_rates=(0.0, 0.1, 0.3, 0.5), seed=91):
    fig = FigureData(
        figure_id="ablation_notices",
        title="Flooded revocation notices under radio loss",
        x_label="per-transmission loss rate",
        y_label="rate",
        notes="300-node field; flooded µTESLA notices replace the oracle",
    )
    detection = fig.new_series("detection rate")
    informed = fig.new_series("agents aware of >=1 revocation")
    affected = fig.new_series("N' per malicious beacon (x0.1)")
    for loss in loss_rates:
        cfg = PipelineConfig(
            n_total=300,
            n_beacons=40,
            n_malicious=4,
            field_width_ft=600.0,
            field_height_ft=600.0,
            p_prime=0.5,
            rtt_calibration_samples=500,
            wormhole_endpoints=None,
            revocation_dissemination="flood",
            notice_interval_cycles=500_000.0,
            network_loss_rate=loss,
            seed=seed,
        )
        pipeline = SecureLocalizationPipeline(cfg)
        result = pipeline.run()
        detection.append(loss, result.detection_rate)
        aware = sum(
            1
            for agent in pipeline.agents
            if getattr(agent, "applied_revocations", None)
        )
        informed.append(loss, aware / max(1, len(pipeline.agents)))
        affected.append(
            loss, result.affected_non_beacons_per_malicious * 0.1
        )
    return fig


def test_ablation_notices(run_once, save_figure):
    fig = run_once(sweep_loss)
    save_figure(fig)
    informed = fig.series["agents aware of >=1 revocation"]
    detection = fig.series["detection rate"]
    affected = fig.series["N' per malicious beacon (x0.1)"]
    # Finding: on a dense field the epidemic redundancy of flooding makes
    # the paper's "reaches most sensor nodes" assumption easy — agents
    # stay informed even at 50% per-transmission loss...
    assert min(informed.y) > 0.8
    # ...the loss bites elsewhere: probe/alert traffic degrades detection,
    # and the surviving unrevoked liars show up in N'.
    assert detection.y_at(0.5) <= detection.y_at(0.0)
    assert affected.y_at(0.5) >= affected.y_at(0.0)
