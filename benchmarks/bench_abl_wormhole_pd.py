"""Ablation: sensitivity of false positives to the wormhole detection rate.

Sections 2.3 and 3.2 bound benign-vs-benign false alerts by (1 - p_d) per
wormhole endpoint pair. This bench runs the pipeline with no malicious
beacons (isolating the wormhole path) across p_d values.
"""

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData


def sweep_pd(pds=(0.5, 0.7, 0.9, 1.0), seed=29):
    fig = FigureData(
        figure_id="ablation_wormhole_pd",
        title="Benign false positives vs wormhole detection rate",
        x_label="p_d",
        y_label="false positive rate",
        notes="N_a=0, collusion off: only the wormhole path produces alerts",
    )
    series = fig.new_series("false positive rate")
    for p_d in pds:
        cfg = PipelineConfig(
            n_malicious=0,
            collusion=False,
            wormhole_p_d=p_d,
            seed=seed,
        )
        result = SecureLocalizationPipeline(cfg).run()
        series.append(p_d, result.false_positive_rate)
    return fig


def test_ablation_wormhole_pd(run_once, save_figure):
    fig = run_once(sweep_pd)
    save_figure(fig)
    s = fig.series["false positive rate"]
    # A perfect wormhole detector eliminates benign false positives.
    assert s.y_at(1.0) == 0.0
    # Degrading p_d can only increase (or hold) false positives.
    assert s.y_at(0.5) >= s.y_at(0.9)
