"""Revocation-service throughput and decision latency (BENCH_revocation.json).

Correctness before speed, as everywhere in this repo: the bench first
replays a captured §4 pipeline alert stream through the sharded service
and asserts bit-identity with the in-process ``BaseStation`` — in
``--quick`` mode (CI) that identity check is the whole bench.

The full run then measures, per persistence backend:

- **sustained alerts/sec**: a synthetic high-cardinality stream (shallow
  conflict waves, the service's intended regime) ingested in
  ``BATCH_SIZE`` batches through ``RevocationService.ingest``;
- **decision latency**: the wall-clock time of each batch commit — the
  interval between a batch's last submission and its futures resolving,
  which is exactly the latency an alert's decision observes — reported
  as p50/p95/p99/max in milliseconds;
- **recovery**: records/sec replayed from a cold ledger (the restart
  path).

Results land in ``BENCH_revocation.json`` at the repo root;
``docs/PERFORMANCE.md`` cites them.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import platform
import random
import time

from repro.core.pipeline import PipelineConfig
from repro.core.revocation import BaseStation, RevocationConfig
from repro.crypto.manager import KeyManager
from repro.revocation import (
    BACKEND_KINDS,
    RevocationService,
    capture_stream,
    make_backend,
    replay_stream,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_revocation.json"

#: Ingestion batch size for the throughput/latency measurements.
BATCH_SIZE = 256
#: Shard count for every measurement.
N_SHARDS = 4
#: Synthetic stream size (full mode).
N_ALERTS = 20_000
#: Synthetic ID space (wide => shallow conflict waves).
N_NODES = 5_000


def synthetic_stream(seed, n_alerts, n_nodes):
    """A deterministic high-cardinality (detector, target, time) stream."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_nodes), rng.randrange(n_nodes), float(i))
        for i in range(n_alerts)
    ]


def assert_identity(n_shards=3, batch_size=32):
    """Replay a captured pipeline stream; assert service == BaseStation."""
    stream = capture_stream(
        PipelineConfig(
            n_total=160,
            n_beacons=24,
            n_malicious=4,
            rtt_calibration_samples=200,
            seed=5,
        )
    )
    for restart_after in (None, len(stream.alerts) // 2):
        report = replay_stream(
            stream,
            n_shards=n_shards,
            batch_size=batch_size,
            restart_after=restart_after,
            snapshot_every=16,
        )
        assert report.identical, report.to_dict()
    return stream


async def _ingest_batched(service, alerts, batch_size):
    """Ingest in explicit batches, timing each batch commit."""
    latencies = []
    for start in range(0, len(alerts), batch_size):
        batch = alerts[start : start + batch_size]
        for detector, target, tm in batch:
            await service.submit(detector, target, time=tm)
        t0 = time.perf_counter()
        await service.flush()
        latencies.append(time.perf_counter() - t0)
    return latencies


def _percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list."""
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def measure_backend(kind, alerts, tmp_root, expected_state):
    """Throughput + batch-commit latency for one persistence backend."""
    backend = make_backend(kind, tmp_root / f"bench-{kind}")

    async def _run():
        service = RevocationService(
            RevocationConfig(),
            n_shards=N_SHARDS,
            backend=backend,
            batch_size=len(alerts) + 1,  # explicit flushes only
        )
        await service.start()
        t0 = time.perf_counter()
        latencies = await _ingest_batched(service, alerts, BATCH_SIZE)
        seconds = time.perf_counter() - t0
        state = service.counter_state().to_dict()
        await service.stop()
        return seconds, latencies, state

    try:
        seconds, latencies, state = asyncio.run(_run())
        assert state == expected_state, f"{kind}: state diverged"
        latencies.sort()
        return {
            "alerts": len(alerts),
            "batch_size": BATCH_SIZE,
            "n_shards": N_SHARDS,
            "seconds": round(seconds, 4),
            "alerts_per_sec": round(len(alerts) / seconds),
            "batch_commit_latency_ms": {
                "p50": round(1e3 * _percentile(latencies, 0.50), 3),
                "p95": round(1e3 * _percentile(latencies, 0.95), 3),
                "p99": round(1e3 * _percentile(latencies, 0.99), 3),
                "max": round(1e3 * latencies[-1], 3),
            },
        }
    finally:
        backend.close()


def measure_recovery(alerts, tmp_root, expected_state):
    """Cold-start recovery rate from a fully committed sqlite ledger."""
    backend = make_backend("sqlite", tmp_root / "bench-recovery")

    async def _commit():
        service = RevocationService(
            RevocationConfig(),
            n_shards=N_SHARDS,
            backend=backend,
            batch_size=BATCH_SIZE,
        )
        await service.start()
        await service.ingest(alerts)
        await service.stop()

    async def _recover():
        service = RevocationService(
            RevocationConfig(), n_shards=N_SHARDS, backend=backend
        )
        t0 = time.perf_counter()
        await service.start()
        seconds = time.perf_counter() - t0
        state = service.counter_state().to_dict()
        await service.stop()
        return seconds, state

    try:
        asyncio.run(_commit())
        seconds, state = asyncio.run(_recover())
        assert state == expected_state, "recovery: state diverged"
        return {
            "records": len(alerts),
            "seconds": round(seconds, 4),
            "records_per_sec": round(len(alerts) / seconds),
        }
    finally:
        backend.close()


def baseline_station_state(alerts):
    """The in-process ground-truth state (and its alerts/sec, for scale)."""
    key_manager = KeyManager()
    station = BaseStation(key_manager, RevocationConfig())
    t0 = time.perf_counter()
    for detector, target, tm in alerts:
        station.submit_alert(detector, target, verify=False, time=tm)
    seconds = time.perf_counter() - t0
    return station.state.to_dict(), {
        "alerts": len(alerts),
        "seconds": round(seconds, 4),
        "alerts_per_sec": round(len(alerts) / seconds),
    }


def test_revocation_service_bench(quick, tmp_path):
    """Identity always; throughput/latency into BENCH_revocation.json (full)."""
    stream = assert_identity()
    print(
        f"\nidentity: {len(stream.alerts)}-alert pipeline stream replayed "
        "bit-identically (with and without restart)"
    )
    if quick:
        return

    alerts = synthetic_stream(1, N_ALERTS, N_NODES)
    expected_state, baseline = baseline_station_state(alerts)
    backends = {
        kind: measure_backend(kind, alerts, tmp_path, expected_state)
        for kind in BACKEND_KINDS
    }
    recovery = measure_recovery(alerts, tmp_path, expected_state)
    data = {
        "schema": 1,
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": {
            "in_process_base_station": baseline,
            "service": backends,
            "recovery": recovery,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(json.dumps(data["benchmarks"], indent=2, sort_keys=True))


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        test_revocation_service_bench(False, pathlib.Path(tmp))
