"""Figure 12: simulated vs theoretical detection rate vs P'.

Paper: the simulated detection rate "conforms to the theoretical analysis"
and rises as a malicious beacon increases P'. This bench runs the full
pipeline (1,000 nodes) across a P' sweep and prints both curves.
"""

from repro.experiments import figures


def test_figure12_sim_detection(run_once, save_figure, bench_runner):
    fig = run_once(
        figures.figure12_sim_detection_rate,
        p_grid=(0.05, 0.1, 0.2, 0.4, 0.6, 0.8),
        trials=2,
        runner=bench_runner,
    )
    save_figure(fig)
    sim = fig.series["simulation"]
    theory = fig.series["theory"]
    # Shape: both rise; sim tracks theory within sampling noise.
    assert sim.y_at(0.8) >= sim.y_at(0.05)
    for p in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8):
        assert abs(sim.y_at(p) - theory.y_at(p)) < 0.35
