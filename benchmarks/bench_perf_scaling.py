"""Performance: pipeline wall-clock and event count vs network size.

Not a paper figure — capacity planning for users scaling the simulation
beyond the paper's 1,000 nodes. Event count grows with the probe and
localization traffic (~N * density); this bench records both so
regressions in the engine or delivery path show up as timing outliers.
"""

import time

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData


def scaling_sweep(sizes=(250, 500, 1_000, 2_000), seed=103):
    fig = FigureData(
        figure_id="perf_scaling",
        title="Pipeline runtime and event count vs network size",
        x_label="total nodes N",
        y_label="seconds / events (x100k)",
        notes="constant density: field area scales with N; 11% beacons",
    )
    runtime = fig.new_series("runtime (s)")
    events = fig.new_series("events (x100k)")
    for n in sizes:
        side = (n * 1_000.0) ** 0.5  # keep node density constant
        n_beacons = max(12, int(0.11 * n))
        cfg = PipelineConfig(
            n_total=n,
            n_beacons=n_beacons,
            n_malicious=max(1, n_beacons // 11),
            field_width_ft=side,
            field_height_ft=side,
            p_prime=0.2,
            rtt_calibration_samples=500,
            wormhole_endpoints=None,
            seed=seed,
        )
        pipeline = SecureLocalizationPipeline(cfg)
        start = time.perf_counter()
        pipeline.run()
        elapsed = time.perf_counter() - start
        runtime.append(n, elapsed)
        events.append(n, pipeline.engine.events_processed / 100_000.0)
    return fig


def test_perf_scaling(run_once, save_figure):
    fig = run_once(scaling_sweep)
    save_figure(fig)
    runtime = fig.series["runtime (s)"]
    events = fig.series["events (x100k)"]
    # Event count grows with N (constant density => ~linear).
    assert events.y_at(2_000) > events.y_at(250)
    # 2,000 nodes stay comfortably laptop-scale.
    assert runtime.y_at(2_000) < 60.0
