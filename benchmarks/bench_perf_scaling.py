"""Performance: pipeline wall-clock and event count vs network size.

Not a paper figure — capacity planning for users scaling the simulation
beyond the paper's 1,000 nodes. Event count grows with the probe and
localization traffic (~N * density); this bench records both so
regressions in the engine or delivery path show up as timing outliers.

Runner workloads ride along:

- ``test_parallel_speedup`` shards a multi-trial Monte-Carlo workload
  across 4 worker processes and records the speedup vs the serial path
  (asserted > 2x on machines with >= 4 CPUs; always asserted
  bit-identical to serial);
- ``test_queue_backend_scaling`` runs the same workload through the
  distributed file-queue backend at increasing worker counts, asserts
  bit-identity to serial at every count (including a crash-injected
  ``--keep-going`` run), and records throughput vs workers in
  ``BENCH_scaling.json`` at the repo root. The >= 6x floor at 8 workers
  is asserted only on machines with >= 8 CPUs; ``--quick`` asserts
  identity without any clock gating.
- ``test_cache_hit_skips_execution`` re-runs a figure workload against a
  warm result cache and asserts — via the runner's timing hooks — that
  the second invocation performs zero pipeline executions.
"""

import json
import os
import pathlib
import platform
import time

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments import figures
from repro.experiments.montecarlo import run_trials
from repro.experiments.runner import ExperimentRunner, PipelineExperiment
from repro.experiments.series import FigureData

SCALING_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_scaling.json"
)

#: A single trial of this config takes a few hundred ms — big enough that
#: process overhead is amortized, small enough for a bench.
SPEEDUP_OVERRIDES = dict(
    n_total=400,
    n_beacons=44,
    n_malicious=4,
    field_width_ft=650.0,
    field_height_ft=650.0,
    p_prime=0.2,
    rtt_calibration_samples=500,
    wormhole_endpoints=None,
)
SPEEDUP_TRIALS = 8
SPEEDUP_WORKERS = 4


def scaling_sweep(sizes=(250, 500, 1_000, 2_000), seed=103):
    fig = FigureData(
        figure_id="perf_scaling",
        title="Pipeline runtime and event count vs network size",
        x_label="total nodes N",
        y_label="seconds / events (x100k)",
        notes="constant density: field area scales with N; 11% beacons",
    )
    runtime = fig.new_series("runtime (s)")
    events = fig.new_series("events (x100k)")
    for n in sizes:
        side = (n * 1_000.0) ** 0.5  # keep node density constant
        n_beacons = max(12, int(0.11 * n))
        cfg = PipelineConfig(
            n_total=n,
            n_beacons=n_beacons,
            n_malicious=max(1, n_beacons // 11),
            field_width_ft=side,
            field_height_ft=side,
            p_prime=0.2,
            rtt_calibration_samples=500,
            wormhole_endpoints=None,
            seed=seed,
        )
        pipeline = SecureLocalizationPipeline(cfg)
        start = time.perf_counter()
        pipeline.run()
        elapsed = time.perf_counter() - start
        runtime.append(n, elapsed)
        events.append(n, pipeline.engine.events_processed / 100_000.0)
    return fig


def test_perf_scaling(run_once, save_figure):
    fig = run_once(scaling_sweep)
    save_figure(fig)
    runtime = fig.series["runtime (s)"]
    events = fig.series["events (x100k)"]
    # Event count grows with N (constant density => ~linear).
    assert events.y_at(2_000) > events.y_at(250)
    # 2,000 nodes stay comfortably laptop-scale.
    assert runtime.y_at(2_000) < 60.0


def parallel_speedup_sweep(trials=SPEEDUP_TRIALS, workers=SPEEDUP_WORKERS):
    """Serial vs sharded wall clock on the same Monte-Carlo workload."""
    experiment = PipelineExperiment(overrides=SPEEDUP_OVERRIDES)

    start = time.perf_counter()
    serial = run_trials(experiment, trials=trials, base_seed=29)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_trials(
        experiment,
        trials=trials,
        base_seed=29,
        runner=ExperimentRunner(n_workers=workers),
    )
    parallel_s = time.perf_counter() - start

    fig = FigureData(
        figure_id="perf_parallel",
        title="Monte-Carlo wall clock: serial vs sharded trials",
        x_label="worker processes",
        y_label="seconds",
        notes=(
            f"{trials} trials of a {SPEEDUP_OVERRIDES['n_total']}-node "
            f"pipeline; speedup {serial_s / parallel_s:.2f}x at {workers} "
            f"workers on {os.cpu_count()} CPU(s)"
        ),
    )
    wall = fig.new_series("wall clock (s)")
    wall.append(1, serial_s)
    wall.append(workers, parallel_s)
    return fig, serial, parallel


def test_parallel_speedup(save_figure):
    fig, serial, parallel = parallel_speedup_sweep()
    save_figure(fig)
    # Determinism first: sharding must not change a single aggregate.
    assert set(serial) == set(parallel)
    for name in serial:
        assert serial[name].mean == parallel[name].mean
        assert serial[name].half_width == parallel[name].half_width
    # Speedup is only physically possible with enough cores; the figure
    # records the measured ratio either way.
    if (os.cpu_count() or 1) >= SPEEDUP_WORKERS:
        wall = fig.series["wall clock (s)"]
        assert wall.y_at(1) / wall.y_at(SPEEDUP_WORKERS) > 2.0


#: Worker counts swept by the queue-backend scaling bench.
QUEUE_WORKER_COUNTS = (1, 2, 4, 8)


def _assert_identical_aggregates(serial, other):
    """Bit-identity of two Monte-Carlo aggregate dicts."""
    assert set(serial) == set(other)
    for name in serial:
        assert serial[name].mean == other[name].mean
        assert serial[name].half_width == other[name].half_width


def _record_scaling(trials, serial_s, by_workers):
    """Merge the queue-backend sweep into BENCH_scaling.json."""
    try:
        data = json.loads(SCALING_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data.setdefault("schema", 1)
    data["environment"] = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    data.setdefault("benchmarks", {})["queue_scaling"] = {
        "trials": trials,
        "serial_s": round(serial_s, 6),
        "workers": {
            str(workers): {
                "wall_s": round(wall_s, 6),
                "throughput_trials_per_s": round(trials / wall_s, 4),
                "speedup": round(serial_s / wall_s, 2),
            }
            for workers, wall_s in by_workers.items()
        },
    }
    SCALING_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data["benchmarks"]["queue_scaling"]


def queue_scaling_sweep(
    queue_root,
    trials=2 * SPEEDUP_TRIALS,
    worker_counts=QUEUE_WORKER_COUNTS,
    overrides=SPEEDUP_OVERRIDES,
):
    """Serial vs file-queue wall clock at increasing worker counts.

    Returns ``(fig, serial_s, by_workers, serial, queue_results)`` where
    ``queue_results[w]`` is the aggregate dict the w-worker queue run
    produced (asserted bit-identical to ``serial`` by the caller).
    """
    experiment = PipelineExperiment(overrides=overrides)

    start = time.perf_counter()
    serial = run_trials(experiment, trials=trials, base_seed=31)
    serial_s = time.perf_counter() - start

    by_workers = {}
    queue_results = {}
    for workers in worker_counts:
        runner = ExperimentRunner(
            backend="queue",
            n_workers=workers,
            queue_dir=queue_root / f"w{workers}",
        )
        start = time.perf_counter()
        queue_results[workers] = run_trials(
            experiment, trials=trials, base_seed=31, runner=runner
        )
        by_workers[workers] = time.perf_counter() - start

    fig = FigureData(
        figure_id="perf_queue_scaling",
        title="Monte-Carlo throughput vs queue-backend worker count",
        x_label="worker processes",
        y_label="trials / second",
        notes=(
            f"{trials} trials of a {overrides['n_total']}-node pipeline "
            f"through the file-queue backend on {os.cpu_count()} CPU(s); "
            f"serial baseline {trials / serial_s:.2f} trials/s"
        ),
    )
    throughput = fig.new_series("throughput (trials/s)")
    for workers, wall_s in by_workers.items():
        throughput.append(workers, trials / wall_s)
    return fig, serial_s, by_workers, serial, queue_results


def test_queue_backend_scaling(save_figure, tmp_path, quick):
    if quick:
        # Smoke mode: tiny workload, identity asserted at two worker
        # counts, no clock gating and no baseline rewrite.
        trials, worker_counts = 4, (1, 2)
        overrides = dict(
            SPEEDUP_OVERRIDES, n_total=150, n_beacons=20, n_malicious=2,
            field_width_ft=420.0, field_height_ft=420.0,
            rtt_calibration_samples=200,
        )
    else:
        trials, worker_counts = 2 * SPEEDUP_TRIALS, QUEUE_WORKER_COUNTS
        overrides = SPEEDUP_OVERRIDES
    fig, serial_s, by_workers, serial, queue_results = queue_scaling_sweep(
        tmp_path / "queue", trials=trials, worker_counts=worker_counts,
        overrides=overrides,
    )
    save_figure(fig)

    # Determinism first: every worker count reproduces serial, bit for bit.
    for workers in worker_counts:
        _assert_identical_aggregates(serial, queue_results[workers])

    # Fault tolerance rides the same bar: a worker crash mid-run changes
    # nothing but the wall clock.
    experiment = PipelineExperiment(overrides=overrides)
    crashed = ExperimentRunner(
        backend="queue",
        n_workers=2,
        queue_dir=tmp_path / "queue-crash",
        keep_going=True,
        queue_crash_after={0: 1},
    )
    _assert_identical_aggregates(
        serial,
        run_trials(experiment, trials=trials, base_seed=31, runner=crashed),
    )
    assert crashed.stats.requeues >= 1 and not crashed.stats.errors

    if not quick:
        entry = _record_scaling(trials, serial_s, by_workers)
        # Near-linear scaling is only physically possible with the cores
        # to back it; the baseline records the measured ratio either way.
        if (os.cpu_count() or 1) >= 8 and 8 in by_workers:
            assert entry["workers"]["8"]["speedup"] >= 6.0


def test_cache_hit_skips_execution(save_figure, tmp_path):
    cache_dir = tmp_path / "cache"
    kwargs = dict(
        p_grid=(0.1, 0.4),
        trials=2,
        config_kwargs=dict(
            n_total=150,
            n_beacons=20,
            n_malicious=2,
            field_width_ft=420.0,
            field_height_ft=420.0,
            rtt_calibration_samples=200,
            wormhole_endpoints=None,
        ),
    )

    cold = ExperimentRunner(cache_dir=cache_dir)
    start = time.perf_counter()
    first = figures.figure12_sim_detection_rate(runner=cold, **kwargs)
    cold_s = time.perf_counter() - start
    assert cold.stats.executed == 4 and cold.stats.cache_hits == 0

    warm = ExperimentRunner(cache_dir=cache_dir)
    start = time.perf_counter()
    second = figures.figure12_sim_detection_rate(runner=warm, **kwargs)
    warm_s = time.perf_counter() - start
    # The acceptance bar: a warm re-run performs zero pipeline executions,
    # as reported by the timing hooks.
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 4
    assert warm.stats.total_seconds == 0.0
    assert second.series["simulation"].y == first.series["simulation"].y

    fig = FigureData(
        figure_id="perf_cache",
        title="Figure-12 workload: cold vs warm result cache",
        x_label="invocation (1=cold, 2=warm)",
        y_label="seconds",
        notes=(
            f"4 pipeline points; warm run executed "
            f"{warm.stats.executed} pipelines ({warm.stats.cache_hits} "
            f"cache hits), {cold_s / max(warm_s, 1e-9):.0f}x faster"
        ),
    )
    wall = fig.new_series("wall clock (s)")
    wall.append(1, cold_s)
    wall.append(2, warm_s)
    save_figure(fig)
