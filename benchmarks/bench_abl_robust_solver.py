"""Ablation: solver-level vs network-level defence.

Three ways to survive lying beacons, measured on the same reference sets:

- plain MMSE (no defence),
- robust MMSE (peel inconsistent references locally),
- oracle revocation (the paper's end state: lying references removed).

Sweeps the number of lying references among 8 honest ones; reports mean
localization error. Shape: plain degrades linearly with liars; robust
matches revocation until liars approach half the references, then breaks —
the solver-level defence's fundamental limit, which is exactly why the
paper's *network-level* revocation matters.
"""

import math
import random

from repro.errors import InsufficientReferencesError
from repro.experiments.series import FigureData
from repro.localization.multilateration import mmse_multilaterate
from repro.localization.references import LocationReference
from repro.localization.robust import robust_multilaterate
from repro.utils.geometry import Point, distance


def sweep_liars(max_liars=6, trials=120, seed=71, lie_ft=200.0):
    rng = random.Random(seed)
    fig = FigureData(
        figure_id="ablation_robust_solver",
        title="Localization error vs number of lying references",
        x_label="lying references (among 8 honest)",
        y_label="mean localization error (ft)",
        notes=f"lie displacement {lie_ft} ft, ranging error 10 ft",
    )
    series = {
        name: fig.new_series(name)
        for name in ("plain mmse", "robust mmse", "oracle revocation")
    }
    anchors = [
        Point(250 + 180 * math.cos(t), 250 + 180 * math.sin(t))
        for t in [i * 2 * math.pi / 8 for i in range(8)]
    ]

    for n_liars in range(max_liars + 1):
        errors = {name: [] for name in series}
        for _ in range(trials):
            truth = Point(rng.uniform(150, 350), rng.uniform(150, 350))
            honest = [
                LocationReference(
                    i + 1,
                    a,
                    max(0.0, distance(truth, a) + rng.uniform(-10, 10)),
                )
                for i, a in enumerate(anchors)
            ]
            liars = []
            for k in range(n_liars):
                physical = Point(rng.uniform(100, 400), rng.uniform(100, 400))
                angle = rng.uniform(0, 2 * math.pi)
                lie = Point(
                    physical.x + lie_ft * math.cos(angle),
                    physical.y + lie_ft * math.sin(angle),
                )
                liars.append(
                    LocationReference(
                        100 + k, lie, distance(truth, physical)
                    )
                )
            refs = honest + liars
            errors["plain mmse"].append(
                distance(mmse_multilaterate(refs).position, truth)
            )
            try:
                robust = robust_multilaterate(refs, max_error_ft=10.0)
                errors["robust mmse"].append(
                    distance(robust.position, truth)
                )
            except InsufficientReferencesError:
                errors["robust mmse"].append(
                    distance(mmse_multilaterate(refs).position, truth)
                )
            errors["oracle revocation"].append(
                distance(mmse_multilaterate(honest).position, truth)
            )
        for name in series:
            series[name].append(
                n_liars, sum(errors[name]) / len(errors[name])
            )
    return fig


def test_ablation_robust_solver(run_once, save_figure):
    fig = run_once(sweep_liars)
    save_figure(fig)
    plain = fig.series["plain mmse"]
    robust = fig.series["robust mmse"]
    oracle = fig.series["oracle revocation"]
    # No liars: all three agree.
    assert abs(plain.y_at(0) - oracle.y_at(0)) < 2.0
    # A few liars: robust tracks the oracle, plain degrades badly.
    assert robust.y_at(2) < plain.y_at(2) / 2
    assert robust.y_at(2) < oracle.y_at(2) + 10.0
    # Oracle (revocation) is flat in the liar count.
    assert max(oracle.y) - min(oracle.y) < 3.0
