"""Figure 6: revocation detection rate P_d vs P'.

Panel (a) sweeps the alert threshold tau at m = 8; panel (b) sweeps m at
tau = 4. Shape: P_d rises quickly with P'; smaller tau and larger m win.
"""

from repro.experiments import figures


def test_figure06_detection_rate(run_once, save_figure):
    fig = run_once(figures.figure06_detection_rate)
    save_figure(fig)
    assert fig.series["(a) tau=1, m=8"].y_at(0.1) > fig.series[
        "(a) tau=4, m=8"
    ].y_at(0.1)
    assert fig.series["(b) m=8, tau=4"].y_at(0.1) > fig.series[
        "(b) m=1, tau=4"
    ].y_at(0.1)
