"""Ablation: marginal value of each extra detecting ID (m).

DESIGN.md calls out m as the defender's main knob (Figure 5's argument:
"a benign detecting node can always increase m to have higher detection
rate"). This bench runs the full pipeline across m and reports detection
rate and probe overhead — the cost side the paper's overhead analysis
mentions (more detecting IDs = more keying material and probes).
"""

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData


def sweep_m(ms=(1, 2, 4, 8), p_prime=0.1, seed=23):
    fig = FigureData(
        figure_id="ablation_detecting_ids",
        title="Detection rate and probe cost vs m",
        x_label="m (detecting IDs per beacon)",
        y_label="detection rate / probes",
        notes=f"P'={p_prime}, paper deployment",
    )
    det = fig.new_series("detection rate")
    probes = fig.new_series("probes sent (x1000)")
    for m in ms:
        cfg = PipelineConfig(p_prime=p_prime, m_detecting_ids=m, seed=seed)
        result = SecureLocalizationPipeline(cfg).run()
        det.append(m, result.detection_rate)
        probes.append(m, result.probes_sent / 1000.0)
    return fig


def test_ablation_detecting_ids(run_once, save_figure):
    fig = run_once(sweep_m)
    save_figure(fig)
    det = fig.series["detection rate"]
    # More detecting IDs never hurt detection...
    assert det.y_at(8) >= det.y_at(1)
    # ...but cost scales linearly in probes.
    probes = fig.series["probes sent (x1000)"]
    assert probes.y_at(8) > probes.y_at(1) * 6
