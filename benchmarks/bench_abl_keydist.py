"""Ablation: key predistribution schemes (EG vs q-composite vs Blom).

The paper assumes pairwise keys exist and cites the EG/q-composite/Blom
line of work. This bench measures secure-connectivity probability and key
derivation throughput for each scheme, the trade-off a deployer faces.
"""

import random

from repro.crypto.predistribution import (
    BlomScheme,
    EschenauerGligorScheme,
    QCompositeScheme,
)
from repro.experiments.series import FigureData


def measure_connectivity(n_pairs=300):
    fig = FigureData(
        figure_id="ablation_keydist",
        title="Secure-connectivity probability per predistribution scheme",
        x_label="scheme index (see labels)",
        y_label="fraction of node pairs with a pairwise key",
        notes="pool=1000, ring=75, q=2, Blom lambda=20; 300 sampled pairs",
    )
    schemes = {
        "eg(1000,75)": EschenauerGligorScheme(1000, 75, random.Random(0)),
        "qcomp(1000,75,q=2)": QCompositeScheme(1000, 75, 2, random.Random(0)),
        "blom(lambda=20)": BlomScheme(20, random.Random(0)),
    }
    for index, (label, scheme) in enumerate(schemes.items()):
        for node_id in range(2 * n_pairs):
            scheme.issue(node_id)
        connected = sum(
            1
            for i in range(n_pairs)
            if scheme.can_communicate(2 * i, 2 * i + 1)
        )
        series = fig.new_series(label)
        series.append(index, connected / n_pairs)
    return fig


def test_ablation_keydist_connectivity(run_once, save_figure):
    fig = run_once(measure_connectivity)
    save_figure(fig)
    eg = fig.series["eg(1000,75)"].y[0]
    qc = fig.series["qcomp(1000,75,q=2)"].y[0]
    blom = fig.series["blom(lambda=20)"].y[0]
    # Blom connects every pair; q-composite is strictly more demanding
    # than the basic scheme.
    assert blom == 1.0
    assert qc <= eg
    assert eg > 0.9


def test_blom_key_derivation_throughput(benchmark):
    scheme = BlomScheme(20, random.Random(1))
    for node_id in range(100):
        scheme.issue(node_id)

    def derive_block():
        for i in range(0, 100, 2):
            scheme.pairwise_key(i, i + 1)

    benchmark(derive_block)


def test_eg_key_derivation_throughput(benchmark):
    scheme = EschenauerGligorScheme(1000, 75, random.Random(1))
    for node_id in range(100):
        scheme.issue(node_id)
    pairs = [
        (i, i + 1)
        for i in range(0, 100, 2)
        if scheme.can_communicate(i, i + 1)
    ]

    def derive_block():
        for a, b in pairs:
            scheme.pairwise_key(a, b)

    benchmark(derive_block)
