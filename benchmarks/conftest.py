"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's figures and (a) times the
generation with pytest-benchmark, (b) prints the series, and (c) writes the
table to ``benchmarks/output/<figure_id>.txt`` so EXPERIMENTS.md can cite
the exact numbers.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def save_figure():
    """Persist a FigureData table and echo it to stdout."""

    def _save(fig):
        OUTPUT_DIR.mkdir(exist_ok=True)
        table = fig.format_table()
        (OUTPUT_DIR / f"{fig.figure_id}.txt").write_text(table + "\n")
        print()
        print(table)
        return fig

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run a figure generator exactly once under the benchmark timer.

    Simulation figures take seconds; pytest-benchmark's default
    calibration would multiply that by dozens of rounds.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
