"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's figures and (a) times the
generation with pytest-benchmark, (b) prints the series, and (c) writes the
table to ``benchmarks/output/<figure_id>.txt`` so EXPERIMENTS.md can cite
the exact numbers.

Simulation benches execute through an
:class:`repro.experiments.runner.ExperimentRunner` built by the
``bench_runner`` fixture. By default it is serial and uncached (identical
numbers to the historical benches); set ``REPRO_BENCH_WORKERS=4`` and/or
``REPRO_BENCH_CACHE=.bench-cache`` to shard trials across processes and
skip already-computed points — results are bit-identical either way.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentRunner

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_addoption(parser):
    """Register the smoke-mode flag for CI bench runs."""
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "smoke mode: smaller workloads, correctness asserted, "
            "speedup floors relaxed (for CI legs where timing is noisy)"
        ),
    )


@pytest.fixture
def quick(request):
    """True when the bench run is in --quick smoke mode."""
    return request.config.getoption("--quick")


@pytest.fixture
def save_figure():
    """Persist a FigureData table and echo it to stdout."""

    def _save(fig):
        OUTPUT_DIR.mkdir(exist_ok=True)
        table = fig.format_table()
        (OUTPUT_DIR / f"{fig.figure_id}.txt").write_text(table + "\n")
        print()
        print(table)
        return fig

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run a figure generator exactly once under the benchmark timer.

    Simulation figures take seconds; pytest-benchmark's default
    calibration would multiply that by dozens of rounds.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run


@pytest.fixture
def bench_runner():
    """The experiment runner the simulation benches route through.

    Reads ``REPRO_BENCH_WORKERS`` (int, default 1) and
    ``REPRO_BENCH_CACHE`` (path, default unset = no cache).
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")
    if workers < 1:
        workers = os.cpu_count() or 1
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    return ExperimentRunner(n_workers=workers, cache_dir=cache_dir)
