"""Figure 14: ROC curves — detection rate vs false positive rate.

Paper: sweeping tau trades detection for false positives; with N_a = 5 the
scheme detects most malicious beacons at ~5% false positives, with
N_a = 10 the cost rises (colluders get N_a (tau'+1) alerts accepted).
"""

from repro.experiments import figures


def test_figure14_roc(run_once, save_figure, bench_runner):
    fig = run_once(
        figures.figure14_roc,
        n_as=(5, 10),
        tau_reports=(2, 3),
        tau_alerts=(1, 2, 4, 8),
        trials=1,
        runner=bench_runner,
    )
    save_figure(fig)
    # Shape: more colluders => more false positives at comparable detection.
    fp5 = max(fig.series["N_a=5, tau'=2"].x)
    fp10 = max(fig.series["N_a=10, tau'=2"].x)
    assert fp10 >= fp5
    # Every operating point is a valid (fp, detection) pair.
    for s in fig.series.values():
        assert all(0.0 <= v <= 1.0 for v in s.x + s.y)
